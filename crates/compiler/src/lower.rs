//! Lowering to RV64IM + HWST128 machine code.
//!
//! The default back-end ([`OptLevel::O0`]) is a deliberate `-O0` code
//! generator: every IR variable has a home slot in the frame and every
//! instruction loads its operands and stores its result. This matches
//! the paper's experimental setup ("All performance benchmarks are
//! compiled and linked without compiler optimization", §4) — and it is
//! precisely the regime in which pointer metadata flows through shadow
//! memory constantly, which the HWST128 hardware accelerates.
//!
//! The optimizing tier ([`OptLevel::O1`]) keeps the same frame layout
//! and plan geometry but caches hot frame cells in the callee-free
//! `s0..s11` pool chosen by [`crate::regalloc`], under a strict
//! write-through discipline: every definition still stores to the home
//! slot (so call boundaries and the validator's frame model stay
//! intact), while reloads, redundant `lbdls` metadata refetches and
//! repeated `sbdl`/`sbdu` shuttle loads are elided when the emitter's
//! cache — mirrored block-by-block on `binval`'s abstract domain — can
//! prove them redundant. Every `-O1` image re-passes
//! [`crate::binval::translation_validate_opt`] unchanged.
//!
//! Calling convention: arguments in `a0..a7`, result in `a0`, `ra` saved
//! in the frame; pointer-argument metadata travels through the
//! `__meta_args` transfer area (see [`crate::instrument`]).

use crate::dataflow::Cfg;
use crate::instrument::Scheme;
use crate::ir::{BinOp, Function, Inst, MetaField, Module, Terminator, VarId, Width};
use crate::regalloc::{self, Allocation};
use crate::CompileError;
use hwst_isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Program, Reg, StoreWidth};
use hwst_mem::MemoryLayout;
use hwst_sim::syscall;
use std::collections::{HashMap, HashSet};

/// Back-end optimization tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// Frame-slot stack machine (the paper's `-O0` regime).
    #[default]
    O0,
    /// Linear-scan register caching + frame-traffic elimination +
    /// metadata-op scheduling, validated per image by `binval`.
    O1,
}

impl OptLevel {
    /// Stable display label (`"O0"` / `"O1"`).
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
        }
    }

    /// Parses a CLI-style spelling (`O0`, `o1`, `0`, `1`).
    pub fn by_name(s: &str) -> Option<OptLevel> {
        match s {
            "O0" | "o0" | "0" => Some(OptLevel::O0),
            "O1" | "o1" | "1" => Some(OptLevel::O1),
            _ => None,
        }
    }
}

/// Lowers an (already instrumented) module to machine code.
pub fn lower(module: &Module, scheme: Scheme) -> Result<Program, CompileError> {
    lower_with_plan(module, scheme).map(|(p, _)| p)
}

/// `lower` at a caller-chosen [`OptLevel`].
pub fn lower_opt(module: &Module, scheme: Scheme, opt: OptLevel) -> Result<Program, CompileError> {
    lower_with_plan_opt(module, scheme, opt).map(|(p, _)| p)
}

/// Lowers and reports `(program, per-function static instruction counts)`.
pub fn lower_with_sizes(
    module: &Module,
    scheme: Scheme,
) -> Result<(Program, Vec<(String, usize)>), CompileError> {
    let (program, plan) = lower_with_plan(module, scheme)?;
    let sizes = plan.funcs.iter().map(|f| (f.name.clone(), f.len)).collect();
    Ok((program, sizes))
}

/// Side-tables produced by lowering: enough structure to map IR-level
/// safety decisions onto the emitted machine code. This is what the
/// binary-level translation validator ([`crate::binval`]) consumes —
/// the validator re-derives everything *semantic* from the instruction
/// stream itself and uses the plan only for function extents, frame
/// geometry and the IR-check ↔ instruction correspondence.
#[derive(Debug, Clone)]
pub struct LowerPlan {
    /// The scheme the module was lowered for.
    pub scheme: Scheme,
    /// Per-function tables, in emission order.
    pub funcs: Vec<FnPlan>,
}

impl LowerPlan {
    /// The function whose emitted range contains `pc`, if any (the
    /// startup shim precedes every function and resolves to `None`).
    pub fn func_at_pc(&self, pc: u64) -> Option<&FnPlan> {
        self.funcs
            .iter()
            .find(|f| (f.start_pc..f.end_pc).contains(&pc))
    }

    /// `(name, start_pc, end_pc)` symbol ranges in emission order — the
    /// raw material for a telemetry symbol table.
    pub fn symbols(&self) -> Vec<(String, u64, u64)> {
        self.funcs
            .iter()
            .map(|f| (f.name.clone(), f.start_pc, f.end_pc))
            .collect()
    }
}

/// Per-function lowering side-table.
#[derive(Debug, Clone)]
pub struct FnPlan {
    /// Function name.
    pub name: String,
    /// Program-wide index of the first emitted instruction (prologue).
    pub start: usize,
    /// Emitted instruction count.
    pub len: usize,
    /// Absolute PC of the first instruction (inclusive) — the symbol
    /// range telemetry resolves profiled PCs against.
    pub start_pc: u64,
    /// Absolute PC one past the last instruction (exclusive).
    pub end_pc: u64,
    /// Frame size in bytes (16-aligned; slot offsets are relative to
    /// the post-prologue stack pointer).
    pub frame_size: i64,
    /// Frame offset of the first alloca area. Offsets below this are
    /// home slots and spill locals, which are compiler-internal and
    /// never address-taken; offsets at or above it belong to
    /// `StackAlloc` areas whose addresses may escape.
    pub alloca_base: i64,
    /// Frame offsets of the home slots of pointer-classified variables
    /// (ascending). These are exactly the slots whose shadow words
    /// carry metadata.
    pub ptr_slots: Vec<i64>,
    /// Number of IR `MetaStore` instructions lowered — the
    /// through-pointer metadata copies the binary must contain (each
    /// emits one dynamic-container `sbdl`/`sbdu` pair).
    pub meta_stores: usize,
    /// IR checked-dereference sites mapped to emitted instructions.
    pub checks: Vec<CheckSite>,
    /// `-O1` register assignment: `(home slot, cache register)` pairs in
    /// ascending slot order. Empty at `-O0`. The validator checks this
    /// table structurally (slot range/alignment, pool membership) and
    /// re-proves every use of a cached register semantically.
    pub reg_assign: Vec<(i64, Reg)>,
}

/// One IR-level checked dereference and the machine instruction that
/// implements it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckSite {
    /// IR block index.
    pub block: u32,
    /// IR instruction index within the block.
    pub inst: u32,
    /// Program-wide index of the emitted checked load/store.
    pub at: usize,
    /// Home-slot offset of the pointer variable the check consumes.
    pub slot: i64,
    /// Whether the site is a store (write) access.
    pub is_store: bool,
}

/// Lowers and returns the [`LowerPlan`] side-tables alongside the
/// program.
///
/// # Errors
///
/// Same as the plain `lower` path.
pub fn lower_with_plan(
    module: &Module,
    scheme: Scheme,
) -> Result<(Program, LowerPlan), CompileError> {
    lower_with_plan_opt(module, scheme, OptLevel::O0)
}

/// [`lower_with_plan`] at a caller-chosen [`OptLevel`].
///
/// # Errors
///
/// Same as the plain `lower` path.
pub fn lower_with_plan_opt(
    module: &Module,
    scheme: Scheme,
    opt: OptLevel,
) -> Result<(Program, LowerPlan), CompileError> {
    if module.func("main").is_none() {
        return Err(CompileError::MissingMain);
    }
    let layout = MemoryLayout::default();
    let mut asm = Asm::new(layout.text_base);

    // Global placement.
    let mut global_addrs = Vec::with_capacity(module.globals.len());
    let mut next = layout.data_base;
    for g in &module.globals {
        global_addrs.push(next);
        next += g.size.div_ceil(8) * 8;
    }

    // Startup shim: initialise globals, call main, exit with its result.
    for (g, &addr) in module.globals.iter().zip(&global_addrs) {
        for &(off, val) in &g.init {
            asm.li(Reg::T0, (addr + off) as i64);
            asm.li(Reg::T1, val as i64);
            asm.push(Instr::Store {
                width: StoreWidth::D,
                rs1: Reg::T0,
                rs2: Reg::T1,
                offset: 0,
                checked: false,
            });
        }
    }
    asm.call_fixup("main");
    asm.li(Reg::A7, syscall::EXIT as i64);
    asm.push(Instr::Ecall);

    // Functions.
    let mut funcs = Vec::new();
    for f in &module.funcs {
        let start = asm.instrs.len();
        asm.begin_func(&f.name);
        let mut fp = FnLower::new(&mut asm, f, module, scheme, &global_addrs, opt).run()?;
        fp.len = asm.instrs.len() - start;
        fp.start_pc = layout.text_base + start as u64 * 4;
        fp.end_pc = layout.text_base + asm.instrs.len() as u64 * 4;
        funcs.push(fp);
    }

    asm.resolve()?;
    Ok((
        Program::from_instrs(layout.text_base, asm.instrs),
        LowerPlan { scheme, funcs },
    ))
}

/// A pending control-flow patch.
enum Fixup {
    /// `jal` to a function by name.
    Call(String),
    /// `jal zero` to a (function-local) block; resolved per function.
    Block { func_start: usize, block: u32 },
}

struct Asm {
    base: u64,
    instrs: Vec<Instr>,
    fixups: Vec<(usize, Fixup)>,
    func_starts: HashMap<String, usize>,
    /// Block-index → instruction-index tables per function start.
    block_tables: HashMap<usize, Vec<usize>>,
}

impl Asm {
    fn new(base: u64) -> Self {
        Asm {
            base,
            instrs: Vec::new(),
            fixups: Vec::new(),
            func_starts: HashMap::new(),
            block_tables: HashMap::new(),
        }
    }

    fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    fn begin_func(&mut self, name: &str) {
        self.func_starts.insert(name.to_string(), self.instrs.len());
    }

    fn call_fixup(&mut self, name: &str) {
        self.fixups
            .push((self.instrs.len(), Fixup::Call(name.to_string())));
        self.push(Instr::Jal {
            rd: Reg::Ra,
            offset: 0,
        });
    }

    fn jump_block_fixup(&mut self, func_start: usize, block: u32) {
        self.fixups
            .push((self.instrs.len(), Fixup::Block { func_start, block }));
        self.push(Instr::Jal {
            rd: Reg::Zero,
            offset: 0,
        });
    }

    /// Materialises a 64-bit immediate into `rd`.
    fn li(&mut self, rd: Reg, v: i64) {
        if (-2048..=2047).contains(&v) {
            self.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1: Reg::Zero,
                imm: v,
            });
        } else if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
            let lo = (v << 52) >> 52; // sign-extended low 12
            let hi = v - lo;
            // hi is a multiple of 4096 that fits the U-format.
            self.push(Instr::Lui {
                rd,
                imm: ((hi as i32) as i64),
            });
            if lo != 0 {
                self.push(Instr::AluImm {
                    op: AluImmOp::Addiw,
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
        } else {
            let lo = (v << 52) >> 52;
            let rest = v.wrapping_sub(lo) >> 12;
            self.li(rd, rest);
            self.push(Instr::AluImm {
                op: AluImmOp::Slli,
                rd,
                rs1: rd,
                imm: 12,
            });
            if lo != 0 {
                self.push(Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
        }
    }

    fn resolve(&mut self) -> Result<(), CompileError> {
        for (at, fix) in std::mem::take(&mut self.fixups) {
            let target_idx = match &fix {
                Fixup::Call(name) => {
                    *self
                        .func_starts
                        .get(name)
                        .ok_or(CompileError::UnknownCallee {
                            caller: "<asm>".into(),
                            callee: name.clone(),
                        })?
                }
                Fixup::Block { func_start, block } => {
                    self.block_tables[func_start][*block as usize]
                }
            };
            let offset = (target_idx as i64 - at as i64) * 4;
            match &mut self.instrs[at] {
                Instr::Jal { offset: o, .. } => *o = offset,
                other => unreachable!("fixup on non-jal {other:?}"),
            }
        }
        let _ = self.base;
        Ok(())
    }
}

/// One `-O1` cache fact: register `r` currently holds the value of a
/// frame cell, optionally with its shadow metadata resident in `SRF[r]`.
/// Mirrors (a conservative subset of) `binval`'s abstract register
/// state, so every elision the emitter makes is one the validator can
/// re-prove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheEntry {
    /// Home slot whose current value the register holds.
    slot: i64,
    /// `SRF[r]` lower half was loaded from this slot's shadow and is
    /// still current.
    srf_l: bool,
    /// Same for the upper (temporal) half.
    srf_u: bool,
}

/// The emitter-side abstract state carried across blocks at `-O1`:
/// per-register cache facts plus the `t2` metadata-shuttle fact (the
/// slot whose full shadow pair currently sits in `SRF[t2]`).
type CacheState = ([Option<CacheEntry>; 32], Option<i64>);

/// Pointwise must-meet of two cache states: a fact survives only if both
/// sides agree on it. Strictly more conservative than `binval`'s
/// abstract join (which also keeps matching-provenance/source facts with
/// weakened payloads), so everything the emitter assumes at a join the
/// validator can re-prove.
fn meet_cache(a: &CacheState, b: &CacheState) -> CacheState {
    let mut regs = [None; 32];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = match (a.0[i], b.0[i]) {
            (Some(x), Some(y)) if x.slot == y.slot => Some(CacheEntry {
                slot: x.slot,
                srf_l: x.srf_l && y.srf_l,
                srf_u: x.srf_u && y.srf_u,
            }),
            _ => None,
        };
    }
    let t2 = if a.1 == b.1 { a.1 } else { None };
    (regs, t2)
}

struct FnLower<'a> {
    asm: &'a mut Asm,
    f: &'a Function,
    module: &'a Module,
    scheme: Scheme,
    globals: &'a [u64],
    /// Frame offset of each var's home slot.
    slots: Vec<i64>,
    /// Frame offsets of each `StackAlloc` (in instruction order).
    alloca_offs: HashMap<(usize, usize), i64>,
    frame_size: i64,
    func_start: usize,
    locals_base: i64,
    pointer_vars: HashSet<VarId>,
    checks: Vec<CheckSite>,
    meta_stores: usize,
    opt: OptLevel,
    /// `-O1` register assignment (empty at `-O0`).
    alloc: Allocation,
    /// Variables whose defining write-through can be elided: zero uses
    /// and non-pointer (pointer slots anchor shadow metadata).
    elidable: HashSet<VarId>,
    /// IR CFG predecessors (reachable edges only), for the block-entry
    /// cache meet. Empty at `-O0`.
    preds: Vec<Vec<usize>>,
    /// Current cache facts while emitting a block.
    cache: [Option<CacheEntry>; 32],
    /// Slot whose full shadow pair is resident in `SRF[t2]`.
    t2_meta: Option<i64>,
    /// Recorded cache state at each block's exit (emission order).
    block_exit: Vec<Option<CacheState>>,
    /// Every frame cell the emitted code ever reloads ([`Self::load_slot`]).
    /// Filled by the `-O1` probe pass.
    slots_read: HashSet<i64>,
    /// Register-resident non-pointer cells the probe proved are never
    /// reloaded: their write-through stores are dead and elided in the
    /// real pass.
    no_store: HashSet<i64>,
}

const RA_SLOT: i64 = 0;

/// Argument registers in ABI order (`a0..a7`).
const ARG_REGS: [Reg; 8] = [
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
];

impl<'a> FnLower<'a> {
    fn new(
        asm: &'a mut Asm,
        f: &'a Function,
        module: &'a Module,
        scheme: Scheme,
        globals: &'a [u64],
        opt: OptLevel,
    ) -> Self {
        // Frame: [ra][var slots][local slots][alloca areas], 16-aligned.
        let mut off = 8i64;
        let slots: Vec<i64> = (0..f.num_vars).map(|i| off + (i as i64) * 8).collect();
        off += f.num_vars as i64 * 8;
        let locals_base = off;
        off += f.num_locals as i64 * 8;
        let mut alloca_offs = HashMap::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if let Inst::StackAlloc { size, .. } = inst {
                    alloca_offs.insert((bi, ii), off);
                    off += (size.div_ceil(8) * 8) as i64;
                }
            }
        }
        let frame_size = (off + 15) & !15;
        let func_start = asm.instrs.len();
        let pointer_vars = pointerish(f);
        let (alloc, elidable, preds) = if opt == OptLevel::O1 {
            let alloc = regalloc::allocate(f);
            let elidable = alloc
                .dead_vars
                .iter()
                .map(|&v| VarId(v))
                .filter(|v| !pointer_vars.contains(v))
                .collect();
            let preds = Cfg::new(f).preds;
            (alloc, elidable, preds)
        } else {
            (Allocation::default(), HashSet::new(), Vec::new())
        };
        let n_blocks = f.blocks.len();
        FnLower {
            asm,
            f,
            module,
            scheme,
            globals,
            slots,
            alloca_offs,
            frame_size,
            func_start,
            locals_base,
            pointer_vars,
            checks: Vec::new(),
            meta_stores: 0,
            opt,
            alloc,
            elidable,
            preds,
            cache: [None; 32],
            t2_meta: None,
            block_exit: vec![None; n_blocks],
            slots_read: HashSet::new(),
            no_store: HashSet::new(),
        }
    }

    fn o1(&self) -> bool {
        self.opt == OptLevel::O1
    }

    /// The cache register assigned to frame cell `slot`, if any.
    fn assigned(&self, slot: i64) -> Option<Reg> {
        self.alloc.assign.get(&slot).copied()
    }

    /// Drops every cache fact about register `r` (it is about to be
    /// overwritten with something the cache does not model).
    fn clobber(&mut self, r: Reg) {
        self.cache[r.index() as usize] = None;
    }

    /// A store outside the write-through discipline hit `slot`: any
    /// cached copy is stale.
    fn slot_written(&mut self, slot: i64) {
        if let Some(r) = self.assigned(slot) {
            if matches!(self.cache[r.index() as usize], Some(e) if e.slot == slot) {
                self.cache[r.index() as usize] = None;
            }
        }
    }

    /// `slot`'s shadow words were rewritten (`sbdl`/`sbdu`): SRF copies
    /// loaded from that shadow are stale. Mirrors `binval`'s `Sbdl`
    /// invalidation (the `t2` shuttle, as the store's own source
    /// operand, is exempt there and stays valid here).
    fn meta_written(&mut self, slot: i64) {
        for e in self.cache.iter_mut().flatten() {
            if e.slot == slot {
                e.srf_l = false;
                e.srf_u = false;
            }
        }
    }

    /// A call boundary: every register (and `SRF` entry) is
    /// caller-clobbered in this ABI, so all cache facts die.
    fn call_flush(&mut self) {
        self.cache = [None; 32];
        self.t2_meta = None;
    }

    /// Computes the block-entry cache state as the meet over CFG
    /// predecessors' recorded exits. Back edges (and the entry block)
    /// contribute bottom, which empties the meet — exactly the
    /// assumption-free state `binval`'s fixpoint join also converges to
    /// at loop headers.
    fn meet_entry(&mut self, bi: usize) {
        if !self.o1() {
            return;
        }
        let empty: CacheState = ([None; 32], None);
        let preds = &self.preds[bi];
        let state = if bi == 0 || preds.is_empty() || preds.iter().any(|&p| p >= bi) {
            empty
        } else {
            let mut acc: Option<CacheState> = None;
            for &p in preds {
                let px = self.block_exit[p].unwrap_or(empty);
                acc = Some(match acc {
                    None => px,
                    Some(cur) => meet_cache(&cur, &px),
                });
            }
            acc.unwrap_or(empty)
        };
        self.cache = state.0;
        self.t2_meta = state.1;
    }

    /// Loads slot `off` into `rd` (sp-relative, `t6` fallback for
    /// out-of-range offsets) — the raw `-O0` reload sequence.
    fn load_slot(&mut self, rd: Reg, off: i64) {
        if self.o1() {
            self.slots_read.insert(off);
        }
        if rd == Reg::T2 {
            // A plain load into t2 clears SRF[t2] architecturally.
            self.t2_meta = None;
        }
        if (-2048..=2047).contains(&off) {
            self.asm.push(Instr::Load {
                width: LoadWidth::D,
                rd,
                rs1: Reg::Sp,
                offset: off,
                checked: false,
            });
        } else {
            self.frame_addr(Reg::T6, off);
            self.asm.push(Instr::Load {
                width: LoadWidth::D,
                rd,
                rs1: Reg::T6,
                offset: 0,
                checked: false,
            });
        }
    }

    /// Stores `rs` to slot `off` (sp-relative, `t6` fallback).
    fn store_slot(&mut self, rs: Reg, off: i64) {
        if (-2048..=2047).contains(&off) {
            self.asm.push(Instr::Store {
                width: StoreWidth::D,
                rs1: Reg::Sp,
                rs2: rs,
                offset: off,
                checked: false,
            });
        } else {
            self.frame_addr(Reg::T6, off);
            self.asm.push(Instr::Store {
                width: StoreWidth::D,
                rs1: Reg::T6,
                rs2: rs,
                offset: 0,
                checked: false,
            });
        }
    }

    /// Produces a register holding var `v`'s current value. At `-O0`
    /// (or for unassigned vars) this reloads into `fallback`; at `-O1`
    /// it returns the cache register, reloading only on a cache miss.
    fn use_var(&mut self, fallback: Reg, v: VarId) -> Reg {
        let s = self.slot(v);
        if self.o1() {
            if let Some(r) = self.assigned(s) {
                let hit = matches!(self.cache[r.index() as usize], Some(e) if e.slot == s);
                if !hit {
                    // A plain load also clears `SRF[r]` architecturally,
                    // which the fresh entry's false flags mirror.
                    self.load_slot(r, s);
                    self.cache[r.index() as usize] = Some(CacheEntry {
                        slot: s,
                        srf_l: false,
                        srf_u: false,
                    });
                }
                return r;
            }
        }
        self.load_var(fallback, v);
        fallback
    }

    /// Forces var `v`'s value into the specific register `target`
    /// (calling convention / syscall argument slots).
    fn get_var_into(&mut self, target: Reg, v: VarId) {
        if self.o1() {
            let s = self.slot(v);
            if let Some(r) = self.assigned(s) {
                if matches!(self.cache[r.index() as usize], Some(e) if e.slot == s) {
                    self.asm.push(Instr::AluImm {
                        op: AluImmOp::Addi,
                        rd: target,
                        rs1: r,
                        imm: 0,
                    });
                    return;
                }
            }
        }
        self.load_var(target, v);
    }

    /// The register a definition of `v` should be computed into.
    fn def_reg(&mut self, fallback: Reg, v: VarId) -> Reg {
        if self.o1() {
            if let Some(r) = self.assigned(self.slot(v)) {
                self.clobber(r);
                return r;
            }
        }
        if fallback == Reg::T2 {
            // The caller is about to write t2 as a plain GPR, which
            // clears SRF[t2] architecturally.
            self.t2_meta = None;
        }
        fallback
    }

    /// Completes a definition of `v` whose value sits in `r`: the
    /// write-through store (elided for provably dead non-pointer
    /// definitions) plus cache bookkeeping.
    fn seal_def(&mut self, r: Reg, v: VarId) {
        let s = self.slot(v);
        if self.o1() && self.elidable.contains(&v) {
            // Nothing ever reads v (and its slot carries no metadata):
            // skip the store entirely. The register holds a value the
            // cache must not vouch for.
            self.clobber(r);
            return;
        }
        if !self.no_store.contains(&s) {
            self.store_slot(r, s);
        }
        if self.o1() {
            self.slot_written(s);
            if self.assigned(s) == Some(r) {
                self.cache[r.index() as usize] = Some(CacheEntry {
                    slot: s,
                    srf_l: false,
                    srf_u: false,
                });
            }
        }
    }

    /// Produces a register holding pointer var `p`'s value with its
    /// spatial (and optionally temporal) metadata resident in the SRF —
    /// the `-O1` generalisation of [`FnLower::load_ptr_with_meta`],
    /// batching `lbdls`/`lbdus` reloads away when the cache still holds
    /// them.
    fn use_ptr_meta(&mut self, p: VarId, upper_too: bool) -> Reg {
        if !self.o1() {
            self.load_ptr_with_meta(Reg::T0, p, upper_too);
            return Reg::T0;
        }
        let r = self.use_var(Reg::T0, p);
        if self.scheme.uses_hardware() && self.pointer_vars.contains(&p) {
            let s = self.slot(p);
            let (need_l, need_u) = match self.cache[r.index() as usize] {
                Some(e) if e.slot == s => (!e.srf_l, upper_too && !e.srf_u),
                _ => (true, upper_too),
            };
            if need_l || need_u {
                self.frame_addr(Reg::T6, s);
                if need_l {
                    self.asm.push(Instr::Lbdls {
                        rd: r,
                        rs1: Reg::T6,
                        offset: 0,
                    });
                }
                if need_u {
                    self.asm.push(Instr::Lbdus {
                        rd: r,
                        rs1: Reg::T6,
                        offset: 0,
                    });
                }
                if let Some(e) = &mut self.cache[r.index() as usize] {
                    if e.slot == s {
                        e.srf_l |= need_l;
                        e.srf_u |= need_u;
                    }
                }
            }
        }
        r
    }

    fn slot(&self, v: VarId) -> i64 {
        self.slots[v.0 as usize]
    }

    /// `rd = sp + off` (handles offsets beyond the addi range via t6).
    fn frame_addr(&mut self, rd: Reg, off: i64) {
        if (-2048..=2047).contains(&off) {
            self.asm.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1: Reg::Sp,
                imm: off,
            });
        } else {
            self.asm.li(Reg::T6, off);
            self.asm.push(Instr::Alu {
                op: AluOp::Add,
                rd,
                rs1: Reg::Sp,
                rs2: Reg::T6,
            });
        }
    }

    /// Loads var `v` into `rd`.
    fn load_var(&mut self, rd: Reg, v: VarId) {
        let off = self.slot(v);
        self.load_slot(rd, off);
    }

    /// Stores `rs` into var `v`'s home slot.
    fn store_var(&mut self, rs: Reg, v: VarId) {
        let off = self.slot(v);
        self.store_slot(rs, off);
    }

    /// Loads pointer var `p` into `rd` and, for hardware schemes, its
    /// spatial metadata into `SRF[rd]` from the home slot's shadow.
    fn load_ptr_with_meta(&mut self, rd: Reg, p: VarId, upper_too: bool) {
        self.load_var(rd, p);
        if self.scheme.uses_hardware() && self.pointer_vars.contains(&p) {
            self.frame_addr(Reg::T6, self.slot(p));
            self.asm.push(Instr::Lbdls {
                rd,
                rs1: Reg::T6,
                offset: 0,
            });
            if upper_too {
                self.asm.push(Instr::Lbdus {
                    rd,
                    rs1: Reg::T6,
                    offset: 0,
                });
            }
        }
    }

    /// Records the checked load/store about to be emitted at the
    /// current instruction index.
    fn note_check(&mut self, bi: usize, ii: usize, addr: VarId, is_store: bool) {
        self.checks.push(CheckSite {
            block: bi as u32,
            inst: ii as u32,
            at: self.asm.instrs.len(),
            slot: self.slot(addr),
            is_store,
        });
    }

    /// Emits the prologue, parameter parking and every block; returns
    /// the block offset table. Called twice at `-O1`: once as a probe
    /// (discarded) to discover which frame cells are ever reloaded, then
    /// for real with the dead write-through stores elided.
    fn emit_body(&mut self) -> Result<Vec<usize>, CompileError> {
        // Prologue.
        let fs = self.frame_size;
        if fs <= 2047 {
            self.asm.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::Sp,
                rs1: Reg::Sp,
                imm: -fs,
            });
        } else {
            self.asm.li(Reg::T6, fs);
            self.asm.push(Instr::Alu {
                op: AluOp::Sub,
                rd: Reg::Sp,
                rs1: Reg::Sp,
                rs2: Reg::T6,
            });
        }
        self.asm.push(Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::Sp,
            rs2: Reg::Ra,
            offset: RA_SLOT,
            checked: false,
        });
        // Park parameters in their home slots.
        let params = self.f.params.clone();
        if params.len() > ARG_REGS.len() {
            return Err(CompileError::TooManyArgs {
                caller: self.f.name.clone(),
                callee: self.f.name.clone(),
                count: params.len(),
            });
        }
        for (&p, &a) in params.iter().zip(ARG_REGS.iter()) {
            self.store_var(a, p);
        }

        // Blocks.
        let mut table = vec![0usize; self.f.blocks.len()];
        for (bi, block) in self.f.blocks.iter().enumerate() {
            table[bi] = self.asm.instrs.len();
            self.meet_entry(bi);
            for (ii, inst) in block.insts.iter().enumerate() {
                self.lower_inst(bi, ii, inst)?;
            }
            self.lower_term(&block.term);
            if self.o1() {
                self.block_exit[bi] = Some((self.cache, self.t2_meta));
            }
        }
        Ok(table)
    }

    fn run(mut self) -> Result<FnPlan, CompileError> {
        if self.o1() {
            // Probe pass. Elision only ever *removes* stores, never
            // changes cache bookkeeping or control flow, so the probe's
            // observed reload set is exactly the real pass's.
            let insts0 = self.asm.instrs.len();
            let fixups0 = self.asm.fixups.len();
            self.emit_body()?;
            self.asm.instrs.truncate(insts0);
            self.asm.fixups.truncate(fixups0);
            self.checks.clear();
            self.meta_stores = 0;
            self.cache = [None; 32];
            self.t2_meta = None;
            self.block_exit = vec![None; self.f.blocks.len()];
            let reads = std::mem::take(&mut self.slots_read);
            let ptr_slots: HashSet<i64> = self.pointer_vars.iter().map(|&v| self.slot(v)).collect();
            self.no_store = self
                .alloc
                .assign
                .keys()
                .copied()
                .filter(|s| !reads.contains(s) && !ptr_slots.contains(s))
                .collect();
        }
        let table = self.emit_body()?;
        self.asm.block_tables.insert(self.func_start, table);

        let mut ptr_slots: Vec<i64> = self.pointer_vars.iter().map(|&v| self.slot(v)).collect();
        ptr_slots.sort_unstable();
        let reg_assign: Vec<(i64, Reg)> = self.alloc.assign.iter().map(|(&s, &r)| (s, r)).collect();
        Ok(FnPlan {
            name: self.f.name.clone(),
            start: self.func_start,
            len: 0,      // patched by the caller once emission is complete
            start_pc: 0, // patched by the caller (needs the final layout)
            end_pc: 0,   // patched by the caller
            frame_size: self.frame_size,
            alloca_base: self.locals_base + self.f.num_locals as i64 * 8,
            ptr_slots,
            meta_stores: self.meta_stores,
            checks: std::mem::take(&mut self.checks),
            reg_assign,
        })
    }

    fn epilogue(&mut self) {
        self.asm.push(Instr::Load {
            width: LoadWidth::D,
            rd: Reg::Ra,
            rs1: Reg::Sp,
            offset: RA_SLOT,
            checked: false,
        });
        let fs = self.frame_size;
        if fs <= 2047 {
            self.asm.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::Sp,
                rs1: Reg::Sp,
                imm: fs,
            });
        } else {
            self.asm.li(Reg::T6, fs);
            self.asm.push(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::Sp,
                rs1: Reg::Sp,
                rs2: Reg::T6,
            });
        }
        self.asm.push(Instr::Jalr {
            rd: Reg::Zero,
            rs1: Reg::Ra,
            offset: 0,
        });
    }

    fn lower_term(&mut self, t: &Terminator) {
        match t {
            Terminator::Ret { value } => {
                if let Some(v) = value {
                    self.get_var_into(Reg::A0, *v);
                }
                self.epilogue();
            }
            Terminator::Jmp(b) => {
                self.asm.jump_block_fixup(self.func_start, b.0);
            }
            Terminator::Br { cond, then_, else_ } => {
                let c = self.use_var(Reg::T0, *cond);
                // beq c, zero, +8  (skip the taken-jal)
                self.asm.push(Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: c,
                    rs2: Reg::Zero,
                    offset: 8,
                });
                self.asm.jump_block_fixup(self.func_start, then_.0);
                self.asm.jump_block_fixup(self.func_start, else_.0);
            }
        }
    }

    fn ecall(&mut self, num: u64) {
        self.asm.li(Reg::A7, num as i64);
        self.asm.push(Instr::Ecall);
    }

    fn lower_inst(&mut self, bi: usize, ii: usize, inst: &Inst) -> Result<(), CompileError> {
        let hw = self.scheme.uses_hardware();
        match inst.clone() {
            Inst::Const { dst, value } => {
                let rd = self.def_reg(Reg::T0, dst);
                self.asm.li(rd, value);
                self.seal_def(rd, dst);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let a = self.use_var(Reg::T0, lhs);
                let b = self.use_var(Reg::T1, rhs);
                let rd = self.def_reg(Reg::T2, dst);
                self.bin_op(op, rd, a, b);
                self.seal_def(rd, dst);
            }
            Inst::BinImm { op, dst, lhs, imm } => {
                let a = self.use_var(Reg::T0, lhs);
                let rd = self.def_reg(Reg::T2, dst);
                self.bin_imm_op(op, rd, a, imm);
                self.seal_def(rd, dst);
            }
            Inst::Load {
                dst,
                addr,
                offset,
                width,
            } => {
                let checked = hw && self.pointer_vars.contains(&addr);
                let ra = self.use_ptr_meta(addr, false);
                let (rs1, off) = self.fold_offset_r(ra, offset);
                if checked {
                    self.note_check(bi, ii, addr, false);
                }
                let rd = self.def_reg(Reg::T2, dst);
                self.asm.push(Instr::Load {
                    width: machine_load_width(width),
                    rd,
                    rs1,
                    offset: off,
                    checked,
                });
                self.seal_def(rd, dst);
            }
            Inst::Store {
                src,
                addr,
                offset,
                width,
            } => {
                let checked = hw && self.pointer_vars.contains(&addr);
                let ra = self.use_ptr_meta(addr, false);
                let (rs1, off) = self.fold_offset_r(ra, offset);
                let rs2 = self.use_var(Reg::T2, src);
                if checked {
                    self.note_check(bi, ii, addr, true);
                }
                self.asm.push(Instr::Store {
                    width: machine_store_width(width),
                    rs1,
                    rs2,
                    offset: off,
                    checked,
                });
            }
            Inst::LoadPtr { dst, addr, offset } => {
                let checked = hw && self.pointer_vars.contains(&addr);
                let ra = self.use_ptr_meta(addr, false);
                let (rs1, off) = self.fold_offset_r(ra, offset);
                if checked {
                    self.note_check(bi, ii, addr, false);
                }
                let rd = self.def_reg(Reg::T2, dst);
                self.asm.push(Instr::Load {
                    width: LoadWidth::D,
                    rd,
                    rs1,
                    offset: off,
                    checked,
                });
                self.seal_def(rd, dst);
            }
            Inst::StorePtr { src, addr, offset } => {
                let checked = hw && self.pointer_vars.contains(&addr);
                let ra = self.use_ptr_meta(addr, false);
                let (rs1, off) = self.fold_offset_r(ra, offset);
                let rs2 = self.use_var(Reg::T2, src);
                if checked {
                    self.note_check(bi, ii, addr, true);
                }
                self.asm.push(Instr::Store {
                    width: StoreWidth::D,
                    rs1,
                    rs2,
                    offset: off,
                    checked,
                });
            }
            Inst::AddrOfGlobal { dst, global } => {
                let addr = self.globals[global.0 as usize];
                let rd = self.def_reg(Reg::T0, dst);
                self.asm.li(rd, addr as i64);
                self.seal_def(rd, dst);
                if hw {
                    // Globals have static bounds: bind them (and a zero
                    // temporal half) into the home-slot shadow directly.
                    let size = self.module.globals[global.0 as usize].size.div_ceil(8) * 8;
                    self.asm.li(Reg::T1, (addr + size) as i64);
                    self.asm.push(Instr::Bndrs {
                        rd: Reg::T2,
                        rs1: rd,
                        rs2: Reg::T1,
                    });
                    self.asm.push(Instr::Bndrt {
                        rd: Reg::T2,
                        rs1: Reg::Zero,
                        rs2: Reg::Zero,
                    });
                    self.t2_meta = None; // SRF[t2] now holds fresh bounds
                    self.frame_addr(Reg::T3, self.slot(dst));
                    self.asm.push(Instr::Sbdl {
                        rs1: Reg::T3,
                        rs2: Reg::T2,
                        offset: 0,
                    });
                    self.asm.push(Instr::Sbdu {
                        rs1: Reg::T3,
                        rs2: Reg::T2,
                        offset: 0,
                    });
                    self.meta_written(self.slot(dst));
                }
            }
            Inst::StackAlloc { dst, .. } => {
                let off = self.alloca_offs[&(bi, ii)];
                let rd = self.def_reg(Reg::T0, dst);
                self.frame_addr(rd, off);
                self.seal_def(rd, dst);
            }
            Inst::Malloc { dst, size } => {
                self.get_var_into(Reg::A0, size);
                self.ecall(syscall::MALLOC);
                self.store_var(Reg::A0, dst);
                self.slot_written(self.slot(dst));
            }
            Inst::MallocMeta {
                dst,
                size,
                key,
                lock,
            } => {
                self.get_var_into(Reg::A0, size);
                self.ecall(syscall::MALLOC);
                self.store_var(Reg::A0, dst);
                self.slot_written(self.slot(dst));
                self.store_var(Reg::A1, key);
                self.slot_written(self.slot(key));
                self.store_var(Reg::A2, lock);
                self.slot_written(self.slot(lock));
            }
            Inst::Free { ptr } => {
                self.get_var_into(Reg::A0, ptr);
                self.asm.li(Reg::A1, 0);
                self.ecall(syscall::FREE);
            }
            Inst::FreeMeta { ptr, lock } => {
                self.get_var_into(Reg::A0, ptr);
                self.get_var_into(Reg::A1, lock);
                self.ecall(syscall::FREE);
            }
            Inst::FrameLock { key, lock } => {
                self.ecall(syscall::LOCK_ACQUIRE);
                self.store_var(Reg::A0, key);
                self.slot_written(self.slot(key));
                self.store_var(Reg::A1, lock);
                self.slot_written(self.slot(lock));
            }
            Inst::FrameUnlock { lock } => {
                self.get_var_into(Reg::A0, lock);
                self.ecall(syscall::LOCK_RELEASE);
            }
            Inst::Gep { dst, base, offset } => {
                let a = self.use_var(Reg::T0, base);
                let b = self.use_var(Reg::T1, offset);
                let rd = self.def_reg(Reg::T2, dst);
                self.asm.push(Instr::Alu {
                    op: AluOp::Add,
                    rd,
                    rs1: a,
                    rs2: b,
                });
                self.seal_def(rd, dst);
                self.copy_home_meta(base, dst);
            }
            Inst::GepImm { dst, base, imm } => {
                let a = self.use_var(Reg::T0, base);
                let rd = self.def_reg(Reg::T2, dst);
                self.bin_imm_op(BinOp::Add, rd, a, imm);
                self.seal_def(rd, dst);
                self.copy_home_meta(base, dst);
            }
            Inst::Call { dst, func, args } => {
                if args.len() > 8 {
                    return Err(CompileError::TooManyArgs {
                        caller: self.f.name.clone(),
                        callee: func.clone(),
                        count: args.len(),
                    });
                }
                if self.module.func(&func).is_none() {
                    return Err(CompileError::UnknownCallee {
                        caller: self.f.name.clone(),
                        callee: func,
                    });
                }
                for (&a, &r) in args.iter().zip(ARG_REGS.iter()) {
                    self.get_var_into(r, a);
                }
                self.asm.call_fixup(&func);
                self.call_flush();
                if let Some(d) = dst {
                    self.store_var(Reg::A0, d);
                }
            }
            Inst::PutChar { src } => {
                self.get_var_into(Reg::A0, src);
                self.ecall(syscall::PUTCHAR);
            }
            Inst::PrintU64 { src } => {
                self.get_var_into(Reg::A0, src);
                self.ecall(syscall::PRINT_U64);
            }
            Inst::BindSpatial { ptr, base, bound } => {
                let a = self.use_var(Reg::T0, base);
                let b = self.use_var(Reg::T1, bound);
                self.asm.push(Instr::Bndrs {
                    rd: Reg::T2,
                    rs1: a,
                    rs2: b,
                });
                self.t2_meta = None; // SRF[t2] now holds fresh bounds
                self.frame_addr(Reg::T3, self.slot(ptr));
                self.asm.push(Instr::Sbdl {
                    rs1: Reg::T3,
                    rs2: Reg::T2,
                    offset: 0,
                });
                self.meta_written(self.slot(ptr));
            }
            Inst::BindTemporal { ptr, key, lock } => {
                let a = self.use_var(Reg::T0, key);
                let b = self.use_var(Reg::T1, lock);
                self.asm.push(Instr::Bndrt {
                    rd: Reg::T2,
                    rs1: a,
                    rs2: b,
                });
                self.t2_meta = None; // SRF[t2] now holds a fresh temporal half
                self.frame_addr(Reg::T3, self.slot(ptr));
                self.asm.push(Instr::Sbdu {
                    rs1: Reg::T3,
                    rs2: Reg::T2,
                    offset: 0,
                });
                self.meta_written(self.slot(ptr));
            }
            Inst::MetaStore {
                ptr,
                container,
                offset,
            } => {
                self.meta_stores += 1;
                // ptr's home shadow → SRF[t2] → container's shadow. At
                // -O1 the shuttle load is scheduled away when SRF[t2]
                // already holds this slot's pair.
                let ps = self.slot(ptr);
                if !(self.o1() && self.t2_meta == Some(ps)) {
                    self.frame_addr(Reg::T1, ps);
                    self.asm.push(Instr::Lbdls {
                        rd: Reg::T2,
                        rs1: Reg::T1,
                        offset: 0,
                    });
                    self.asm.push(Instr::Lbdus {
                        rd: Reg::T2,
                        rs1: Reg::T1,
                        offset: 0,
                    });
                    if self.o1() {
                        self.t2_meta = Some(ps);
                    }
                }
                let rc = self.use_var(Reg::T0, container);
                let (rs1, off) = self.fold_offset_r(rc, offset);
                self.asm.push(Instr::Sbdl {
                    rs1,
                    rs2: Reg::T2,
                    offset: off,
                });
                self.asm.push(Instr::Sbdu {
                    rs1,
                    rs2: Reg::T2,
                    offset: off,
                });
            }
            Inst::MetaLoad {
                ptr,
                container,
                offset,
            } => {
                let rc = self.use_var(Reg::T0, container);
                let (rs1, off) = self.fold_offset_r(rc, offset);
                self.asm.push(Instr::Lbdls {
                    rd: Reg::T2,
                    rs1,
                    offset: off,
                });
                self.asm.push(Instr::Lbdus {
                    rd: Reg::T2,
                    rs1,
                    offset: off,
                });
                self.t2_meta = None; // dynamically-sourced halves
                self.frame_addr(Reg::T1, self.slot(ptr));
                self.asm.push(Instr::Sbdl {
                    rs1: Reg::T1,
                    rs2: Reg::T2,
                    offset: 0,
                });
                self.asm.push(Instr::Sbdu {
                    rs1: Reg::T1,
                    rs2: Reg::T2,
                    offset: 0,
                });
                self.meta_written(self.slot(ptr));
            }
            Inst::LocalGet { dst, index } => {
                let off = self.locals_base + index.0 as i64 * 8;
                let cached = self
                    .assigned(off)
                    .filter(|r| matches!(self.cache[r.index() as usize], Some(e) if e.slot == off));
                let rd = self.def_reg(Reg::T0, dst);
                match cached {
                    Some(rl) if rl != rd => {
                        self.asm.push(Instr::AluImm {
                            op: AluImmOp::Addi,
                            rd,
                            rs1: rl,
                            imm: 0,
                        });
                    }
                    Some(_) => {} // value already in place
                    None => self.load_slot(rd, off),
                }
                self.seal_def(rd, dst);
            }
            Inst::LocalSet { src, index } => {
                let off = self.locals_base + index.0 as i64 * 8;
                let rs = self.use_var(Reg::T0, src);
                match self.assigned(off) {
                    Some(rl) if self.o1() => {
                        if rl != rs {
                            self.clobber(rl);
                            self.asm.push(Instr::AluImm {
                                op: AluImmOp::Addi,
                                rd: rl,
                                rs1: rs,
                                imm: 0,
                            });
                        }
                        if !self.no_store.contains(&off) {
                            self.store_slot(rl, off);
                        }
                        self.cache[rl.index() as usize] = Some(CacheEntry {
                            slot: off,
                            srf_l: false,
                            srf_u: false,
                        });
                    }
                    _ => {
                        self.store_slot(rs, off);
                        self.slot_written(off);
                    }
                }
            }
            Inst::MetaLoadField {
                dst,
                container,
                offset,
                field,
            } => {
                let rc = self.use_var(Reg::T0, container);
                let (rs1, off) = self.fold_offset_r(rc, offset);
                let rd = self.def_reg(Reg::T1, dst);
                let i = match field {
                    MetaField::Base => Instr::Lbas {
                        rd,
                        rs1,
                        offset: off,
                    },
                    MetaField::Bound => Instr::Lbnd {
                        rd,
                        rs1,
                        offset: off,
                    },
                    MetaField::Key => Instr::Lkey {
                        rd,
                        rs1,
                        offset: off,
                    },
                    MetaField::Lock => Instr::Lloc {
                        rd,
                        rs1,
                        offset: off,
                    },
                };
                self.asm.push(i);
                self.seal_def(rd, dst);
            }
            Inst::Tchk { ptr } => {
                let r = self.use_ptr_meta(ptr, true);
                self.asm.push(Instr::Tchk { rs1: r });
            }
            Inst::AbortSpatial { addr, base, bound } => {
                self.get_var_into(Reg::A0, addr);
                self.get_var_into(Reg::A1, base);
                self.get_var_into(Reg::A2, bound);
                self.ecall(syscall::ABORT_SPATIAL);
            }
            Inst::AbortTemporal { key, lock, stored } => {
                self.get_var_into(Reg::A0, key);
                self.get_var_into(Reg::A1, lock);
                self.get_var_into(Reg::A2, stored);
                self.ecall(syscall::ABORT_TEMPORAL);
            }
        }
        Ok(())
    }

    /// Copies the home-slot shadow metadata of `src` to `dst` (pointer
    /// arithmetic propagation in the `-O0` stack-machine model: what the
    /// bypass network does register-to-register in hardware happens
    /// through the frame slots' shadows here).
    fn copy_home_meta(&mut self, src: VarId, dst: VarId) {
        if !(self.scheme.uses_hardware() && self.pointer_vars.contains(&src)) {
            return;
        }
        let ssrc = self.slot(src);
        let sdst = self.slot(dst);
        // At -O1 the shuttle reload is scheduled away when SRF[t2]
        // already holds this slot's pair (batched lbdls across a
        // straight-line pointer-arithmetic region).
        if !(self.o1() && self.t2_meta == Some(ssrc)) {
            self.frame_addr(Reg::T3, ssrc);
            self.asm.push(Instr::Lbdls {
                rd: Reg::T2,
                rs1: Reg::T3,
                offset: 0,
            });
            self.asm.push(Instr::Lbdus {
                rd: Reg::T2,
                rs1: Reg::T3,
                offset: 0,
            });
            if self.o1() {
                self.t2_meta = Some(ssrc);
            }
        }
        self.frame_addr(Reg::T3, sdst);
        self.asm.push(Instr::Sbdl {
            rs1: Reg::T3,
            rs2: Reg::T2,
            offset: 0,
        });
        self.asm.push(Instr::Sbdu {
            rs1: Reg::T3,
            rs2: Reg::T2,
            offset: 0,
        });
        self.meta_written(sdst);
    }

    /// Folds an out-of-range constant offset into the address register,
    /// returning the `(rs1, offset)` pair to use for the access. At
    /// `-O0` the fold mutates `addr` in place (it is always a scratch
    /// register there); at `-O1` an allocated pool register must not be
    /// clobbered, so the folded address is built in `t0` instead.
    fn fold_offset_r(&mut self, addr: Reg, offset: i64) -> (Reg, i64) {
        if (-2048..=2047).contains(&offset) {
            (addr, offset)
        } else if self.o1() && regalloc::POOL.contains(&addr) {
            self.asm.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: addr,
                imm: 0,
            });
            self.asm.li(Reg::T5, offset);
            self.asm.push(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T0,
                rs2: Reg::T5,
            });
            (Reg::T0, 0)
        } else {
            self.asm.li(Reg::T5, offset);
            self.asm.push(Instr::Alu {
                op: AluOp::Add,
                rd: addr,
                rs1: addr,
                rs2: Reg::T5,
            });
            (addr, 0)
        }
    }

    fn bin_op(&mut self, op: BinOp, rd: Reg, a: Reg, b: Reg) {
        let alu = |o| Instr::Alu {
            op: o,
            rd,
            rs1: a,
            rs2: b,
        };
        match op {
            BinOp::Add => self.asm.push(alu(AluOp::Add)),
            BinOp::Sub => self.asm.push(alu(AluOp::Sub)),
            BinOp::Mul => self.asm.push(alu(AluOp::Mul)),
            BinOp::Div => self.asm.push(alu(AluOp::Div)),
            BinOp::Rem => self.asm.push(alu(AluOp::Rem)),
            BinOp::And => self.asm.push(alu(AluOp::And)),
            BinOp::Or => self.asm.push(alu(AluOp::Or)),
            BinOp::Xor => self.asm.push(alu(AluOp::Xor)),
            BinOp::Sll => self.asm.push(alu(AluOp::Sll)),
            BinOp::Srl => self.asm.push(alu(AluOp::Srl)),
            BinOp::Sra => self.asm.push(alu(AluOp::Sra)),
            BinOp::Slt => self.asm.push(alu(AluOp::Slt)),
            BinOp::Sltu => self.asm.push(alu(AluOp::Sltu)),
            BinOp::Eq => {
                self.asm.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd,
                    rs1: a,
                    rs2: b,
                });
                self.asm.push(Instr::AluImm {
                    op: AluImmOp::Sltiu,
                    rd,
                    rs1: rd,
                    imm: 1,
                });
            }
            BinOp::Ne => {
                self.asm.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd,
                    rs1: a,
                    rs2: b,
                });
                self.asm.push(Instr::Alu {
                    op: AluOp::Sltu,
                    rd,
                    rs1: Reg::Zero,
                    rs2: rd,
                });
            }
        }
    }

    fn bin_imm_op(&mut self, op: BinOp, rd: Reg, a: Reg, imm: i64) {
        let imm_ok = (-2048..=2047).contains(&imm);
        match op {
            BinOp::Add if imm_ok => self.asm.push(Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::And if imm_ok => self.asm.push(Instr::AluImm {
                op: AluImmOp::Andi,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Or if imm_ok => self.asm.push(Instr::AluImm {
                op: AluImmOp::Ori,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Xor if imm_ok => self.asm.push(Instr::AluImm {
                op: AluImmOp::Xori,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Sll if (0..64).contains(&imm) => self.asm.push(Instr::AluImm {
                op: AluImmOp::Slli,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Srl if (0..64).contains(&imm) => self.asm.push(Instr::AluImm {
                op: AluImmOp::Srli,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Sra if (0..64).contains(&imm) => self.asm.push(Instr::AluImm {
                op: AluImmOp::Srai,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Slt if imm_ok => self.asm.push(Instr::AluImm {
                op: AluImmOp::Slti,
                rd,
                rs1: a,
                imm,
            }),
            BinOp::Sltu if imm_ok => self.asm.push(Instr::AluImm {
                op: AluImmOp::Sltiu,
                rd,
                rs1: a,
                imm,
            }),
            _ => {
                // General case: materialise and use the register form.
                self.asm.li(Reg::T4, imm);
                self.bin_op(op, rd, a, Reg::T4);
            }
        }
    }
}

fn machine_load_width(w: Width) -> LoadWidth {
    match w {
        Width::U8 => LoadWidth::Bu,
        Width::U16 => LoadWidth::Hu,
        Width::U32 => LoadWidth::Wu,
        Width::U64 => LoadWidth::D,
    }
}

fn machine_store_width(w: Width) -> StoreWidth {
    match w {
        Width::U8 => StoreWidth::B,
        Width::U16 => StoreWidth::H,
        Width::U32 => StoreWidth::W,
        Width::U64 => StoreWidth::D,
    }
}

/// Conservative pointer-ish set: vars defined by pointer-producing ops or
/// used where only pointers make sense. (The instrumented module cannot
/// be re-validated — instrumentation emits raw address arithmetic — so
/// this local inference replaces the front-end analysis.)
fn pointerish(f: &Function) -> HashSet<VarId> {
    let mut ptrs: HashSet<VarId> = f
        .params
        .iter()
        .zip(&f.param_is_ptr)
        .filter(|(_, &is)| is)
        .map(|(&v, _)| v)
        .collect();
    loop {
        let mut changed = false;
        for b in &f.blocks {
            for i in &b.insts {
                let def_is_ptr = match i {
                    Inst::AddrOfGlobal { .. }
                    | Inst::StackAlloc { .. }
                    | Inst::Malloc { .. }
                    | Inst::MallocMeta { .. }
                    | Inst::LoadPtr { .. } => true,
                    Inst::Gep { base, .. } | Inst::GepImm { base, .. } => ptrs.contains(base),
                    _ => false,
                };
                if def_is_ptr {
                    if let Some(d) = i.def() {
                        changed |= ptrs.insert(d);
                    }
                }
                // Uses that imply pointer-ness.
                let implied: Option<VarId> = match i {
                    Inst::BindSpatial { ptr, .. }
                    | Inst::BindTemporal { ptr, .. }
                    | Inst::MetaStore { ptr, .. }
                    | Inst::MetaLoad { ptr, .. }
                    | Inst::Tchk { ptr }
                    | Inst::FreeMeta { ptr, .. }
                    | Inst::Free { ptr } => Some(*ptr),
                    _ => None,
                };
                if let Some(p) = implied {
                    changed |= ptrs.insert(p);
                }
            }
        }
        if !changed {
            return ptrs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;

    #[test]
    fn li_materialises_arbitrary_values() {
        // Round-trip a set of tricky constants through the assembler by
        // checking the emitted sequences decode.
        for v in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x7fff_ffff,
            -0x8000_0000,
            0x1_0000_0000,
            0x1234_5678_9abc_def0u64 as i64,
            i64::MIN,
            i64::MAX,
        ] {
            let mut asm = Asm::new(0);
            asm.li(Reg::T0, v);
            // Interpret the sequence.
            let mut r: i64 = 0;
            for i in &asm.instrs {
                match *i {
                    Instr::AluImm { op, imm, .. } => r = op.eval(r as u64, imm) as i64,
                    Instr::Lui { imm, .. } => r = imm,
                    ref other => panic!("unexpected li instr {other}"),
                }
            }
            assert_eq!(r, v, "li({v:#x}) produced {r:#x}");
        }
    }

    #[test]
    fn lower_rejects_missing_main() {
        let m = Module::default();
        assert!(matches!(
            lower(&m, Scheme::None),
            Err(CompileError::MissingMain)
        ));
    }

    #[test]
    fn simple_module_lowers_and_disassembles() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let a = f.konst(40);
        let b = f.konst(2);
        let c = f.bin(BinOp::Add, a, b);
        f.ret(Some(c));
        f.finish();
        let m = mb.finish();
        let p = lower(&m, Scheme::None).unwrap();
        assert!(p.len() > 5);
        // Every emitted instruction encodes and decodes.
        for i in p.instrs() {
            assert_eq!(hwst_isa::decode(i.encode()).unwrap(), *i);
        }
    }

    #[test]
    fn fn_plan_symbol_ranges_tile_the_text_after_the_shim() {
        let mut mb = ModuleBuilder::new();
        let mut h = mb.func("helper");
        let k = h.konst(7);
        h.ret(Some(k));
        h.finish();
        let mut f = mb.func("main");
        let r = f.call("helper", &[]);
        f.ret(Some(r));
        f.finish();
        let m = mb.finish();
        let (p, plan) = lower_with_plan(&m, Scheme::None).unwrap();
        assert_eq!(plan.funcs.len(), 2);
        let end = p.base() + p.len() as u64 * 4;
        for w in plan.funcs.windows(2) {
            assert_eq!(w[0].end_pc, w[1].start_pc, "functions are contiguous");
        }
        for fp in &plan.funcs {
            assert_eq!(fp.start_pc, p.base() + fp.start as u64 * 4);
            assert_eq!(fp.end_pc, fp.start_pc + fp.len as u64 * 4);
            assert_eq!(plan.func_at_pc(fp.start_pc).unwrap().name, fp.name);
            assert_eq!(plan.func_at_pc(fp.end_pc - 4).unwrap().name, fp.name);
        }
        assert_eq!(plan.funcs.last().unwrap().end_pc, end);
        // The startup shim precedes every function and has no symbol.
        assert!(plan.func_at_pc(p.base()).is_none());
        let syms = plan.symbols();
        assert_eq!(syms.len(), 2);
        assert!(syms.iter().any(|(n, _, _)| n == "main"));
    }
}
