//! Static bounds-proof pass: value-range analysis that deletes whole
//! checks.
//!
//! [`rce`](crate::rce) only removes a check dominated by an *identical*
//! earlier check; this pass goes further and removes checks whose
//! access it can **prove in-bounds of its provenance object** — alloca
//! sizes, `malloc` with a constant size, globals — including accesses
//! indexed by loop-bounded induction variables. The analysis is a
//! forward interval dataflow over the existing [`dataflow`](crate::dataflow)
//! framework:
//!
//! * the flow fact maps **local slots** (the loop-counter home of the
//!   builder idiom) to intervals, plus a may-killed set of heap objects
//!   (freed / possibly freed by a call),
//! * joins are interval hulls with [`ForwardAnalysis::widen`] snapping
//!   strictly-growing bounds to ±∞ so loops terminate,
//! * branch conditions (`i < n` with constant `n`) refine the interval
//!   along each CFG edge via [`ForwardAnalysis::transfer_edge`] — this
//!   is what recovers the loop trip count *after* widening destroyed
//!   the upper bound at the header,
//! * SSA value chains (`gep`, shifts, adds over the counter) are
//!   evaluated on demand against the per-site replayed fact.
//!
//! Every proven site yields a machine-readable **proof witness**
//! ([`Witness`]): the site, the provenance object and the derived byte
//! interval, with the invariant `0 <= lo <= hi <= size`. The witness is
//! (a) re-checked arithmetically by [`verify::verify_with`](crate::verify::verify_with)
//! when the instrumenter skipped the site, and (b) discharged at the
//! machine level by the [`binval`](crate::binval) witness obligations, so an
//! image that dropped a check without a valid witness fails translation
//! validation.
//!
//! ## Soundness argument (summary; see DESIGN.md §4h)
//!
//! A witness is only emitted when all of the following hold:
//!
//! 1. **Provenance**: the address chains to a creation site with a
//!    statically known size through value-preserving pointer arithmetic
//!    only, and the creation site dominates the access.
//! 2. **Spatial**: the access interval, evaluated over the fixpoint
//!    fact (an over-approximation of every run-time state reaching the
//!    site), lies inside `[0, size)` of that object.
//! 3. **Temporal**: the object is not may-killed at the site. Heap
//!    objects die at `free` and at any call whose callee could free an
//!    escaped pointer; allocas live until function return (the frame
//!    lock is released only in the epilogue) unless their address
//!    escapes and a call or an unknown `free` intervenes; globals are
//!    never killed (their lock word is 0, the always-live encoding).
//!
//! Under the hardware schemes, spatial safety additionally rides the
//! bounded machine accesses, which this pass never touches — only the
//! temporal check (`tchk` or the inline software pattern) is skipped.
//! Under SBCETS both helper calls are skipped, but only for non-heap
//! provenance: a heap pointer may be NULL (failed `malloc`), and the
//! skipped software spatial check is exactly what catches that.

use crate::dataflow::{solve_forward, Cfg, DefMap, Dominators, ForwardAnalysis};
use crate::ir::{BinOp, Function, Inst, Module, Terminator, VarId};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Recursion budget for on-demand SSA chain evaluation.
const EVAL_DEPTH: u32 = 48;

// ---------------------------------------------------------------------------
// Intervals
// ---------------------------------------------------------------------------

/// A (possibly half-)bounded signed interval; `None` means ±∞ on that
/// side. Both bounds are inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The unbounded interval (no information).
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// The single-point interval `[k, k]`.
    pub const fn point(k: i64) -> Interval {
        Interval {
            lo: Some(k),
            hi: Some(k),
        }
    }

    /// `[lo, hi]` with both bounds finite.
    pub const fn range(lo: i64, hi: i64) -> Interval {
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    fn add_bound(a: Option<i64>, b: Option<i64>) -> Option<i64> {
        a?.checked_add(b?)
    }

    /// Interval addition (overflow widens to ∞).
    pub fn plus(self, o: Interval) -> Interval {
        Interval {
            lo: Self::add_bound(self.lo, o.lo),
            hi: Self::add_bound(self.hi, o.hi),
        }
    }

    /// Adds a constant to both bounds.
    pub fn add_const(self, k: i64) -> Interval {
        self.plus(Interval::point(k))
    }

    /// Interval negation.
    pub fn negated(self) -> Interval {
        Interval {
            lo: self.hi.and_then(|v| v.checked_neg()),
            hi: self.lo.and_then(|v| v.checked_neg()),
        }
    }

    /// Interval subtraction.
    pub fn minus(self, o: Interval) -> Interval {
        self.plus(o.negated())
    }

    /// Multiplication by a constant (overflow widens to ∞).
    pub fn mul_const(self, k: i64) -> Interval {
        if k == 0 {
            return Interval::point(0);
        }
        let lo = self.lo.and_then(|v| v.checked_mul(k));
        let hi = self.hi.and_then(|v| v.checked_mul(k));
        if k > 0 {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Left shift by a constant amount (`x << s` = `x * 2^s`).
    pub fn shl_const(self, s: i64) -> Interval {
        if !(0..63).contains(&s) {
            return Interval::TOP;
        }
        self.mul_const(1i64 << s)
    }

    /// Hull (join): smallest interval containing both.
    pub fn join(self, o: Interval) -> Interval {
        let lo = match (self.lo, o.lo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        };
        let hi = match (self.hi, o.hi) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        Interval { lo, hi }
    }

    /// Intersection (meet); may produce an empty interval (`lo > hi`)
    /// on infeasible paths, which is harmless: facts on such paths are
    /// vacuous.
    pub fn intersect(self, o: Interval) -> Interval {
        let lo = match (self.lo, o.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, o.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Interval { lo, hi }
    }

    /// Classic widening against the previous iterate `old`: any bound
    /// that grew strictly beyond `old`'s is snapped to ∞, any bound
    /// that did not grow keeps `old`'s value. The result is an upper
    /// bound of both arguments and each bound can change at most once
    /// more (finite → ∞), so repeated application stabilizes.
    pub fn widen_from(self, old: Interval) -> Interval {
        let lo = match (old.lo, self.lo) {
            (Some(o), Some(n)) if n < o => None,
            (Some(o), Some(_)) => Some(o),
            _ => None,
        };
        let hi = match (old.hi, self.hi) {
            (Some(o), Some(n)) if n > o => None,
            (Some(o), Some(_)) => Some(o),
            _ => None,
        };
        Interval { lo, hi }
    }

    /// Whether this interval contains `o` (is at least as wide).
    pub fn contains(self, o: Interval) -> bool {
        let lo_ok = match (self.lo, o.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let hi_ok = match (self.hi, o.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a >= b,
        };
        lo_ok && hi_ok
    }
}

// ---------------------------------------------------------------------------
// Witnesses
// ---------------------------------------------------------------------------

/// The provenance-object class of a witness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    /// `StackAlloc` — frame-resident, lives until function return.
    Alloca,
    /// `Malloc` with a statically constant size.
    HeapConst,
    /// A module global (lock word 0: never temporally killed).
    Global,
}

/// A machine-readable elimination proof: "the access at (`func`,
/// `block`, `inst`) touches bytes `[lo, hi)` of an object of `size`
/// bytes, and the object is live there". Emitted once per proven
/// dereference site, consumed by the instrumenter (which skips the
/// check), by [`verify::verify_with`](crate::verify::verify_with) (which
/// re-checks the arithmetic before accepting the skip) and by the
/// `binval` witness obligations (which discharge it against the lowered
/// image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Function containing the access.
    pub func: String,
    /// Source block index (pre-instrumentation coordinates).
    pub block: usize,
    /// Source instruction index within the block.
    pub inst: usize,
    /// Provenance-object class.
    pub kind: ObjKind,
    /// Object size in bytes.
    pub size: u64,
    /// First byte touched, relative to the object base (inclusive).
    pub lo: i64,
    /// One past the last byte touched (exclusive); `lo <= hi <= size`.
    pub hi: i64,
}

impl Witness {
    /// Whether the provenance object is heap-allocated (may be NULL on
    /// allocation failure — relevant for software spatial checks).
    pub fn heap(&self) -> bool {
        self.kind == ObjKind::HeapConst
    }

    /// The arithmetic validity re-check: the claimed byte range must
    /// lie inside the object. This is what `verify` and `binval`
    /// re-derive instead of trusting the analysis.
    pub fn arithmetic_ok(&self) -> bool {
        0 <= self.lo
            && self.lo <= self.hi
            && (self.hi as u64) <= self.size
            && self.size <= i64::MAX as u64
    }
}

/// Counters for the A10 table and `Compiled`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundsStats {
    /// Functions analyzed.
    pub funcs: usize,
    /// Functions skipped (not single-assignment).
    pub skipped_funcs: usize,
    /// Dereference sites seen.
    pub derefs: usize,
    /// Sites proven in-bounds and live (one witness each).
    pub proven: usize,
}

/// The module-level result of [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct BoundsOutcome {
    /// One witness per proven site.
    pub witnesses: Vec<Witness>,
    /// Per-function map from (block, inst) to witness index.
    pub proven: HashMap<String, BTreeMap<(usize, usize), usize>>,
    /// Counters.
    pub stats: BoundsStats,
}

impl BoundsOutcome {
    /// The proven-site map for `func`, if any site was proven there.
    pub fn proven_for(&self, func: &str) -> Option<&BTreeMap<(usize, usize), usize>> {
        self.proven.get(func)
    }
}

// ---------------------------------------------------------------------------
// Provenance objects
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ObjInfo {
    kind: ObjKind,
    size: u64,
    /// Creation site (for the dominance requirement).
    block: usize,
    inst: usize,
    /// Whether a pointer into the object leaves the function's SSA
    /// graph (call argument, stored to memory or a local). Escaped
    /// objects are killable by calls and unknown frees.
    escapes: bool,
}

struct ObjTable {
    /// Creation-site destination variable → object id.
    by_var: HashMap<VarId, usize>,
    objs: Vec<ObjInfo>,
    /// Any pointer-derived variable → the object it points into
    /// (over-approximated; used for escape and free attribution).
    derived: HashMap<VarId, usize>,
}

fn build_objs(module: &Module, f: &Function, defs: &DefMap) -> ObjTable {
    let mut by_var = HashMap::new();
    let mut objs = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            let rec = match inst {
                Inst::StackAlloc { dst, size } => Some((*dst, ObjKind::Alloca, *size)),
                Inst::Malloc { dst, size } => defs
                    .const_val(*size)
                    .filter(|&k| k >= 0)
                    .map(|k| (*dst, ObjKind::HeapConst, k as u64)),
                Inst::AddrOfGlobal { dst, global } => module
                    .globals
                    .get(global.0 as usize)
                    .map(|g| (*dst, ObjKind::Global, g.size)),
                _ => None,
            };
            if let Some((dst, kind, size)) = rec {
                by_var.insert(dst, objs.len());
                objs.push(ObjInfo {
                    kind,
                    size,
                    block: bi,
                    inst: ii,
                    escapes: false,
                });
            }
        }
    }

    // Derived-pointer closure (over-approximating: any arithmetic that
    // could carry the pointer propagates membership).
    let mut derived: HashMap<VarId, usize> = by_var.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for b in &f.blocks {
            for inst in &b.insts {
                let (dst, base) = match inst {
                    Inst::Gep { dst, base, .. }
                    | Inst::GepImm { dst, base, .. }
                    | Inst::BinImm { dst, lhs: base, .. } => (*dst, *base),
                    Inst::Bin { dst, lhs, rhs, .. } => {
                        if let Some(&o) = derived.get(lhs).or_else(|| derived.get(rhs)) {
                            if derived.insert(*dst, o).is_none() {
                                changed = true;
                            }
                        }
                        continue;
                    }
                    _ => continue,
                };
                if let Some(&o) = derived.get(&base) {
                    if derived.insert(dst, o).is_none() {
                        changed = true;
                    }
                }
            }
        }
    }

    // Escape marking.
    for b in &f.blocks {
        for inst in &b.insts {
            let escaping: Vec<VarId> = match inst {
                Inst::Call { args, .. } => args.clone(),
                Inst::StorePtr { src, .. }
                | Inst::Store { src, .. }
                | Inst::LocalSet { src, .. } => vec![*src],
                _ => vec![],
            };
            for v in escaping {
                if let Some(&o) = derived.get(&v) {
                    objs[o].escapes = true;
                }
            }
        }
    }

    ObjTable {
        by_var,
        objs,
        derived,
    }
}

// ---------------------------------------------------------------------------
// The dataflow analysis
// ---------------------------------------------------------------------------

/// Flow fact: intervals for local slots (missing key = ⊤) plus the
/// may-killed object set.
#[derive(Debug, Clone, PartialEq, Default)]
struct Fact {
    locals: BTreeMap<u32, Interval>,
    killed: BTreeSet<usize>,
}

struct Ranges<'a> {
    defs: &'a DefMap,
    objs: &'a ObjTable,
    /// `LocalGet` destinations whose local is not re-`LocalSet` later
    /// in the same block — the value the block's terminator still sees.
    stable_gets: HashMap<VarId, (usize, u32)>,
    /// Hull over all solver iterates of each `LocalGet` result — a
    /// sound over-approximation of the value at the def point, used to
    /// evaluate cross-block SSA uses.
    var_range: RefCell<HashMap<VarId, Interval>>,
}

impl<'a> Ranges<'a> {
    fn new(f: &'a Function, defs: &'a DefMap, objs: &'a ObjTable) -> Self {
        let mut stable_gets = HashMap::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                if let Inst::LocalGet { dst, index } = inst {
                    let reset_later = b.insts[ii + 1..]
                        .iter()
                        .any(|i| matches!(i, Inst::LocalSet { index: l, .. } if l == index));
                    if !reset_later {
                        stable_gets.insert(*dst, (bi, index.0));
                    }
                }
            }
        }
        Ranges {
            defs,
            objs,
            stable_gets,
            var_range: RefCell::new(HashMap::new()),
        }
    }

    /// Evaluates the value range of `v` by walking its SSA definition
    /// chain. `replay` (per-site precise values for this block's
    /// `LocalGet`s) takes priority over the accumulated `var_range`.
    fn eval(&self, v: VarId, replay: Option<&HashMap<VarId, Interval>>, depth: u32) -> Interval {
        if depth >= EVAL_DEPTH {
            return Interval::TOP;
        }
        let c = self.defs.canon(v);
        match self.defs.def(c) {
            Some(Inst::Const { value, .. }) => Interval::point(*value),
            Some(Inst::LocalGet { dst, .. }) => replay
                .and_then(|m| m.get(dst).copied())
                .or_else(|| self.var_range.borrow().get(dst).copied())
                .unwrap_or(Interval::TOP),
            Some(Inst::Bin { op, lhs, rhs, .. }) => {
                let l = || self.eval(*lhs, replay, depth + 1);
                let r = || self.eval(*rhs, replay, depth + 1);
                match op {
                    BinOp::Add => l().plus(r()),
                    BinOp::Sub => l().minus(r()),
                    BinOp::Mul => {
                        if let Some(k) = self.defs.const_val(*rhs) {
                            l().mul_const(k)
                        } else if let Some(k) = self.defs.const_val(*lhs) {
                            r().mul_const(k)
                        } else {
                            Interval::TOP
                        }
                    }
                    BinOp::Sll => {
                        if let Some(k) = self.defs.const_val(*rhs) {
                            l().shl_const(k)
                        } else {
                            Interval::TOP
                        }
                    }
                    BinOp::And => match self.defs.const_val(*rhs) {
                        Some(k) if k >= 0 => Interval::range(0, k),
                        _ => Interval::TOP,
                    },
                    BinOp::Slt | BinOp::Sltu | BinOp::Eq | BinOp::Ne => Interval::range(0, 1),
                    _ => Interval::TOP,
                }
            }
            Some(Inst::BinImm { op, lhs, imm, .. }) => {
                let l = || self.eval(*lhs, replay, depth + 1);
                match op {
                    BinOp::Add => l().add_const(*imm),
                    BinOp::Sub => l().plus(Interval::point(*imm).negated()),
                    BinOp::Mul => l().mul_const(*imm),
                    BinOp::Sll => l().shl_const(*imm),
                    BinOp::And if *imm >= 0 => Interval::range(0, *imm),
                    BinOp::Srl if (1..64).contains(imm) => Interval {
                        lo: Some(0),
                        hi: None,
                    },
                    BinOp::Slt | BinOp::Sltu | BinOp::Eq | BinOp::Ne => Interval::range(0, 1),
                    _ => Interval::TOP,
                }
            }
            _ => Interval::TOP,
        }
    }

    /// Walks the pointer chain of `v` to a provenance object, returning
    /// the object id and the byte-offset interval relative to its base.
    fn obj_of(
        &self,
        v: VarId,
        replay: Option<&HashMap<VarId, Interval>>,
        depth: u32,
    ) -> Option<(usize, Interval)> {
        if depth >= EVAL_DEPTH {
            return None;
        }
        let c = self.defs.canon(v);
        if let Some(&o) = self.objs.by_var.get(&c) {
            return Some((o, Interval::point(0)));
        }
        match self.defs.def(c) {
            Some(Inst::Gep { base, offset, .. }) => {
                let (o, iv) = self.obj_of(*base, replay, depth + 1)?;
                Some((o, iv.plus(self.eval(*offset, replay, 0))))
            }
            Some(Inst::GepImm { base, imm, .. }) => {
                let (o, iv) = self.obj_of(*base, replay, depth + 1)?;
                Some((o, iv.add_const(*imm)))
            }
            Some(Inst::BinImm {
                op: BinOp::Add,
                lhs,
                imm,
                ..
            }) => {
                let (o, iv) = self.obj_of(*lhs, replay, depth + 1)?;
                Some((o, iv.add_const(*imm)))
            }
            _ => None,
        }
    }

    /// One instruction's effect on the fact. In solver mode (`replay`
    /// is `None`) `LocalGet` results accumulate into `var_range`; in
    /// replay mode they are recorded precisely for the current path.
    fn step(&self, inst: &Inst, fact: &mut Fact, replay: Option<&mut HashMap<VarId, Interval>>) {
        match inst {
            Inst::LocalGet { dst, index } => {
                let iv = fact.locals.get(&index.0).copied().unwrap_or(Interval::TOP);
                match replay {
                    Some(map) => {
                        map.insert(*dst, iv);
                    }
                    None => {
                        let mut vr = self.var_range.borrow_mut();
                        vr.entry(*dst)
                            .and_modify(|cur| *cur = cur.join(iv))
                            .or_insert(iv);
                    }
                }
            }
            Inst::LocalSet { src, index } => {
                let iv = self.eval(*src, replay.as_deref(), 0);
                fact.locals.insert(index.0, iv);
            }
            Inst::Malloc { dst, .. } | Inst::StackAlloc { dst, .. } => {
                // Re-executing the creation site yields a fresh, live
                // object instance.
                if let Some(&o) = self.objs.by_var.get(dst) {
                    fact.killed.remove(&o);
                }
            }
            Inst::Free { ptr } => {
                if let Some(&o) = self.objs.derived.get(&self.defs.canon(*ptr)) {
                    fact.killed.insert(o);
                } else {
                    // Unknown pointer: could free anything whose
                    // address it may alias — conservatively everything
                    // but globals (a global's lock word is 0 and never
                    // fails a temporal check).
                    for (o, info) in self.objs.objs.iter().enumerate() {
                        if info.kind != ObjKind::Global {
                            fact.killed.insert(o);
                        }
                    }
                }
            }
            Inst::Call { .. } => {
                // The callee may free any pointer that escaped.
                for (o, info) in self.objs.objs.iter().enumerate() {
                    if info.escapes && info.kind != ObjKind::Global {
                        fact.killed.insert(o);
                    }
                }
            }
            _ => {}
        }
    }

    /// Branch-condition constraints for one edge: `(local, interval)`
    /// pairs that hold when the edge is taken. Only conditions over a
    /// *stable* `LocalGet` of the branching block translate to local
    /// constraints (the local provably still holds the tested value at
    /// the block's end).
    fn edge_constraints(&self, from: usize, taken: bool, cond: VarId) -> Vec<(u32, Interval)> {
        let mut out = Vec::new();
        let mut push = |v: VarId, iv: Interval| {
            if let Some(&(b, local)) = self.stable_gets.get(&self.defs.canon(v)) {
                if b == from {
                    out.push((local, iv));
                }
            }
        };
        let below = |k: i64| Interval {
            lo: None,
            hi: k.checked_sub(1),
        };
        let at_least = |k: i64| Interval {
            lo: Some(k),
            hi: None,
        };
        match self.defs.def(self.defs.canon(cond)) {
            Some(Inst::Bin { op, lhs, rhs, .. }) => {
                let kl = self.defs.const_val(*lhs);
                let kr = self.defs.const_val(*rhs);
                match (op, kl, kr) {
                    (BinOp::Slt, _, Some(k)) => {
                        push(*lhs, if taken { below(k) } else { at_least(k) })
                    }
                    (BinOp::Slt, Some(k), _) => {
                        if taken {
                            if let Some(k1) = k.checked_add(1) {
                                push(*rhs, at_least(k1));
                            }
                        } else {
                            push(
                                *rhs,
                                Interval {
                                    lo: None,
                                    hi: Some(k),
                                },
                            );
                        }
                    }
                    (BinOp::Sltu, _, Some(k)) if k > 0 && taken => {
                        // x <u k with k > 0 pins x into [0, k-1] even in
                        // signed terms.
                        push(*lhs, Interval::range(0, k - 1));
                    }
                    (BinOp::Eq, _, Some(k)) if taken => push(*lhs, Interval::point(k)),
                    (BinOp::Eq, Some(k), _) if taken => push(*rhs, Interval::point(k)),
                    (BinOp::Ne, _, Some(k)) if !taken => push(*lhs, Interval::point(k)),
                    (BinOp::Ne, Some(k), _) if !taken => push(*rhs, Interval::point(k)),
                    _ => {}
                }
            }
            Some(Inst::BinImm { op, lhs, imm, .. }) => match op {
                BinOp::Slt => push(*lhs, if taken { below(*imm) } else { at_least(*imm) }),
                BinOp::Sltu if *imm > 0 && taken => push(*lhs, Interval::range(0, imm - 1)),
                BinOp::Eq if taken => push(*lhs, Interval::point(*imm)),
                BinOp::Ne if !taken => push(*lhs, Interval::point(*imm)),
                _ => {}
            },
            _ => {}
        }
        out
    }
}

impl ForwardAnalysis for Ranges<'_> {
    type Fact = Fact;

    fn entry_fact(&self) -> Fact {
        Fact::default()
    }

    fn meet(&self, into: &mut Fact, other: &Fact) {
        // Locals: keep keys known on both paths, hulled.
        into.locals.retain(|k, _| other.locals.contains_key(k));
        for (k, iv) in into.locals.iter_mut() {
            *iv = iv.join(other.locals[k]);
        }
        // Killed: may-union.
        into.killed.extend(other.killed.iter().copied());
    }

    fn transfer(&self, inst: &Inst, fact: &mut Fact) {
        self.step(inst, fact, None);
    }

    fn transfer_edge(&self, from: usize, to: usize, term: &Terminator, fact: &mut Fact) {
        let Terminator::Br { cond, then_, else_ } = term else {
            return;
        };
        if then_ == else_ {
            return;
        }
        let taken = to == then_.0 as usize;
        for (local, iv) in self.edge_constraints(from, taken, *cond) {
            let cur = fact.locals.get(&local).copied().unwrap_or(Interval::TOP);
            fact.locals.insert(local, cur.intersect(iv));
        }
    }

    fn widen(&self, old: &Fact, new: &mut Fact) {
        new.locals.retain(|k, _| old.locals.contains_key(k));
        for (k, iv) in new.locals.iter_mut() {
            *iv = iv.widen_from(old.locals[k]);
        }
        new.killed.extend(old.killed.iter().copied());
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// `(addr, constant offset, access bytes)` of a dereference.
fn deref_of(inst: &Inst) -> Option<(VarId, i64, u64)> {
    match inst {
        Inst::Load {
            addr,
            offset,
            width,
            ..
        }
        | Inst::Store {
            addr,
            offset,
            width,
            ..
        } => Some((*addr, *offset, width.bytes())),
        Inst::LoadPtr { addr, offset, .. } | Inst::StorePtr { addr, offset, .. } => {
            Some((*addr, *offset, 8))
        }
        _ => None,
    }
}

/// Runs the value-range analysis over every function of `module` and
/// returns the proof witnesses for every dereference it can prove
/// in-bounds and live. The module is the *pre-instrumentation* IR (the
/// same input [`instrument`](crate::instrument) consumes).
pub fn analyze(module: &Module) -> BoundsOutcome {
    let mut out = BoundsOutcome::default();
    for f in &module.funcs {
        analyze_func(module, f, &mut out);
    }
    out
}

fn analyze_func(module: &Module, f: &Function, out: &mut BoundsOutcome) {
    out.stats.funcs += 1;
    let Some(defs) = DefMap::build(f) else {
        out.stats.skipped_funcs += 1;
        return;
    };
    let cfg = Cfg::new(f);
    let doms = Dominators::compute(&cfg);
    let objs = build_objs(module, f, &defs);
    let ranges = Ranges::new(f, &defs, &objs);
    let facts = solve_forward(f, &cfg, &ranges);

    let mut proven: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (b, entry) in facts.iter().enumerate() {
        let Some(entry) = entry else { continue };
        let mut cur = entry.clone();
        let mut replay: HashMap<VarId, Interval> = HashMap::new();
        for (ii, inst) in f.blocks[b].insts.iter().enumerate() {
            if let Some((addr, off, n)) = deref_of(inst) {
                out.stats.derefs += 1;
                if let Some(w) = try_prove(f, &ranges, &doms, &cur, &replay, b, ii, addr, off, n) {
                    proven.insert((b, ii), out.witnesses.len());
                    out.witnesses.push(w);
                    out.stats.proven += 1;
                }
            }
            ranges.step(inst, &mut cur, Some(&mut replay));
        }
    }
    if !proven.is_empty() {
        out.proven.insert(f.name.clone(), proven);
    }
}

#[allow(clippy::too_many_arguments)]
fn try_prove(
    f: &Function,
    ranges: &Ranges<'_>,
    doms: &Dominators,
    fact: &Fact,
    replay: &HashMap<VarId, Interval>,
    block: usize,
    inst: usize,
    addr: VarId,
    off: i64,
    n: u64,
) -> Option<Witness> {
    let (o, iv) = ranges.obj_of(addr, Some(replay), 0)?;
    let info = &ranges.objs.objs[o];
    // The creation site must execute before the access on every path.
    if info.block == block {
        if info.inst >= inst {
            return None;
        }
    } else if !doms.dominates(info.block, block) {
        return None;
    }
    // Temporal: the object must be provably live here.
    if fact.killed.contains(&o) {
        return None;
    }
    // Spatial: [lo, hi) ⊆ [0, size).
    let lo = iv.lo?.checked_add(off)?;
    let hi = iv.hi?.checked_add(off)?.checked_add(n as i64)?;
    let w = Witness {
        func: f.name.clone(),
        block,
        inst,
        kind: info.kind,
        size: info.size,
        lo,
        hi,
    };
    if !w.arithmetic_ok() {
        return None;
    }
    Some(w)
}

// ---------------------------------------------------------------------------
// Dead-alloca load elimination facts (for `opt`)
// ---------------------------------------------------------------------------

/// Sites of `Load`s that [`opt`](crate::opt) may delete outright:
/// loads from a provably-dead alloca (never written through, never
/// escaping) whose result is unused and whose access this pass proved
/// in-bounds and live — removing them cannot change any run-time
/// behavior, including trap behavior under an instrumented build.
/// Returned as `(function index, block, inst)` triples.
pub fn dead_alloca_loads(module: &Module) -> Vec<(usize, usize, usize)> {
    let outcome = analyze(module);
    let mut dead = Vec::new();
    for (fi, f) in module.funcs.iter().enumerate() {
        let Some(proven) = outcome.proven_for(&f.name) else {
            continue;
        };
        let Some(defs) = DefMap::build(f) else {
            continue;
        };
        let objs = build_objs(module, f, &defs);

        // Objects written through any derived pointer.
        let mut written: BTreeSet<usize> = BTreeSet::new();
        for b in &f.blocks {
            for inst in &b.insts {
                if let Inst::Store { addr, .. } | Inst::StorePtr { addr, .. } = inst {
                    if let Some(&o) = objs.derived.get(&defs.canon(*addr)) {
                        written.insert(o);
                    }
                }
            }
        }

        // Used variables (instruction operands + terminator reads).
        let mut used: BTreeSet<VarId> = BTreeSet::new();
        for b in &f.blocks {
            for inst in &b.insts {
                used.extend(inst.uses());
            }
            match &b.term {
                Terminator::Ret { value: Some(v) } => {
                    used.insert(*v);
                }
                Terminator::Br { cond, .. } => {
                    used.insert(*cond);
                }
                _ => {}
            }
        }

        for (&(bi, ii), &wi) in proven {
            if outcome.witnesses[wi].kind != ObjKind::Alloca {
                continue;
            }
            let Inst::Load { dst, addr, .. } = &f.blocks[bi].insts[ii] else {
                continue;
            };
            if used.contains(dst) {
                continue;
            }
            let Some(&o) = objs.derived.get(&defs.canon(*addr)) else {
                continue;
            };
            if objs.objs[o].escapes || written.contains(&o) {
                continue;
            }
            dead.push((fi, bi, ii));
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Width;
    use crate::ModuleBuilder;

    /// `main` fills an array of `slots` u64 slots in a `0..n` loop at
    /// `arr[i]`, then returns.
    fn loop_fill(slots: u64, n: i64, heap: bool) -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let arr = if heap {
            f.malloc_bytes(slots * 8)
        } else {
            f.stack_alloc(slots * 8)
        };
        let i = f.local();
        let z = f.konst(0);
        f.local_set(i, z);
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(head);
        f.switch_to(head);
        let iv = f.local_get(i);
        let e = f.konst(n);
        let c = f.bin(BinOp::Slt, iv, e);
        f.br(c, body, done);
        f.switch_to(body);
        let iv2 = f.local_get(i);
        let off = f.bin_imm(BinOp::Sll, iv2, 3);
        let slot = f.gep(arr, off);
        let v = f.konst(7);
        f.store(v, slot, 0, Width::U64);
        let iv3 = f.local_get(i);
        let nx = f.bin_imm(BinOp::Add, iv3, 1);
        f.local_set(i, nx);
        f.jmp(head);
        f.switch_to(done);
        if heap {
            f.free(arr);
        }
        f.ret(Some(z));
        f.finish();
        mb.finish()
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::range(0, 4);
        assert_eq!(a.add_const(3), Interval::range(3, 7));
        assert_eq!(a.mul_const(-2), Interval::range(-8, 0));
        assert_eq!(a.shl_const(3), Interval::range(0, 32));
        assert_eq!(a.join(Interval::range(-1, 2)), Interval::range(-1, 4));
        assert_eq!(a.intersect(Interval::range(2, 9)), Interval::range(2, 4));
        assert_eq!(
            Interval::TOP.intersect(Interval::range(0, 5)),
            Interval::range(0, 5)
        );
        // Overflow widens, never wraps.
        assert_eq!(Interval::point(i64::MAX).add_const(1).hi, None);
    }

    #[test]
    fn widening_terminates_and_is_an_upper_bound() {
        let old = Interval::range(0, 3);
        let grown = Interval::range(0, 4);
        let w = grown.widen_from(old);
        assert_eq!(
            w,
            Interval {
                lo: Some(0),
                hi: None
            }
        );
        assert!(w.contains(old) && w.contains(grown));
        // Fixed point: widening against itself changes nothing.
        assert_eq!(w.widen_from(w), w);
        // A shrink keeps the old bound (monotone ascending chain).
        assert_eq!(Interval::range(1, 2).widen_from(old), old);
        // Any chain stabilizes after at most two widenings per bound.
        let mut cur = Interval::point(0);
        for k in 1..100 {
            let next = cur.join(Interval::point(k)).widen_from(cur);
            if next == cur {
                break;
            }
            cur = next;
            assert!(k <= 2, "widening failed to stabilize");
        }
    }

    #[test]
    fn loop_bounded_store_is_proven_in_bounds() {
        for heap in [false, true] {
            let m = loop_fill(8, 8, heap);
            let out = analyze(&m);
            assert_eq!(out.stats.proven, 1, "heap={heap}: {:?}", out.stats);
            let w = &out.witnesses[0];
            assert_eq!((w.lo, w.hi, w.size), (0, 64, 64));
            assert_eq!(w.heap(), heap);
            assert!(w.arithmetic_ok());
        }
    }

    #[test]
    fn overrunning_loop_is_not_proven() {
        // 8 slots, 9 iterations: hi = 72 > 64.
        let out = analyze(&loop_fill(8, 9, false));
        assert_eq!(out.stats.proven, 0);
    }

    #[test]
    fn constant_offsets_are_proven() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = mb_alloc(&mut f, 32);
        let v = f.konst(1);
        f.store(v, p, 24, Width::U64); // in bounds
        let q = f.gep_imm(p, 32);
        f.store(v, q, 0, Width::U64); // off the end
        f.ret(None);
        f.finish();
        let out = analyze(&mb.finish());
        assert_eq!(out.stats.derefs, 2);
        assert_eq!(out.stats.proven, 1);
        assert_eq!(out.witnesses[0].hi, 32);
    }

    fn mb_alloc(f: &mut crate::FuncBuilder<'_>, size: u64) -> VarId {
        f.stack_alloc(size)
    }

    #[test]
    fn free_kills_heap_proofs() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        f.free(p);
        let r = f.load(p, 0, Width::U64); // use-after-free: must stay checked
        f.ret(Some(r));
        f.finish();
        let out = analyze(&mb.finish());
        assert_eq!(out.stats.proven, 0);
    }

    #[test]
    fn calls_kill_escaped_objects_only() {
        let mut mb = ModuleBuilder::new();
        let mut h = mb.func("helper");
        let _p = h.param(true);
        h.ret(None);
        h.finish();
        let mut f = mb.func("main");
        let esc = f.malloc_bytes(16);
        let private = f.malloc_bytes(16);
        f.call_void("helper", &[esc]);
        let a = f.load(esc, 0, Width::U64); // escaped: callee may free
        let b = f.load(private, 0, Width::U64); // private: provably live
        let s = f.bin(BinOp::Add, a, b);
        f.ret(Some(s));
        f.finish();
        let out = analyze(&mb.finish());
        assert_eq!(out.stats.proven, 1);
        assert_eq!(out.witnesses[0].kind, ObjKind::HeapConst);
    }

    #[test]
    fn globals_are_proven_and_never_killed() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("tab", 40);
        let mut h = mb.func("helper");
        h.ret(None);
        h.finish();
        let mut f = mb.func("main");
        let p = f.addr_of_global(g);
        f.call_void("helper", &[]);
        let r = f.load(p, 32, Width::U64);
        f.ret(Some(r));
        f.finish();
        let out = analyze(&mb.finish());
        assert_eq!(out.stats.proven, 1);
        assert_eq!(out.witnesses[0].kind, ObjKind::Global);
    }

    #[test]
    fn unknown_provenance_is_never_proven() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.param(true);
        let r = f.load(p, 0, Width::U64);
        f.ret(Some(r));
        f.finish();
        let out = analyze(&mb.finish());
        assert_eq!(out.stats.proven, 0);
    }

    #[test]
    fn non_dominating_creation_is_rejected() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let c = f.param(false);
        let then_b = f.new_block();
        let join = f.new_block();
        f.br(c, then_b, join);
        f.switch_to(then_b);
        let _p = f.stack_alloc(16);
        f.jmp(join);
        f.switch_to(join);
        // No deref of p here (p would not be single-assignment-visible
        // across the merge in well-formed IR, but the analysis must not
        // prove anything rooted at a non-dominating creation anyway).
        f.ret(None);
        f.finish();
        let out = analyze(&mb.finish());
        assert_eq!(out.stats.proven, 0);
    }

    #[test]
    fn dead_alloca_loads_are_identified() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.stack_alloc(16);
        let _unused = f.load(p, 8, Width::U64); // dead: result unused, in bounds
        let q = f.stack_alloc(16);
        let used = f.load(q, 0, Width::U64); // live: feeds the return
        f.ret(Some(used));
        f.finish();
        let m = mb.finish();
        let dead = dead_alloca_loads(&m);
        assert_eq!(dead, vec![(0, 0, 1)]);
    }

    #[test]
    fn written_or_escaping_allocas_keep_their_loads() {
        let mut mb = ModuleBuilder::new();
        let mut h = mb.func("helper");
        let _p = h.param(true);
        h.ret(None);
        h.finish();
        let mut f = mb.func("main");
        let p = f.stack_alloc(16);
        let v = f.konst(3);
        f.store(v, p, 0, Width::U64); // written through
        let _a = f.load(p, 8, Width::U64);
        let q = f.stack_alloc(16);
        f.call_void("helper", &[q]); // escapes
        let _b = f.load(q, 0, Width::U64);
        f.ret(None);
        f.finish();
        let dead = dead_alloca_loads(&mb.finish());
        assert!(dead.is_empty(), "{dead:?}");
    }
}
