//! Pointer analysis: provenance inference and IR validation.
//!
//! This is the reproduction of the "pointer analysis from the compiler"
//! the paper leans on (§3, §3.4): before instrumentation we compute, for
//! every function, which virtual registers hold pointers (and therefore
//! need metadata), whether the function returns a pointer, and where the
//! dereference sites are. The analysis also *validates* the IR — every
//! address operand must be provably a pointer — so instrumentation can
//! never miss a site.

use crate::ir::{Function, Inst, Module, Terminator, VarId};
use crate::CompileError;
use std::collections::{HashMap, HashSet};

/// Per-function analysis results.
#[derive(Debug, Clone, Default)]
pub struct FuncInfo {
    /// Variables holding pointers (provenance-carrying values).
    pub pointers: HashSet<VarId>,
    /// Whether the function returns a pointer.
    pub returns_ptr: bool,
    /// Number of dereference sites (`Load`/`Store`/`LoadPtr`/`StorePtr`).
    pub deref_sites: usize,
    /// Whether the function owns stack allocations (needs a frame lock
    /// for use-after-return protection).
    pub has_stack_alloc: bool,
}

/// Whole-module analysis results.
#[derive(Debug, Clone, Default)]
pub struct PointerInfo {
    funcs: HashMap<String, FuncInfo>,
}

impl PointerInfo {
    /// The analysis of one function, or `None` if `name` was not part
    /// of the analyzed module.
    pub fn func(&self, name: &str) -> Option<&FuncInfo> {
        self.funcs.get(name)
    }

    /// Iterates over `(name, info)` pairs in unspecified order.
    pub fn funcs(&self) -> impl Iterator<Item = (&str, &FuncInfo)> {
        self.funcs.iter().map(|(n, i)| (n.as_str(), i))
    }

    /// Whether `var` is a pointer in `func`.
    pub fn is_pointer(&self, func: &str, var: VarId) -> bool {
        self.funcs
            .get(func)
            .map(|f| f.pointers.contains(&var))
            .unwrap_or(false)
    }
}

/// Runs the analysis and validates the module.
///
/// # Errors
///
/// * [`CompileError::MissingMain`] — no `main`,
/// * [`CompileError::UnknownCallee`] — call to an undefined function,
/// * [`CompileError::TooManyArgs`] — more than 8 arguments,
/// * [`CompileError::BadBlockTarget`] — dangling control flow,
/// * [`CompileError::NotAPointer`] — an address operand without pointer
///   provenance.
pub fn analyze(module: &Module) -> Result<PointerInfo, CompileError> {
    if module.func("main").is_none() {
        return Err(CompileError::MissingMain);
    }

    // Interprocedural fixpoint for returns_ptr: a call result is a
    // pointer iff the callee returns one.
    let mut returns_ptr: HashMap<&str, bool> = module
        .funcs
        .iter()
        .map(|f| (f.name.as_str(), false))
        .collect();
    loop {
        let mut changed = false;
        for f in &module.funcs {
            let ptrs = local_pointers(f, &returns_ptr);
            let rp = f
                .blocks
                .iter()
                .any(|b| matches!(b.term, Terminator::Ret { value: Some(v) } if ptrs.contains(&v)));
            if rp && !returns_ptr[f.name.as_str()] {
                returns_ptr.insert(&f.name, true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut info = PointerInfo::default();
    for f in &module.funcs {
        let pointers = local_pointers(f, &returns_ptr);
        validate(f, module, &pointers)?;
        let deref_sites = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    Inst::Load { .. }
                        | Inst::Store { .. }
                        | Inst::LoadPtr { .. }
                        | Inst::StorePtr { .. }
                )
            })
            .count();
        let has_stack_alloc = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::StackAlloc { .. }));
        info.funcs.insert(
            f.name.clone(),
            FuncInfo {
                returns_ptr: returns_ptr[f.name.as_str()],
                pointers,
                deref_sites,
                has_stack_alloc,
            },
        );
    }
    Ok(info)
}

/// Intraprocedural pointer set given interprocedural return facts.
fn local_pointers(f: &Function, returns_ptr: &HashMap<&str, bool>) -> HashSet<VarId> {
    let mut ptrs: HashSet<VarId> = f
        .params
        .iter()
        .zip(&f.param_is_ptr)
        .filter(|(_, &is)| is)
        .map(|(&v, _)| v)
        .collect();
    // One pass suffices: defs dominate uses in the builder discipline,
    // but run to fixpoint anyway for hand-built IR.
    loop {
        let mut changed = false;
        for b in &f.blocks {
            for i in &b.insts {
                let is_ptr_def = match i {
                    Inst::AddrOfGlobal { .. }
                    | Inst::StackAlloc { .. }
                    | Inst::Malloc { .. }
                    | Inst::LoadPtr { .. } => true,
                    Inst::Gep { base, .. } | Inst::GepImm { base, .. } => ptrs.contains(base),
                    Inst::Call { func, .. } => {
                        returns_ptr.get(func.as_str()).copied().unwrap_or(false)
                    }
                    _ => false,
                };
                if is_ptr_def {
                    if let Some(d) = i.def() {
                        changed |= ptrs.insert(d);
                    }
                }
            }
        }
        if !changed {
            return ptrs;
        }
    }
}

fn validate(f: &Function, module: &Module, ptrs: &HashSet<VarId>) -> Result<(), CompileError> {
    let require_ptr = |v: VarId, at: &'static str| {
        if ptrs.contains(&v) {
            Ok(())
        } else {
            Err(CompileError::NotAPointer {
                func: f.name.clone(),
                var: v,
                at,
            })
        }
    };
    for b in &f.blocks {
        for i in &b.insts {
            match i {
                Inst::Load { addr, .. } => require_ptr(*addr, "load")?,
                Inst::Store { addr, .. } => require_ptr(*addr, "store")?,
                Inst::LoadPtr { addr, .. } => require_ptr(*addr, "loadptr")?,
                Inst::StorePtr { src, addr, .. } => {
                    require_ptr(*src, "storeptr src")?;
                    require_ptr(*addr, "storeptr addr")?;
                }
                Inst::Gep { base, .. } | Inst::GepImm { base, .. } => require_ptr(*base, "gep")?,
                Inst::Free { ptr } => require_ptr(*ptr, "free")?,
                Inst::Call { func, args, .. } => {
                    if module.func(func).is_none() {
                        return Err(CompileError::UnknownCallee {
                            caller: f.name.clone(),
                            callee: func.clone(),
                        });
                    }
                    if args.len() > 8 {
                        return Err(CompileError::TooManyArgs {
                            caller: f.name.clone(),
                            callee: func.clone(),
                            count: args.len(),
                        });
                    }
                }
                _ => {}
            }
        }
        let check_target = |t: crate::ir::BlockId| {
            if (t.0 as usize) < f.blocks.len() {
                Ok(())
            } else {
                Err(CompileError::BadBlockTarget {
                    func: f.name.clone(),
                    target: t.0,
                })
            }
        };
        match b.term {
            Terminator::Br { then_, else_, .. } => {
                check_target(then_)?;
                check_target(else_)?;
            }
            Terminator::Jmp(t) => check_target(t)?,
            Terminator::Ret { .. } => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::*;

    fn f(name: &str, insts: Vec<Inst>, term: Terminator) -> Function {
        let num_vars = 64;
        Function {
            name: name.into(),
            params: vec![],
            param_is_ptr: vec![],
            num_vars,
            num_locals: 0,
            blocks: vec![Block { insts, term }],
        }
    }

    #[test]
    fn missing_main_is_rejected() {
        let m = Module::default();
        assert!(matches!(analyze(&m), Err(CompileError::MissingMain)));
    }

    #[test]
    fn malloc_result_is_a_pointer_and_gep_preserves_it() {
        let m = Module {
            funcs: vec![f(
                "main",
                vec![
                    Inst::Const {
                        dst: VarId(0),
                        value: 64,
                    },
                    Inst::Malloc {
                        dst: VarId(1),
                        size: VarId(0),
                    },
                    Inst::GepImm {
                        dst: VarId(2),
                        base: VarId(1),
                        imm: 8,
                    },
                    Inst::Load {
                        dst: VarId(3),
                        addr: VarId(2),
                        offset: 0,
                        width: Width::U64,
                    },
                ],
                Terminator::Ret { value: None },
            )],
            globals: vec![],
        };
        let info = analyze(&m).unwrap();
        assert!(info.is_pointer("main", VarId(1)));
        assert!(info.is_pointer("main", VarId(2)));
        assert!(!info.is_pointer("main", VarId(0)));
        assert!(!info.is_pointer("main", VarId(3)));
        assert_eq!(info.func("main").unwrap().deref_sites, 1);
    }

    #[test]
    fn deref_through_non_pointer_is_rejected() {
        let m = Module {
            funcs: vec![f(
                "main",
                vec![
                    Inst::Const {
                        dst: VarId(0),
                        value: 0x1234,
                    },
                    Inst::Load {
                        dst: VarId(1),
                        addr: VarId(0),
                        offset: 0,
                        width: Width::U64,
                    },
                ],
                Terminator::Ret { value: None },
            )],
            globals: vec![],
        };
        assert!(matches!(analyze(&m), Err(CompileError::NotAPointer { .. })));
    }

    #[test]
    fn interprocedural_pointer_returns() {
        // helper() returns a malloc'd pointer; main derefs the call result.
        let helper = Function {
            name: "helper".into(),
            params: vec![],
            param_is_ptr: vec![],
            num_vars: 8,
            num_locals: 0,
            blocks: vec![Block {
                insts: vec![
                    Inst::Const {
                        dst: VarId(0),
                        value: 8,
                    },
                    Inst::Malloc {
                        dst: VarId(1),
                        size: VarId(0),
                    },
                ],
                term: Terminator::Ret {
                    value: Some(VarId(1)),
                },
            }],
        };
        let main = f(
            "main",
            vec![
                Inst::Call {
                    dst: Some(VarId(0)),
                    func: "helper".into(),
                    args: vec![],
                },
                Inst::Load {
                    dst: VarId(1),
                    addr: VarId(0),
                    offset: 0,
                    width: Width::U64,
                },
            ],
            Terminator::Ret { value: None },
        );
        let m = Module {
            funcs: vec![helper, main],
            globals: vec![],
        };
        let info = analyze(&m).unwrap();
        assert!(info.func("helper").unwrap().returns_ptr);
        assert!(info.is_pointer("main", VarId(0)));
    }

    #[test]
    fn unknown_callee_and_bad_target() {
        let m = Module {
            funcs: vec![f(
                "main",
                vec![Inst::Call {
                    dst: None,
                    func: "ghost".into(),
                    args: vec![],
                }],
                Terminator::Ret { value: None },
            )],
            globals: vec![],
        };
        assert!(matches!(
            analyze(&m),
            Err(CompileError::UnknownCallee { .. })
        ));

        let m = Module {
            funcs: vec![f("main", vec![], Terminator::Jmp(BlockId(9)))],
            globals: vec![],
        };
        assert!(matches!(
            analyze(&m),
            Err(CompileError::BadBlockTarget { .. })
        ));
    }

    #[test]
    fn stack_alloc_flags_frame_lock() {
        let m = Module {
            funcs: vec![f(
                "main",
                vec![Inst::StackAlloc {
                    dst: VarId(0),
                    size: 32,
                }],
                Terminator::Ret { value: None },
            )],
            globals: vec![],
        };
        assert!(analyze(&m).unwrap().func("main").unwrap().has_stack_alloc);
    }
}
