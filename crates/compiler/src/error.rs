//! Compilation errors.

use crate::ir::VarId;
use std::fmt;

/// Errors raised while analyzing or lowering a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The module has no `main` function.
    MissingMain,
    /// A call names a function the module does not define.
    UnknownCallee {
        /// The function containing the call.
        caller: String,
        /// The missing callee name.
        callee: String,
    },
    /// A pointer-typed operand is produced by a non-pointer definition
    /// (pointer-analysis consistency violation).
    NotAPointer {
        /// The function containing the use.
        func: String,
        /// The offending variable.
        var: VarId,
        /// Where it was used as a pointer.
        at: &'static str,
    },
    /// More than 8 call arguments.
    TooManyArgs {
        /// The function containing the call.
        caller: String,
        /// The callee.
        callee: String,
        /// Argument count.
        count: usize,
    },
    /// A branch or jump targets a block that does not exist.
    BadBlockTarget {
        /// The function.
        func: String,
        /// The missing block index.
        target: u32,
    },
    /// The metadata-completeness verifier found a dereference the
    /// active scheme's promised checks do not cover (see
    /// [`crate::verify`]).
    UncoveredDeref {
        /// The function containing the access.
        func: String,
        /// Block index of the access.
        block: usize,
        /// Instruction index within the block.
        inst: usize,
        /// The scheme whose contract was violated.
        scheme: &'static str,
    },
    /// A skipped check's bounds-proof witness failed re-validation (see
    /// [`crate::verify::verify_with`]) — either the claimed interval
    /// does not fit the object, the witness index is out of range, or
    /// the exempted site is not a dereference.
    InvalidWitness {
        /// The function containing the skipped check.
        func: String,
        /// Block index of the skip (instrumented coordinates).
        block: usize,
        /// Instruction index within the block.
        inst: usize,
        /// Why the witness was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MissingMain => {
                write!(f, "module does not define a main function")
            }
            CompileError::UnknownCallee { caller, callee } => {
                write!(f, "{caller} calls unknown function {callee}")
            }
            CompileError::NotAPointer { func, var, at } => {
                write!(
                    f,
                    "{func}: {var} used as a pointer at {at} but never defined as one"
                )
            }
            CompileError::TooManyArgs {
                caller,
                callee,
                count,
            } => write!(f, "{caller} passes {count} arguments to {callee} (max 8)"),
            CompileError::BadBlockTarget { func, target } => {
                write!(f, "{func}: control flow targets missing block b{target}")
            }
            CompileError::UncoveredDeref {
                func,
                block,
                inst,
                scheme,
            } => write!(
                f,
                "{func}: dereference at b{block}/{inst} is not covered by the {scheme} checks"
            ),
            CompileError::InvalidWitness {
                func,
                block,
                inst,
                reason,
            } => write!(
                f,
                "{func}: check skipped at b{block}/{inst} without a valid witness: {reason}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_function() {
        let e = CompileError::UnknownCallee {
            caller: "main".into(),
            callee: "ghost".into(),
        };
        assert!(e.to_string().contains("main") && e.to_string().contains("ghost"));
    }
}
