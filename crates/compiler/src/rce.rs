//! Redundant-check elimination (RCE) over instrumented IR.
//!
//! An *available-checks* forward must-dataflow: a check fact is
//! available at a program point iff **every** path from the function
//! entry performs an identical check after the last event that could
//! invalidate it. A check instruction whose fact is already available
//! when control reaches it can never fire — the earlier identical check
//! either passed (so this one passes too) or aborted (so this one never
//! runs) — and is deleted.
//!
//! Three check shapes are recognised, covering every [`crate::Scheme`]:
//!
//! * [`Inst::Tchk`] — the hardware temporal check, keyed by the checked
//!   pointer's SRF root (derived pointers inherit metadata verbatim),
//! * `__sbcets_spatial_check` / `__sbcets_temporal_check` helper calls
//!   (the SBCETS software scheme), keyed by their resolved argument
//!   values,
//! * the HWST128 inline software temporal pattern emitted by
//!   `instrument::sw_temporal_check` (lock-nonzero branch, load, key
//!   compare, abort), eliminated by short-circuiting the pattern
//!   header's branch to the continuation block.
//!
//! # Soundness
//!
//! Facts are killed by every event that could change a check's outcome:
//! redefinition of any mentioned variable, frees (`Free`/`FreeMeta`) and
//! frame unlocks for temporal facts, calls to unknown functions (which
//! may free or unlock) for temporal facts, and SRF rebinds
//! (`MetaLoad`/`BindSpatial`/`BindTemporal`) for `Tchk` facts rooted at
//! the rebound pointer. Spatial facts survive calls and frees because a
//! region's base/bound never change over its lifetime and the values
//! the fact mentions are immutable virtual registers.
//!
//! One analysis pass justifies all deletions simultaneously: for any
//! deleted check `d`, every entry path reaches a generating check after
//! its last kill, and the *first* such post-kill check on each path is
//! never deleted (its own fact cannot be available at its entry on that
//! path), so a kept check always covers `d`.
//!
//! The only assumption beyond the IR semantics is that user stores can
//! never write a lock word: lock words live in the runtime's lock
//! region, which no user allocation overlaps, and every user store is
//! itself bounds-checked under the schemes that carry temporal facts
//! (see DESIGN.md).
//!
//! Functions that are not single-assignment are skipped wholesale (see
//! [`DefMap::build`]); the pass is then the identity on them.

use crate::dataflow::{solve_forward, Cfg, DefMap, ForwardAnalysis};
use crate::instrument::{META_LOAD_FN, META_STORE_FN, SPATIAL_CHECK_FN, TEMPORAL_CHECK_FN};
use crate::ir::{BinOp, BlockId, Function, Inst, Module, Terminator, VarId, Width};
use std::collections::{BTreeSet, HashMap};

/// One available check, in canonical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckFact {
    /// A hardware `tchk` validated the SRF entry rooted at this pointer.
    Tchk(VarId),
    /// A `__sbcets_spatial_check(root + delta, base, bound, size)`
    /// passed.
    SbSpatial {
        /// Spatial anchor of the checked address.
        root: VarId,
        /// Constant byte offset from the anchor.
        delta: i64,
        /// Base companion (copy-resolved).
        base: VarId,
        /// Bound companion (copy-resolved).
        bound: VarId,
        /// Access size in bytes.
        size: i64,
    },
    /// A temporal check (helper call or inline HWST128 pattern)
    /// validated `*lock == key`.
    SbTemporal {
        /// Key companion (copy-resolved).
        key: VarId,
        /// Lock companion (copy-resolved).
        lock: VarId,
    },
}

impl CheckFact {
    fn mentions(&self, v: VarId) -> bool {
        match *self {
            CheckFact::Tchk(r) => r == v,
            CheckFact::SbSpatial {
                root, base, bound, ..
            } => root == v || base == v || bound == v,
            CheckFact::SbTemporal { key, lock } => key == v || lock == v,
        }
    }

    fn is_temporal(&self) -> bool {
        matches!(self, CheckFact::Tchk(_) | CheckFact::SbTemporal { .. })
    }
}

/// The must-available set at one program point.
pub type FactSet = BTreeSet<CheckFact>;

/// A recognised HWST128 inline temporal-check pattern (see
/// `instrument::sw_temporal_check`) headed at one block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SwTemporalPattern {
    pub(crate) key: VarId,
    pub(crate) lock: VarId,
    /// The continuation block both pattern exits fall through to.
    pub(crate) cont: usize,
    /// The pattern's load-and-compare block (exempt from deref
    /// verification: it reads the lock word itself).
    pub(crate) check_block: usize,
}

/// Matches the exact instruction shape `sw_temporal_check` emits, with
/// block `header` as the block ending in the `lock != 0` branch.
pub(crate) fn match_sw_temporal(f: &Function, header: usize) -> Option<SwTemporalPattern> {
    let hb = &f.blocks[header];
    let n = hb.insts.len();
    if n < 2 {
        return None;
    }
    let zero = match hb.insts[n - 2] {
        Inst::Const { dst, value: 0 } => dst,
        _ => return None,
    };
    let (has_lock, lock) = match hb.insts[n - 1] {
        Inst::Bin {
            op: BinOp::Ne,
            dst,
            lhs,
            rhs,
        } if rhs == zero => (dst, lhs),
        _ => return None,
    };
    let Terminator::Br {
        cond,
        then_: check,
        else_: cont,
    } = hb.term
    else {
        return None;
    };
    if cond != has_lock || check == cont {
        return None;
    }
    let (check, cont) = (check.0 as usize, cont.0 as usize);
    let cb = f.blocks.get(check)?;
    if cb.insts.len() != 2 {
        return None;
    }
    let stored = match cb.insts[0] {
        Inst::Load {
            dst,
            addr,
            offset: 0,
            width: Width::U64,
        } if addr == lock => dst,
        _ => return None,
    };
    let (bad, key) = match cb.insts[1] {
        Inst::Bin {
            op: BinOp::Ne,
            dst,
            lhs,
            rhs,
        } if lhs == stored => (dst, rhs),
        _ => return None,
    };
    let Terminator::Br {
        cond,
        then_: abort,
        else_: cont2,
    } = cb.term
    else {
        return None;
    };
    if cond != bad || cont2.0 as usize != cont {
        return None;
    }
    let ab = f.blocks.get(abort.0 as usize)?;
    if ab.insts.len() != 1 || !matches!(ab.term, Terminator::Ret { value: None }) {
        return None;
    }
    match ab.insts[0] {
        Inst::AbortTemporal {
            key: k,
            lock: l,
            stored: s,
        } if k == key && l == lock && s == stored => {}
        _ => return None,
    }
    Some(SwTemporalPattern {
        key,
        lock,
        cont,
        check_block: check,
    })
}

/// Recognises every inline temporal pattern of `f`, keyed by header
/// block index.
pub(crate) fn find_patterns(f: &Function) -> HashMap<usize, SwTemporalPattern> {
    (0..f.blocks.len())
        .filter_map(|b| match_sw_temporal(f, b).map(|p| (b, p)))
        .collect()
}

/// The available-checks transfer function (shared with the
/// completeness verifier, which replays it per instruction).
/// The availability fact one of the three explicit check forms
/// (`tchk`, spatial helper call, temporal helper call) establishes, if
/// `inst` is one. [`transfer_check`] inserts it and [`redundant`]
/// queries it — a single constructor keeps the two from drifting apart
/// (the witness-coverage obligations in `binval` assume a removed check
/// was redundant against *exactly* the fact an earlier check inserted).
pub(crate) fn check_fact_of(defs: &DefMap, inst: &Inst) -> Option<CheckFact> {
    match inst {
        Inst::Tchk { ptr } => Some(CheckFact::Tchk(defs.temporal_root(*ptr))),
        Inst::Call { func, args, .. } if func == SPATIAL_CHECK_FN && args.len() == 4 => {
            let (root, delta) = defs.spatial_anchor(args[0]);
            let size = defs.const_val(args[3])?;
            Some(CheckFact::SbSpatial {
                root,
                delta,
                base: defs.canon(args[1]),
                bound: defs.canon(args[2]),
                size,
            })
        }
        Inst::Call { func, args, .. } if func == TEMPORAL_CHECK_FN && args.len() == 2 => {
            Some(CheckFact::SbTemporal {
                key: defs.canon(args[0]),
                lock: defs.canon(args[1]),
            })
        }
        _ => None,
    }
}

pub(crate) fn transfer_check(defs: &DefMap, inst: &Inst, fact: &mut FactSet) {
    // Redefinition of any mentioned variable invalidates the fact.
    for d in crate::dataflow::inst_defs(inst) {
        fact.retain(|f| !f.mentions(d));
    }
    if let Some(f) = check_fact_of(defs, inst) {
        fact.insert(f);
        return;
    }
    match inst {
        Inst::Call { func, .. } => {
            if func == SPATIAL_CHECK_FN
                || func == TEMPORAL_CHECK_FN
                || func == META_LOAD_FN
                || func == META_STORE_FN
            {
                // The check and metadata helpers read/write shadow or
                // lock words only and never free memory, so every fact
                // survives (a spatial call whose size is not constant
                // produces no fact, but still kills nothing).
            } else {
                // An unknown callee may free memory or (on return of a
                // callee with stack allocations) release a frame lock:
                // all temporal facts die. Spatial facts survive — a
                // region's base/bound are immutable.
                fact.retain(|f| !f.is_temporal());
            }
        }
        Inst::Free { .. } | Inst::FreeMeta { .. } | Inst::FrameUnlock { .. } => {
            fact.retain(|f| !f.is_temporal());
        }
        // Rebinding a pointer's SRF entry invalidates hardware check
        // facts rooted at it: the next tchk sees different metadata.
        Inst::MetaLoad { ptr, .. }
        | Inst::BindSpatial { ptr, .. }
        | Inst::BindTemporal { ptr, .. } => {
            let root = defs.temporal_root(*ptr);
            fact.retain(|f| !matches!(f, CheckFact::Tchk(r) if *r == root));
        }
        _ => {}
    }
}

struct AvailableChecks<'a> {
    defs: &'a DefMap,
    patterns: &'a HashMap<usize, SwTemporalPattern>,
}

impl ForwardAnalysis for AvailableChecks<'_> {
    type Fact = FactSet;

    fn entry_fact(&self) -> FactSet {
        FactSet::new()
    }

    fn meet(&self, into: &mut FactSet, other: &FactSet) {
        into.retain(|f| other.contains(f));
    }

    fn transfer(&self, inst: &Inst, fact: &mut FactSet) {
        transfer_check(self.defs, inst, fact);
    }

    fn transfer_term(&self, block: usize, _term: &Terminator, fact: &mut FactSet) {
        // An inline temporal pattern checks on the taken edge and skips
        // on the lock==0 edge; on both, `*lock == key` can no longer
        // fail, so the fact holds on every out-edge of the header.
        if let Some(p) = self.patterns.get(&block) {
            fact.insert(CheckFact::SbTemporal {
                key: self.defs.canon(p.key),
                lock: self.defs.canon(p.lock),
            });
        }
    }
}

/// The per-function available-checks solution: the def index, the
/// recognized inline temporal patterns by header block, and one
/// entry-fact per block (`None` on unreachable blocks).
pub(crate) type ChecksSolution = (
    DefMap,
    HashMap<usize, SwTemporalPattern>,
    Vec<Option<FactSet>>,
);

/// Computes the available-checks solution for one function, or `None`
/// if the function is not single-assignment.
pub(crate) fn available_checks(f: &Function) -> Option<ChecksSolution> {
    let defs = DefMap::build(f)?;
    let patterns = find_patterns(f);
    let cfg = Cfg::new(f);
    let analysis = AvailableChecks {
        defs: &defs,
        patterns: &patterns,
    };
    let facts = solve_forward(f, &cfg, &analysis);
    Some((defs, patterns, facts))
}

/// Counters from one [`eliminate`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RceStats {
    /// `Tchk` instructions deleted.
    pub tchk_removed: usize,
    /// `__sbcets_spatial_check` calls deleted.
    pub spatial_removed: usize,
    /// `__sbcets_temporal_check` calls deleted.
    pub temporal_removed: usize,
    /// HWST128 inline temporal patterns short-circuited.
    pub patterns_removed: usize,
    /// Functions skipped (not single-assignment).
    pub skipped_funcs: usize,
}

impl RceStats {
    /// Total static checks removed.
    pub fn total(&self) -> usize {
        self.tchk_removed + self.spatial_removed + self.temporal_removed + self.patterns_removed
    }
}

/// Counts the static check sites in an instrumented module: `Tchk`s,
/// spatial/temporal helper calls, and inline temporal patterns.
pub fn static_check_count(m: &Module) -> usize {
    let mut n = 0;
    for f in &m.funcs {
        n += find_patterns(f).len();
        for b in &f.blocks {
            for i in &b.insts {
                match i {
                    Inst::Tchk { .. } => n += 1,
                    Inst::Call { func, .. }
                        if func == SPATIAL_CHECK_FN || func == TEMPORAL_CHECK_FN =>
                    {
                        n += 1
                    }
                    _ => {}
                }
            }
        }
    }
    n
}

/// Runs redundant-check elimination over an instrumented module.
pub fn eliminate(module: &mut Module) -> RceStats {
    let mut stats = RceStats::default();
    for f in &mut module.funcs {
        eliminate_in(f, &mut stats);
    }
    stats
}

fn redundant(defs: &DefMap, inst: &Inst, fact: &FactSet) -> bool {
    // A check defines nothing, so it can simply be dropped; a call
    // with a destination is not removable even if its fact is covered.
    let removable = matches!(inst, Inst::Tchk { .. } | Inst::Call { dst: None, .. });
    removable && check_fact_of(defs, inst).is_some_and(|f| fact.contains(&f))
}

fn eliminate_in(f: &mut Function, stats: &mut RceStats) {
    let Some((defs, patterns, facts)) = available_checks(f) else {
        stats.skipped_funcs += 1;
        return;
    };

    let mut changed = false;
    for (b, entry_fact) in facts.iter().enumerate() {
        let Some(mut fact) = entry_fact.clone() else {
            continue; // unreachable: no fact, don't touch
        };
        let mut keep = Vec::with_capacity(f.blocks[b].insts.len());
        for inst in std::mem::take(&mut f.blocks[b].insts) {
            if redundant(&defs, &inst, &fact) {
                match &inst {
                    Inst::Tchk { .. } => stats.tchk_removed += 1,
                    Inst::Call { func, .. } if func == SPATIAL_CHECK_FN => {
                        stats.spatial_removed += 1
                    }
                    _ => stats.temporal_removed += 1,
                }
                changed = true;
                continue; // checks define nothing; just drop
            }
            transfer_check(&defs, &inst, &mut fact);
            keep.push(inst);
        }
        f.blocks[b].insts = keep;

        // Short-circuit a redundant inline temporal pattern: the header
        // branch becomes a jump to the continuation. The pattern's own
        // blocks become unreachable and are emptied by the sweep; the
        // header's `Const 0` / `Ne` defs die with it if unused.
        if let Some(p) = patterns.get(&b) {
            let have = CheckFact::SbTemporal {
                key: defs.canon(p.key),
                lock: defs.canon(p.lock),
            };
            if fact.contains(&have) {
                f.blocks[b].term = Terminator::Jmp(BlockId(p.cont as u32));
                stats.patterns_removed += 1;
                changed = true;
            }
        }
    }
    if changed {
        sweep(f);
    }
}

/// Post-elimination cleanup: empty newly unreachable blocks (dead
/// pattern bodies would otherwise still be lowered) and drop pure defs
/// whose only consumers were deleted checks.
fn sweep(f: &mut Function) {
    let cfg = Cfg::new(f);
    for (b, block) in f.blocks.iter_mut().enumerate() {
        let already_empty =
            block.insts.is_empty() && matches!(block.term, Terminator::Ret { value: None });
        if !cfg.is_reachable(b) && !already_empty {
            block.insts.clear();
            block.term = Terminator::Ret { value: None };
        }
    }
    while crate::opt::eliminate_dead(f) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::instrument::{instrument, Scheme};
    use crate::ir::Width;
    use crate::ModuleBuilder;

    fn count<F: Fn(&Inst) -> bool>(m: &Module, pred: F) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.insts)
            .filter(|i| pred(i))
            .count()
    }

    fn instrumented(m: &Module, scheme: Scheme) -> Module {
        let info = analyze(m).unwrap();
        instrument(m, &info, scheme)
    }

    /// Straight-line repeated derefs of one pointer: all but the first
    /// check of each kind must go.
    fn repeated_deref_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        f.store(v, p, 0, Width::U64);
        let r = f.load(p, 0, Width::U64);
        f.ret(Some(r));
        f.finish();
        mb.finish()
    }

    #[test]
    fn straight_line_tchks_collapse_to_one() {
        let mut m = instrumented(&repeated_deref_module(), Scheme::Hwst128Tchk);
        assert_eq!(count(&m, |i| matches!(i, Inst::Tchk { .. })), 3);
        let stats = eliminate(&mut m);
        assert_eq!(stats.tchk_removed, 2);
        assert_eq!(count(&m, |i| matches!(i, Inst::Tchk { .. })), 1);
    }

    #[test]
    fn identical_size_sbcets_temporal_checks_collapse() {
        let mut m = instrumented(&repeated_deref_module(), Scheme::Sbcets);
        let stats = eliminate(&mut m);
        // Three derefs at the same (root, delta, size): two of each
        // check kind are redundant.
        assert_eq!(stats.spatial_removed, 2);
        assert_eq!(stats.temporal_removed, 2);
    }

    #[test]
    fn differing_offsets_are_not_merged() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        f.store(v, p, 8, Width::U64);
        f.ret(None);
        f.finish();
        let mut m = instrumented(&mb.finish(), Scheme::Sbcets);
        let stats = eliminate(&mut m);
        // Spatial facts differ (delta 0 vs 8); temporal fact is shared.
        assert_eq!(stats.spatial_removed, 0);
        assert_eq!(stats.temporal_removed, 1);
    }

    #[test]
    fn free_kills_temporal_facts() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let q = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        f.free(q);
        f.store(v, p, 0, Width::U64); // must stay checked
        f.ret(None);
        f.finish();
        let mut m = instrumented(&mb.finish(), Scheme::Hwst128Tchk);
        let before = count(&m, |i| matches!(i, Inst::Tchk { .. }));
        let stats = eliminate(&mut m);
        // Only the free-path tchk of q (dominated by nothing) and the
        // two stores' tchks exist; the free kills the first store's
        // fact, so nothing may be removed.
        assert_eq!(stats.tchk_removed, 0);
        assert_eq!(count(&m, |i| matches!(i, Inst::Tchk { .. })), before);
    }

    #[test]
    fn loop_bodies_keep_their_check() {
        // for (i = 0; i < n; i++) *p — the loop-entry meet with the
        // entry path must keep the in-loop check the first iteration
        // needs... but once inside, the backedge fact and the preheader
        // fact agree, so a single hoisted-equivalent check survives.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        let i0 = f.konst(0);
        let slot = f.local();
        f.local_set(slot, i0);
        f.jmp(head);
        f.switch_to(head);
        let i = f.local_get(slot);
        let n = f.konst(4);
        let c = f.bin(crate::ir::BinOp::Slt, i, n);
        f.br(c, body, exit);
        f.switch_to(body);
        let v = f.konst(9);
        f.store(v, p, 0, Width::U64);
        let one = f.konst(1);
        let i2 = f.bin(crate::ir::BinOp::Add, i, one);
        f.local_set(slot, i2);
        f.jmp(head);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let m = mb.finish();

        let mut t = instrumented(&m, Scheme::Hwst128Tchk);
        let stats = eliminate(&mut t);
        // No check before the loop: the body's tchk meets the empty
        // entry fact at the header and must survive.
        assert_eq!(stats.tchk_removed, 0);
        assert_eq!(count(&t, |i| matches!(i, Inst::Tchk { .. })), 1);
    }

    #[test]
    fn hwst128_inline_pattern_is_short_circuited() {
        let mut m = instrumented(&repeated_deref_module(), Scheme::Hwst128);
        let loads_before = count(&m, |i| matches!(i, Inst::Load { .. }));
        let stats = eliminate(&mut m);
        // Three derefs → three inline patterns; the second and third
        // are dominated by the first with no kill in between.
        assert_eq!(stats.patterns_removed, 2);
        // Their lock-word loads died with them.
        assert!(count(&m, |i| matches!(i, Inst::Load { .. })) < loads_before);
    }

    #[test]
    fn branches_merge_only_common_checks() {
        // if (c) { *p } else { } ; *p — the join sees the check on one
        // arm only, so the post-join check must survive; a diamond with
        // the check on BOTH arms lets the post-join check go.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let c = f.konst(1);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        let v = f.konst(7);
        f.br(c, then_b, else_b);
        f.switch_to(then_b);
        f.store(v, p, 0, Width::U64);
        f.jmp(join);
        f.switch_to(else_b);
        f.jmp(join);
        f.switch_to(join);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let mut one_arm = instrumented(&mb.finish(), Scheme::Hwst128Tchk);
        assert_eq!(eliminate(&mut one_arm).tchk_removed, 0);

        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let c = f.konst(1);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let join = f.new_block();
        let v = f.konst(7);
        f.br(c, then_b, else_b);
        f.switch_to(then_b);
        f.store(v, p, 0, Width::U64);
        f.jmp(join);
        f.switch_to(else_b);
        f.store(v, p, 8, Width::U64);
        f.jmp(join);
        f.switch_to(join);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let mut both_arms = instrumented(&mb.finish(), Scheme::Hwst128Tchk);
        // Temporal root is shared: the join's tchk is covered by both
        // arms' tchks.
        assert_eq!(eliminate(&mut both_arms).tchk_removed, 1);
    }

    #[test]
    fn derived_pointers_share_the_temporal_root() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        let q = f.gep_imm(p, 8);
        f.store(v, q, 0, Width::U64);
        f.ret(None);
        f.finish();
        let mut m = instrumented(&mb.finish(), Scheme::Hwst128Tchk);
        // tchk q is covered by tchk p: same SRF root, same key/lock.
        assert_eq!(eliminate(&mut m).tchk_removed, 1);
    }

    #[test]
    fn none_and_shore_are_untouched() {
        for scheme in [Scheme::None, Scheme::Shore] {
            let mut m = instrumented(&repeated_deref_module(), scheme);
            let before = m.clone();
            let stats = eliminate(&mut m);
            assert_eq!(stats.total(), 0);
            assert_eq!(m, before, "{scheme:?} must be an identity");
        }
    }

    #[test]
    fn static_check_count_tracks_removals() {
        let mut m = instrumented(&repeated_deref_module(), Scheme::Hwst128Tchk);
        let before = static_check_count(&m);
        let stats = eliminate(&mut m);
        assert_eq!(static_check_count(&m), before - stats.total());
    }
}
