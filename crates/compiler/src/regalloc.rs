//! Liveness analysis and linear-scan register allocation for the `-O1`
//! backend tier.
//!
//! The `-O0` lowering gives every IR variable and spill local a home
//! frame slot and shuttles every value through `t`-register scratch.
//! This module decides, ahead of emission, which of those frame-resident
//! cells get a dedicated *cache register* from the callee-free
//! `s0..s11` pool (which the `-O0` generator never touches). The `-O1`
//! emitter keeps a cached copy of the cell in that register under a
//! strict write-through discipline — the home slot stays authoritative
//! at every call boundary — so an assignment here can only change how
//! many loads and stores are emitted, never what any slot contains.
//!
//! Because correctness is carried by the emitter's write-through cache
//! (and re-proved per image by `binval`), the analysis here is allowed
//! to be block-granular: live intervals span whole blocks in emission
//! order, and two entities may share a register only when their
//! intervals never overlap. Imprecision costs reloads, not soundness.
//!
//! Entities are:
//!
//! * IR variables ([`VarId`](crate::ir::VarId)) — home slot `8 + 8*i`;
//! * spill locals ([`LocalId`](crate::ir::LocalId) cells accessed via
//!   `LocalGet`/`LocalSet`) — slot `locals_base + 8*i`.
//!
//! Neither kind is ever address-taken, so caching them in registers is
//! unobservable through memory.

use crate::dataflow::{inst_defs, Cfg};
use crate::ir::{Function, Inst, Terminator};
use hwst_isa::Reg;
use std::collections::BTreeMap;

/// The `-O1` cache-register pool: all twelve `s` registers, which the
/// baseline code generator leaves untouched and the simulator's syscall
/// handlers never write (only `a0..a2` carry syscall results).
pub const POOL: [Reg; 12] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
    Reg::S11,
];

/// One per-entity allocation decision, retained for golden tests and
/// diagnostics.
#[derive(Debug, Clone)]
pub struct EntityPlan {
    /// Display name: `v<n>` for variables, `l<n>` for spill locals.
    pub name: String,
    /// Home frame slot (sp-relative byte offset).
    pub slot: i64,
    /// First block index (emission order) where the entity is live.
    pub start: usize,
    /// Last block index (emission order) where the entity is live.
    pub end: usize,
    /// Loop-depth-weighted use count driving spill decisions.
    pub weight: u64,
    /// Assigned cache register, or `None` if the entity stays
    /// frame-only (spilled).
    pub reg: Option<Reg>,
}

/// The result of register allocation for one function.
#[derive(Debug, Clone, Default)]
pub struct Allocation {
    /// Home slot → assigned cache register. Many slots may map to the
    /// same register when their live intervals do not overlap.
    pub assign: BTreeMap<i64, Reg>,
    /// Variables (by `VarId` index) with zero uses anywhere in the
    /// function: their defining stores can be elided by the emitter
    /// (after the emitter excludes pointer variables, whose home slots
    /// anchor shadow metadata).
    pub dead_vars: Vec<u32>,
    /// Per-entity decisions in deterministic (slot) order, including
    /// spills, for golden rendering.
    pub plans: Vec<EntityPlan>,
}

/// A dense bitset over entity indices.
#[derive(Clone, PartialEq, Eq, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }
    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }
    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
    /// `self |= other`, reporting whether anything changed.
    fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let next = *w | *o;
            changed |= next != *w;
            *w = next;
        }
        changed
    }
    /// `self |= other \ minus`, reporting whether anything changed.
    fn union_minus(&mut self, other: &BitSet, minus: &BitSet) -> bool {
        let mut changed = false;
        for ((w, o), m) in self.words.iter_mut().zip(&other.words).zip(&minus.words) {
            let next = *w | (*o & !*m);
            changed |= next != *w;
            *w = next;
        }
        changed
    }
    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w >> b & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }
}

/// Per-entity static facts gathered in one walk over the function.
struct Facts {
    /// `gen[b]`: entities with an upward-exposed use in block `b`.
    gen: Vec<BitSet>,
    /// `kill[b]`: entities defined in block `b`.
    kill: Vec<BitSet>,
    /// `touched[b]`: entities used or defined anywhere in block `b`.
    touched: Vec<BitSet>,
    /// Raw (unweighted) per-block use+def counts, per entity.
    counts: Vec<Vec<u32>>,
    /// Total use count per entity (reads only, defs excluded).
    use_counts: Vec<u64>,
}

/// Entity index spaces: variables first, then locals.
fn var_ent(v: u32) -> usize {
    v as usize
}

fn gather(f: &Function, n_ents: usize) -> Facts {
    let nb = f.blocks.len();
    let local_ent = |l: u32| f.num_vars as usize + l as usize;
    let mut gen = vec![BitSet::new(n_ents); nb];
    let mut kill = vec![BitSet::new(n_ents); nb];
    let mut touched = vec![BitSet::new(n_ents); nb];
    let mut counts = vec![vec![0u32; n_ents]; nb];
    let mut use_counts = vec![0u64; n_ents];

    fn step_use(
        e: usize,
        defined: &BitSet,
        gen_b: &mut BitSet,
        touched_b: &mut BitSet,
        counts_b: &mut [u32],
        use_counts: &mut [u64],
    ) {
        if !defined.contains(e) {
            gen_b.insert(e);
        }
        touched_b.insert(e);
        counts_b[e] += 1;
        use_counts[e] += 1;
    }
    fn step_def(
        e: usize,
        defined: &mut BitSet,
        kill_b: &mut BitSet,
        touched_b: &mut BitSet,
        counts_b: &mut [u32],
    ) {
        defined.insert(e);
        kill_b.insert(e);
        touched_b.insert(e);
        counts_b[e] += 1;
    }

    for (bi, block) in f.blocks.iter().enumerate() {
        let mut defined = BitSet::new(n_ents);
        for inst in &block.insts {
            // Uses first (an instruction reads its operands before it
            // writes its destination).
            for u in inst.uses() {
                step_use(
                    var_ent(u.0),
                    &defined,
                    &mut gen[bi],
                    &mut touched[bi],
                    &mut counts[bi],
                    &mut use_counts,
                );
            }
            if let Inst::LocalGet { index, .. } = inst {
                step_use(
                    local_ent(index.0),
                    &defined,
                    &mut gen[bi],
                    &mut touched[bi],
                    &mut counts[bi],
                    &mut use_counts,
                );
            }
            for d in inst_defs(inst) {
                step_def(
                    var_ent(d.0),
                    &mut defined,
                    &mut kill[bi],
                    &mut touched[bi],
                    &mut counts[bi],
                );
            }
            if let Inst::LocalSet { index, .. } = inst {
                step_def(
                    local_ent(index.0),
                    &mut defined,
                    &mut kill[bi],
                    &mut touched[bi],
                    &mut counts[bi],
                );
            }
        }
        let term_use = match &block.term {
            Terminator::Br { cond, .. } => Some(var_ent(cond.0)),
            Terminator::Ret { value: Some(v) } => Some(var_ent(v.0)),
            _ => None,
        };
        if let Some(e) = term_use {
            step_use(
                e,
                &defined,
                &mut gen[bi],
                &mut touched[bi],
                &mut counts[bi],
                &mut use_counts,
            );
        }
    }

    // Parameters are defined by the prologue's parking stores, i.e.
    // before the entry block runs.
    for p in &f.params {
        let e = var_ent(p.0);
        kill[0].insert(e);
        touched[0].insert(e);
    }

    Facts {
        gen,
        kill,
        touched,
        counts,
        use_counts,
    }
}

/// Backward liveness fixpoint; returns `(live_in, live_out)` per block.
fn liveness(cfg: &Cfg, facts: &Facts, nb: usize, n_ents: usize) -> (Vec<BitSet>, Vec<BitSet>) {
    let mut live_in = vec![BitSet::new(n_ents); nb];
    let mut live_out = vec![BitSet::new(n_ents); nb];
    let mut changed = true;
    while changed {
        changed = false;
        // Postorder-ish sweep: visiting in reverse emission order
        // converges quickly for reducible control flow.
        for b in (0..nb).rev() {
            let mut out = BitSet::new(n_ents);
            for &s in &cfg.succs[b] {
                out.union_with(&live_in[s]);
            }
            changed |= live_out[b].union_with(&out);
            let snapshot = live_out[b].clone();
            changed |= live_in[b].union_with(&facts.gen[b]);
            changed |= live_in[b].union_minus(&snapshot, &facts.kill[b]);
        }
    }
    (live_in, live_out)
}

/// Loop nesting depth per block, from the natural loop of each
/// retreating edge in the [`Cfg`]'s reverse postorder.
fn loop_depths(cfg: &Cfg, nb: usize) -> Vec<u32> {
    let mut depth = vec![0u32; nb];
    for h in 0..nb {
        let Some(h_pos) = cfg.rpo_pos.get(h).copied().flatten() else {
            continue;
        };
        for &p in &cfg.preds[h] {
            let Some(p_pos) = cfg.rpo_pos.get(p).copied().flatten() else {
                continue;
            };
            if p_pos < h_pos {
                continue; // forward edge
            }
            // Natural loop of the back edge p -> h: h plus everything
            // that reaches p without passing through h.
            let mut in_loop = vec![false; nb];
            in_loop[h] = true;
            let mut stack = vec![p];
            while let Some(b) = stack.pop() {
                if in_loop[b] {
                    continue;
                }
                in_loop[b] = true;
                for &q in &cfg.preds[b] {
                    stack.push(q);
                }
            }
            for (b, &inl) in in_loop.iter().enumerate() {
                if inl {
                    depth[b] = depth[b].saturating_add(1);
                }
            }
        }
    }
    depth
}

/// Runs liveness and linear-scan allocation over `f`.
///
/// `Allocation::assign` maps home slots to cache registers; entities
/// whose weighted demand loses the scan stay frame-only and appear in
/// [`Allocation::plans`] with `reg: None`.
pub fn allocate(f: &Function) -> Allocation {
    let nb = f.blocks.len();
    let n_vars = f.num_vars as usize;
    let n_ents = n_vars + f.num_locals as usize;
    if nb == 0 || n_ents == 0 {
        return Allocation::default();
    }
    let locals_base = 8 + 8 * n_vars as i64;
    let cfg = Cfg::new(f);
    let facts = gather(f, n_ents);
    let (live_in, live_out) = liveness(&cfg, &facts, nb, n_ents);
    let depth = loop_depths(&cfg, nb);

    // Block-granular intervals + loop-weighted counts.
    let mut start = vec![usize::MAX; n_ents];
    let mut end = vec![0usize; n_ents];
    let mut weight = vec![0u64; n_ents];
    for b in 0..nb {
        let d = depth[b].min(10);
        let scale = 1u64 << (2 * d);
        for e in facts.touched[b]
            .iter()
            .chain(live_in[b].iter())
            .chain(live_out[b].iter())
        {
            start[e] = start[e].min(b);
            end[e] = end[e].max(b);
        }
        for (e, &c) in facts.counts[b].iter().enumerate() {
            weight[e] = weight[e].saturating_add(u64::from(c).saturating_mul(scale));
        }
    }

    let slot_of = |e: usize| -> i64 {
        if e < n_vars {
            8 + 8 * e as i64
        } else {
            locals_base + 8 * (e - n_vars) as i64
        }
    };
    let name_of = |e: usize| -> String {
        if e < n_vars {
            format!("v{e}")
        } else {
            format!("l{}", e - n_vars)
        }
    };

    // Linear scan over entities in interval-start order. Candidates
    // are entities that are actually touched and worth caching (at
    // least one read somewhere).
    let mut order: Vec<usize> = (0..n_ents)
        .filter(|&e| start[e] != usize::MAX && facts.use_counts[e] > 0)
        .collect();
    order.sort_by_key(|&e| (start[e], slot_of(e)));

    let mut free: Vec<Reg> = POOL.iter().rev().copied().collect();
    // (end, entity, reg, weight) of currently live assignments.
    let mut active: Vec<(usize, usize, Reg, u64)> = Vec::new();
    let mut assigned: Vec<Option<Reg>> = vec![None; n_ents];

    for &e in &order {
        // Expire intervals that ended before this one starts.
        let mut i = 0;
        while i < active.len() {
            if active[i].0 < start[e] {
                free.push(active[i].2);
                active.remove(i);
            } else {
                i += 1;
            }
        }
        if let Some(r) = free.pop() {
            assigned[e] = Some(r);
            active.push((end[e], e, r, weight[e]));
        } else if let Some(victim_at) = active
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| (a.3, a.1))
            .map(|(i, _)| i)
        {
            let victim = active[victim_at];
            if victim.3 < weight[e] {
                // Steal the lowest-weight register; its former owner
                // becomes frame-only everywhere.
                assigned[victim.1] = None;
                assigned[e] = Some(victim.2);
                active[victim_at] = (end[e], e, victim.2, weight[e]);
            }
        }
    }

    let mut assign = BTreeMap::new();
    let mut plans = Vec::new();
    for &e in &order {
        if let Some(r) = assigned[e] {
            assign.insert(slot_of(e), r);
        }
        plans.push(EntityPlan {
            name: name_of(e),
            slot: slot_of(e),
            start: start[e],
            end: end[e],
            weight: weight[e],
            reg: assigned[e],
        });
    }
    plans.sort_by_key(|p| p.slot);

    let dead_vars = (0..n_vars as u32)
        .filter(|&v| facts.use_counts[var_ent(v)] == 0 && start[var_ent(v)] != usize::MAX)
        .filter(|&v| !f.params.iter().any(|p| p.0 == v))
        .collect();

    Allocation {
        assign,
        dead_vars,
        plans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::BinOp;
    use crate::ModuleBuilder;

    fn sample() -> crate::ir::Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let a = f.konst(3);
        let b = f.konst(4);
        let c = f.bin(BinOp::Add, a, b);
        let _dead = f.bin(BinOp::Add, c, c);
        f.ret(Some(c));
        f.finish();
        mb.finish()
    }

    #[test]
    fn hot_vars_get_registers_and_dead_defs_are_found() {
        let m = sample();
        let f = &m.funcs[0];
        let alloc = allocate(f);
        // a, b, c are all used; each should land in a register.
        for used in [0u32, 1, 2] {
            let slot = 8 + 8 * i64::from(used);
            assert!(alloc.assign.contains_key(&slot), "v{used} unassigned");
        }
        assert!(alloc.dead_vars.contains(&3), "dead def not detected");
        // Distinct simultaneously-live entities get distinct registers.
        let regs: Vec<_> = alloc.assign.values().collect();
        let mut uniq = regs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(regs.len(), uniq.len(), "overlapping shares: {regs:?}");
    }

    #[test]
    fn allocation_is_deterministic() {
        let m = sample();
        let a1 = allocate(&m.funcs[0]);
        let a2 = allocate(&m.funcs[0]);
        assert_eq!(a1.assign, a2.assign);
        assert_eq!(a1.dead_vars, a2.dead_vars);
    }
}
