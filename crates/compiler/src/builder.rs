//! Ergonomic IR construction.

use crate::ir::{
    BinOp, Block, BlockId, Function, Global, GlobalId, Inst, LocalId, Module, Terminator, VarId,
    Width,
};

/// Builds a [`Module`] function by function.
///
/// # Example
///
/// ```
/// use hwst_compiler::{ModuleBuilder, ir::BinOp};
///
/// let mut mb = ModuleBuilder::new();
/// let buf = mb.global("buf", 64);
/// let mut f = mb.func("main");
/// let p = f.addr_of_global(buf);
/// let v = f.konst(7);
/// f.store(v, p, 0, hwst_compiler::ir::Width::U64);
/// let r = f.load(p, 0, hwst_compiler::ir::Width::U64);
/// f.ret(Some(r));
/// f.finish();
/// let module = mb.finish();
/// assert_eq!(module.funcs.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates an empty module builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a zero-initialised global of `size` bytes.
    pub fn global(&mut self, name: &str, size: u64) -> GlobalId {
        self.global_init(name, size, vec![])
    }

    /// Declares a global with initial 64-bit words at byte offsets.
    pub fn global_init(&mut self, name: &str, size: u64, init: Vec<(u64, u64)>) -> GlobalId {
        let id = GlobalId(self.module.globals.len() as u32);
        self.module.globals.push(Global {
            name: name.into(),
            size,
            init,
        });
        id
    }

    /// Starts building a function; call [`FuncBuilder::finish`] to commit
    /// it.
    pub fn func(&mut self, name: &str) -> FuncBuilder<'_> {
        FuncBuilder {
            mb: self,
            func: Function {
                name: name.into(),
                params: vec![],
                param_is_ptr: vec![],
                num_vars: 0,
                num_locals: 0,
                blocks: vec![],
            },
            blocks: vec![PartialBlock::default()],
            cur: 0,
        }
    }

    /// Finalises the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

#[derive(Debug, Default)]
struct PartialBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

/// Builds one function. Dropping the builder without calling
/// [`finish`](Self::finish) discards the function.
#[derive(Debug)]
pub struct FuncBuilder<'m> {
    mb: &'m mut ModuleBuilder,
    func: Function,
    blocks: Vec<PartialBlock>,
    cur: usize,
}

impl FuncBuilder<'_> {
    fn fresh(&mut self) -> VarId {
        let v = VarId(self.func.num_vars);
        self.func.num_vars += 1;
        v
    }

    fn push(&mut self, inst: Inst) {
        assert!(
            self.blocks[self.cur].term.is_none(),
            "emitting into a terminated block b{}",
            self.cur
        );
        self.blocks[self.cur].insts.push(inst);
    }

    /// Declares the next parameter (call before emitting body code).
    pub fn param(&mut self, is_pointer: bool) -> VarId {
        let v = self.fresh();
        self.func.params.push(v);
        self.func.param_is_ptr.push(is_pointer);
        v
    }

    /// `dst = value`.
    pub fn konst(&mut self, value: i64) -> VarId {
        let dst = self.fresh();
        self.push(Inst::Const { dst, value });
        dst
    }

    /// `dst = lhs <op> rhs`.
    pub fn bin(&mut self, op: BinOp, lhs: VarId, rhs: VarId) -> VarId {
        let dst = self.fresh();
        self.push(Inst::Bin { op, dst, lhs, rhs });
        dst
    }

    /// `dst = lhs <op> imm`.
    pub fn bin_imm(&mut self, op: BinOp, lhs: VarId, imm: i64) -> VarId {
        let dst = self.fresh();
        self.push(Inst::BinImm { op, dst, lhs, imm });
        dst
    }

    /// Scalar load.
    pub fn load(&mut self, addr: VarId, offset: i64, width: Width) -> VarId {
        let dst = self.fresh();
        self.push(Inst::Load {
            dst,
            addr,
            offset,
            width,
        });
        dst
    }

    /// Scalar store.
    pub fn store(&mut self, src: VarId, addr: VarId, offset: i64, width: Width) {
        self.push(Inst::Store {
            src,
            addr,
            offset,
            width,
        });
    }

    /// Pointer load (metadata follows).
    pub fn load_ptr(&mut self, addr: VarId, offset: i64) -> VarId {
        let dst = self.fresh();
        self.push(Inst::LoadPtr { dst, addr, offset });
        dst
    }

    /// Pointer store (metadata follows).
    pub fn store_ptr(&mut self, src: VarId, addr: VarId, offset: i64) {
        self.push(Inst::StorePtr { src, addr, offset });
    }

    /// Pointer to a global.
    pub fn addr_of_global(&mut self, g: GlobalId) -> VarId {
        let dst = self.fresh();
        self.push(Inst::AddrOfGlobal { dst, global: g });
        dst
    }

    /// Frame slot of `size` bytes.
    pub fn stack_alloc(&mut self, size: u64) -> VarId {
        let dst = self.fresh();
        self.push(Inst::StackAlloc { dst, size });
        dst
    }

    /// Heap allocation.
    pub fn malloc(&mut self, size: VarId) -> VarId {
        let dst = self.fresh();
        self.push(Inst::Malloc { dst, size });
        dst
    }

    /// Heap allocation of a constant size (convenience).
    pub fn malloc_bytes(&mut self, size: u64) -> VarId {
        let s = self.konst(size as i64);
        self.malloc(s)
    }

    /// Frees a heap pointer.
    pub fn free(&mut self, ptr: VarId) {
        self.push(Inst::Free { ptr });
    }

    /// Pointer arithmetic with a variable offset.
    pub fn gep(&mut self, base: VarId, offset: VarId) -> VarId {
        let dst = self.fresh();
        self.push(Inst::Gep { dst, base, offset });
        dst
    }

    /// Pointer arithmetic with a constant offset.
    pub fn gep_imm(&mut self, base: VarId, imm: i64) -> VarId {
        let dst = self.fresh();
        self.push(Inst::GepImm { dst, base, imm });
        dst
    }

    /// Call with a result.
    pub fn call(&mut self, func: &str, args: &[VarId]) -> VarId {
        let dst = self.fresh();
        self.push(Inst::Call {
            dst: Some(dst),
            func: func.into(),
            args: args.to_vec(),
        });
        dst
    }

    /// Call without a result.
    pub fn call_void(&mut self, func: &str, args: &[VarId]) {
        self.push(Inst::Call {
            dst: None,
            func: func.into(),
            args: args.to_vec(),
        });
    }

    /// Emits one output byte.
    pub fn putchar(&mut self, src: VarId) {
        self.push(Inst::PutChar { src });
    }

    /// Emits a decimal integer and newline.
    pub fn print_u64(&mut self, src: VarId) {
        self.push(Inst::PrintU64 { src });
    }

    /// Declares a scalar local slot (unchecked frame storage for loop
    /// counters and other non-pointer locals).
    pub fn local(&mut self) -> LocalId {
        let l = LocalId(self.func.num_locals);
        self.func.num_locals += 1;
        l
    }

    /// Reads a local slot.
    pub fn local_get(&mut self, index: LocalId) -> VarId {
        let dst = self.fresh();
        self.push(Inst::LocalGet { dst, index });
        dst
    }

    /// Writes a local slot.
    pub fn local_set(&mut self, index: LocalId, src: VarId) {
        self.push(Inst::LocalSet { src, index });
    }

    /// Creates a new (empty, unpositioned) block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(PartialBlock::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Moves the insertion point to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not exist.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!((b.0 as usize) < self.blocks.len(), "no such block {b}");
        self.cur = b.0 as usize;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.cur as u32)
    }

    fn terminate(&mut self, t: Terminator) {
        assert!(
            self.blocks[self.cur].term.is_none(),
            "block b{} already terminated",
            self.cur
        );
        self.blocks[self.cur].term = Some(t);
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<VarId>) {
        self.terminate(Terminator::Ret { value });
    }

    /// Terminates with a conditional branch (`cond != 0` → `then_`).
    pub fn br(&mut self, cond: VarId, then_: BlockId, else_: BlockId) {
        self.terminate(Terminator::Br { cond, then_, else_ });
    }

    /// Terminates with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp(target));
    }

    /// Commits the function to the module.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(mut self) {
        let name = self.func.name.clone();
        self.func.blocks = self
            .blocks
            .drain(..)
            .enumerate()
            .map(|(i, b)| {
                let Some(term) = b.term else {
                    panic!("function {name}: block b{i} lacks a terminator");
                };
                Block {
                    insts: b.insts,
                    term,
                }
            })
            .collect();
        self.mb.module.funcs.push(self.func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        // i = 0; acc = 0; while (i != 10) { acc += i; i += 1 } return acc
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        let zero = f.konst(0);
        f.jmp(head);
        f.switch_to(head);
        // NOTE: without phis the loop state lives in memory; here we keep
        // it simple by re-checking a constant (structure test only).
        let c = f.bin_imm(BinOp::Ne, zero, 10);
        f.br(c, body, done);
        f.switch_to(body);
        f.jmp(head);
        f.switch_to(done);
        f.ret(Some(zero));
        f.finish();
        let m = mb.finish();
        assert_eq!(m.funcs[0].blocks.len(), 4);
        assert!(crate::analysis::analyze(&m).is_ok());
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_termination_panics() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        f.ret(None);
        f.ret(None);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        f.new_block();
        f.ret(None);
        f.finish();
    }

    #[test]
    fn params_come_first() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("sum");
        let a = f.param(false);
        let b = f.param(true);
        let r = f.bin(BinOp::Add, a, b);
        f.ret(Some(r));
        f.finish();
        let m = mb.finish();
        assert_eq!(m.funcs[0].params.len(), 2);
        assert_eq!(m.funcs[0].param_is_ptr, vec![false, true]);
    }
}
