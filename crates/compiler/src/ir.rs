//! The pointer-aware intermediate representation.
//!
//! The IR is deliberately close to what the SoftBoundCETS LLVM pass sees:
//! straight-line instructions in basic blocks over virtual registers,
//! with *pointer provenance explicit in the instruction set* — pointer
//! creation (`Malloc`, `StackAlloc`, `AddrOfGlobal`), pointer arithmetic
//! (`Gep`/`GepImm`), pointer transfer through memory (`LoadPtr`/
//! `StorePtr`) and dereference (`Load`/`Store`) are all distinct ops, so
//! the instrumentation passes know exactly where metadata must be
//! created, propagated and checked.

use std::fmt;

/// A virtual register (IR variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A basic-block id within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A global data object id within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalId(pub u32);

/// A scalar local slot (sp-relative, never instrumented — the moral
/// equivalent of a C local accessed directly through the frame pointer,
/// which SoftBoundCETS does not treat as a pointer dereference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Memory access width for `Load`/`Store`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Width {
    U8,
    U16,
    U32,
    U64,
}

impl Width {
    /// Bytes accessed.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::U8 => 1,
            Width::U16 => 2,
            Width::U32 => 4,
            Width::U64 => 8,
        }
    }
}

/// Two-operand ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    /// Signed less-than (produces 0/1).
    Slt,
    /// Unsigned less-than (produces 0/1).
    Sltu,
    /// Equality (produces 0/1).
    Eq,
    /// Inequality (produces 0/1).
    Ne,
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = imm`.
    Const {
        /// Destination.
        dst: VarId,
        /// The 64-bit immediate.
        value: i64,
    },
    /// `dst = lhs <op> rhs`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: VarId,
        /// Left operand.
        lhs: VarId,
        /// Right operand.
        rhs: VarId,
    },
    /// `dst = lhs <op> imm` (strength-reduced form).
    BinImm {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: VarId,
        /// Left operand.
        lhs: VarId,
        /// Immediate right operand.
        imm: i64,
    },
    /// Scalar load: `dst = *(addr + offset)`.
    Load {
        /// Destination.
        dst: VarId,
        /// Pointer operand.
        addr: VarId,
        /// Constant byte offset.
        offset: i64,
        /// Access width (zero-extended).
        width: Width,
    },
    /// Scalar store: `*(addr + offset) = src`.
    Store {
        /// Value stored.
        src: VarId,
        /// Pointer operand.
        addr: VarId,
        /// Constant byte offset.
        offset: i64,
        /// Access width.
        width: Width,
    },
    /// Pointer load: `dst = *(addr + offset)` where the loaded value is a
    /// pointer — metadata must come with it (Fig. 1-d).
    LoadPtr {
        /// Destination (a pointer).
        dst: VarId,
        /// Pointer operand addressing the container.
        addr: VarId,
        /// Constant byte offset.
        offset: i64,
    },
    /// Pointer store: `*(addr + offset) = src` where `src` is a pointer —
    /// metadata must be stored alongside (Fig. 1-c).
    StorePtr {
        /// The pointer being stored.
        src: VarId,
        /// Pointer operand addressing the container.
        addr: VarId,
        /// Constant byte offset.
        offset: i64,
    },
    /// `dst = &globals[g]` — pointer to a global with statically known
    /// bounds.
    AddrOfGlobal {
        /// Destination (a pointer).
        dst: VarId,
        /// The global.
        global: GlobalId,
    },
    /// `dst = alloca(size)` — a fixed-size slot in the function frame.
    /// The pointer carries the slot's bounds and (for temporal schemes)
    /// the frame's key/lock.
    StackAlloc {
        /// Destination (a pointer).
        dst: VarId,
        /// Slot size in bytes (rounded to 8).
        size: u64,
    },
    /// `dst = malloc(size)` — heap allocation through the runtime
    /// wrapper.
    Malloc {
        /// Destination (a pointer; 0 on failure).
        dst: VarId,
        /// Requested size in bytes.
        size: VarId,
    },
    /// `free(ptr)` through the runtime wrapper.
    Free {
        /// The pointer being freed.
        ptr: VarId,
    },
    /// Pointer arithmetic preserving provenance: `dst = base + offset`.
    Gep {
        /// Destination (a pointer with `base`'s provenance).
        dst: VarId,
        /// Base pointer.
        base: VarId,
        /// Byte offset operand.
        offset: VarId,
    },
    /// Pointer arithmetic with a constant offset.
    GepImm {
        /// Destination (a pointer).
        dst: VarId,
        /// Base pointer.
        base: VarId,
        /// Constant byte offset.
        imm: i64,
    },
    /// Direct call. Arguments are passed by value; pointer arguments
    /// carry their metadata per the active scheme's convention.
    Call {
        /// Receives the return value, if any.
        dst: Option<VarId>,
        /// Callee name.
        func: String,
        /// Argument values (at most 8).
        args: Vec<VarId>,
    },
    /// Write one byte to the captured output.
    PutChar {
        /// The byte value.
        src: VarId,
    },
    /// Write a decimal integer + newline to the captured output.
    PrintU64 {
        /// The value.
        src: VarId,
    },

    // ---- instrumentation pseudo-ops (inserted by `instrument`, not by
    //      front-ends; they lower to HWST128 instructions) ----
    /// Bind compressed spatial metadata: `SRF[ptr].lower = C(base,bound)`.
    BindSpatial {
        /// Pointer whose shadow entry is written.
        ptr: VarId,
        /// Base address value.
        base: VarId,
        /// Bound address value.
        bound: VarId,
    },
    /// Bind compressed temporal metadata: `SRF[ptr].upper = C(key,lock)`.
    BindTemporal {
        /// Pointer whose shadow entry is written.
        ptr: VarId,
        /// Key value.
        key: VarId,
        /// Lock address value.
        lock: VarId,
    },
    /// Store `SRF[ptr]` to the shadow of `container + offset`
    /// (`sbdl` + `sbdu`).
    MetaStore {
        /// The pointer whose metadata is stored.
        ptr: VarId,
        /// Container address.
        container: VarId,
        /// Constant byte offset.
        offset: i64,
    },
    /// Load the shadow of `container + offset` into `SRF[ptr]`
    /// (`lbdls` + `lbdus`).
    MetaLoad {
        /// The pointer receiving metadata.
        ptr: VarId,
        /// Container address.
        container: VarId,
        /// Constant byte offset.
        offset: i64,
    },
    /// Hardware temporal check of `SRF[ptr]` (`tchk`).
    Tchk {
        /// The checked pointer.
        ptr: VarId,
    },
    /// Software spatial-abort path: raises the spatial violation trap.
    AbortSpatial {
        /// Faulting address value.
        addr: VarId,
        /// Base value.
        base: VarId,
        /// Bound value.
        bound: VarId,
    },
    /// Software temporal-abort path: raises the temporal violation trap.
    AbortTemporal {
        /// Pointer key value.
        key: VarId,
        /// Lock address value.
        lock: VarId,
        /// Key found in memory.
        stored: VarId,
    },
    /// `malloc` that also surfaces the temporal grant: `dst = malloc(size)`
    /// with the fresh key in `key` and the lock address in `lock`
    /// (the instrumented allocator wrapper, §3.4).
    MallocMeta {
        /// Destination pointer.
        dst: VarId,
        /// Requested size.
        size: VarId,
        /// Receives the fresh key.
        key: VarId,
        /// Receives the lock address.
        lock: VarId,
    },
    /// `free(ptr)` with the lock to erase (`lock` may hold 0 = none).
    FreeMeta {
        /// The freed pointer.
        ptr: VarId,
        /// Lock address whose key is erased.
        lock: VarId,
    },
    /// Function-prologue lock acquisition for stack temporal safety
    /// (use-after-return): `key`/`lock` receive the frame's grant.
    FrameLock {
        /// Receives the frame key.
        key: VarId,
        /// Receives the frame lock address.
        lock: VarId,
    },
    /// Function-epilogue release of the frame lock.
    FrameUnlock {
        /// The frame lock address.
        lock: VarId,
    },
    /// Read a scalar local slot: `dst = locals[index]`. Never checked or
    /// instrumented (frame-direct access).
    LocalGet {
        /// Destination.
        dst: VarId,
        /// The local slot.
        index: LocalId,
    },
    /// Write a scalar local slot: `locals[index] = src`.
    LocalSet {
        /// Value stored.
        src: VarId,
        /// The local slot.
        index: LocalId,
    },
    /// Load one *decompressed* metadata field of the shadow of
    /// `container + offset` into a GPR (`lbas`/`lbnd`/`lkey`/`lloc`).
    MetaLoadField {
        /// Destination.
        dst: VarId,
        /// Container address.
        container: VarId,
        /// Constant byte offset.
        offset: i64,
        /// Which field.
        field: MetaField,
    },
}

/// Which metadata field a [`Inst::MetaLoadField`] extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MetaField {
    Base,
    Bound,
    Key,
    Lock,
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Return, optionally with a value.
    Ret {
        /// The returned value.
        value: Option<VarId>,
    },
    /// Conditional branch: `cond != 0` → `then_`, else `else_`.
    Br {
        /// Condition variable.
        cond: VarId,
        /// Taken target.
        then_: BlockId,
        /// Fall-through target.
        else_: BlockId,
    },
    /// Unconditional jump.
    Jmp(
        /// Target block.
        BlockId,
    ),
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions in order.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Symbol name (`main` is the entry point).
    pub name: String,
    /// Parameter variables, in ABI order (at most 8).
    pub params: Vec<VarId>,
    /// Which parameters are pointers (same length as `params`).
    pub param_is_ptr: Vec<bool>,
    /// Number of virtual registers used.
    pub num_vars: u32,
    /// Number of scalar local slots used.
    pub num_locals: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

/// A global data object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes (rounded to 8 at layout time).
    pub size: u64,
    /// Initial 64-bit words as `(byte_offset, value)`.
    pub init: Vec<(u64, u64)>,
}

/// A whole program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// Functions (must include `main`).
    pub funcs: Vec<Function>,
    /// Globals.
    pub globals: Vec<Global>,
}

impl Module {
    /// Looks a function up by name.
    pub fn func(&self, name: &str) -> Option<&Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total IR instruction count (diagnostics).
    pub fn inst_count(&self) -> usize {
        self.funcs
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.insts.len() + 1).sum::<usize>())
            .sum()
    }
}

impl Inst {
    /// The variable this instruction defines, if any.
    pub fn def(&self) -> Option<VarId> {
        match *self {
            Inst::Const { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::LoadPtr { dst, .. }
            | Inst::AddrOfGlobal { dst, .. }
            | Inst::StackAlloc { dst, .. }
            | Inst::Malloc { dst, .. }
            | Inst::Gep { dst, .. }
            | Inst::GepImm { dst, .. }
            | Inst::MallocMeta { dst, .. }
            | Inst::LocalGet { dst, .. }
            | Inst::MetaLoadField { dst, .. } => Some(dst),
            Inst::Call { dst, .. } => dst,
            _ => None,
        }
    }

    /// The variables this instruction reads.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Inst::Const { .. } => vec![],
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::BinImm { lhs, .. } => vec![*lhs],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { src, addr, .. } => vec![*src, *addr],
            Inst::LoadPtr { addr, .. } => vec![*addr],
            Inst::StorePtr { src, addr, .. } => vec![*src, *addr],
            Inst::AddrOfGlobal { .. } => vec![],
            Inst::StackAlloc { .. } => vec![],
            Inst::Malloc { size, .. } => vec![*size],
            Inst::Free { ptr } => vec![*ptr],
            Inst::Gep { base, offset, .. } => vec![*base, *offset],
            Inst::GepImm { base, .. } => vec![*base],
            Inst::Call { args, .. } => args.clone(),
            Inst::PutChar { src } | Inst::PrintU64 { src } => vec![*src],
            Inst::BindSpatial { ptr, base, bound } => {
                vec![*ptr, *base, *bound]
            }
            Inst::BindTemporal { ptr, key, lock } => vec![*ptr, *key, *lock],
            Inst::MetaStore { ptr, container, .. } => vec![*ptr, *container],
            Inst::MetaLoad { ptr, container, .. } => vec![*ptr, *container],
            Inst::Tchk { ptr } => vec![*ptr],
            Inst::AbortSpatial { addr, base, bound } => {
                vec![*addr, *base, *bound]
            }
            Inst::AbortTemporal { key, lock, stored } => {
                vec![*key, *lock, *stored]
            }
            Inst::MallocMeta { size, .. } => vec![*size],
            Inst::FreeMeta { ptr, lock } => vec![*ptr, *lock],
            Inst::FrameLock { .. } => vec![],
            Inst::FrameUnlock { lock } => vec![*lock],
            Inst::MetaLoadField { container, .. } => vec![*container],
            Inst::LocalGet { .. } => vec![],
            Inst::LocalSet { src, .. } => vec![*src],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_bookkeeping() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: VarId(2),
            lhs: VarId(0),
            rhs: VarId(1),
        };
        assert_eq!(i.def(), Some(VarId(2)));
        assert_eq!(i.uses(), vec![VarId(0), VarId(1)]);

        let s = Inst::Store {
            src: VarId(3),
            addr: VarId(4),
            offset: 8,
            width: Width::U64,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VarId(3), VarId(4)]);

        let c = Inst::Call {
            dst: None,
            func: "f".into(),
            args: vec![VarId(1)],
        };
        assert_eq!(c.def(), None);
        assert_eq!(c.uses(), vec![VarId(1)]);
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::U8.bytes(), 1);
        assert_eq!(Width::U64.bytes(), 8);
    }

    #[test]
    fn module_lookup() {
        let m = Module {
            funcs: vec![Function {
                name: "main".into(),
                params: vec![],
                param_is_ptr: vec![],
                num_vars: 0,
                num_locals: 0,
                blocks: vec![Block {
                    insts: vec![],
                    term: Terminator::Ret { value: None },
                }],
            }],
            globals: vec![],
        };
        assert!(m.func("main").is_some());
        assert!(m.func("missing").is_none());
        assert_eq!(m.inst_count(), 1);
    }
}
