//! # hwst-compiler
//!
//! The compiler substrate of the HWST128 reproduction. The paper
//! instruments C programs with an LLVM 8 pass derived from SoftBoundCETS;
//! here the same role is played by a small pointer-aware IR plus three
//! instrumentation passes and a RISC-V back-end:
//!
//! * [`ir`] — functions, basic blocks, virtual registers, explicit
//!   pointer provenance (`Malloc`, `StackAlloc`, `AddrOfGlobal`, `Gep`,
//!   `LoadPtr`/`StorePtr`),
//! * [`FuncBuilder`] / [`ModuleBuilder`] — ergonomic IR construction
//!   (what the workload kernels use),
//! * [`analysis`] — the pointer analysis: provenance inference and
//!   validation, deref-site enumeration,
//! * [`instrument`] — the three schemes of the paper's Fig. 4:
//!   [`Scheme::Sbcets`] (pure software checks), [`Scheme::Hwst128`]
//!   (hardware metadata, software key check) and
//!   [`Scheme::Hwst128Tchk`] (hardware `tchk` + keybuffer), plus
//!   [`Scheme::None`] as the uninstrumented baseline,
//! * a `-O0` back-end performing frame allocation and machine-code
//!   emission for RV64IM + HWST128 (see [`compile`]),
//! * [`opt`] — an optional light optimizer for the A5 ablation.
//!
//! ## Example
//!
//! ```
//! use hwst_compiler::{ModuleBuilder, Scheme, compile};
//! use hwst_sim::{Machine, SafetyConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = mb.func("main");
//! let n = f.konst(21);
//! let two = f.konst(2);
//! let r = f.bin(hwst_compiler::ir::BinOp::Mul, n, two);
//! f.ret(Some(r));
//! f.finish();
//! let module = mb.finish();
//!
//! let prog = compile(&module, Scheme::None)?;
//! let exit = Machine::new(prog, SafetyConfig::baseline()).run(10_000)?;
//! assert_eq!(exit.code, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod error;
pub mod instrument;
pub mod ir;
mod lower;
pub mod opt;
mod printer;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use error::CompileError;
pub use instrument::Scheme;

use hwst_isa::Program;

/// Instruments `module` for `scheme` and lowers it to machine code.
///
/// The entry point is the function named `main`; the emitted program
/// begins with a startup shim that calls `main` and passes its return
/// value to `exit`.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed IR (pointer-analysis
/// violations, unknown callees, missing `main`).
pub fn compile(module: &ir::Module, scheme: Scheme) -> Result<Program, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    lower::lower(&instrumented, scheme)
}

/// Compiles and also returns the static instruction count per function —
/// used by tests and the code-size diagnostics.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_sizes(
    module: &ir::Module,
    scheme: Scheme,
) -> Result<(Program, Vec<(String, usize)>), CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    lower::lower_with_sizes(&instrumented, scheme)
}
