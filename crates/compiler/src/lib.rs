//! # hwst-compiler
//!
//! The compiler substrate of the HWST128 reproduction. The paper
//! instruments C programs with an LLVM 8 pass derived from SoftBoundCETS;
//! here the same role is played by a small pointer-aware IR plus three
//! instrumentation passes and a RISC-V back-end:
//!
//! * [`ir`] — functions, basic blocks, virtual registers, explicit
//!   pointer provenance (`Malloc`, `StackAlloc`, `AddrOfGlobal`, `Gep`,
//!   `LoadPtr`/`StorePtr`),
//! * [`FuncBuilder`] / [`ModuleBuilder`] — ergonomic IR construction
//!   (what the workload kernels use),
//! * [`analysis`] — the pointer analysis: provenance inference and
//!   validation, deref-site enumeration,
//! * [`instrument`] — the three schemes of the paper's Fig. 4:
//!   [`Scheme::Sbcets`] (pure software checks), [`Scheme::Hwst128`]
//!   (hardware metadata, software key check) and
//!   [`Scheme::Hwst128Tchk`] (hardware `tchk` + keybuffer), plus
//!   [`Scheme::None`] as the uninstrumented baseline,
//! * a `-O0` back-end performing frame allocation and machine-code
//!   emission for RV64IM + HWST128 (see [`compile`]),
//! * [`opt`] — an optional light optimizer for the A5 ablation.
//!
//! ## Example
//!
//! ```
//! use hwst_compiler::{ModuleBuilder, Scheme, compile};
//! use hwst_sim::{Machine, SafetyConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = mb.func("main");
//! let n = f.konst(21);
//! let two = f.konst(2);
//! let r = f.bin(hwst_compiler::ir::BinOp::Mul, n, two);
//! f.ret(Some(r));
//! f.finish();
//! let module = mb.finish();
//!
//! let prog = compile(&module, Scheme::None)?;
//! let exit = Machine::new(prog, SafetyConfig::baseline()).run(10_000)?;
//! assert_eq!(exit.code, 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod binval;
pub mod bounds;
mod builder;
pub mod dataflow;
mod error;
pub mod instrument;
pub mod ir;
pub mod lint;
mod lower;
pub mod opt;
mod printer;
pub mod rce;
pub mod regalloc;
pub mod verify;

pub use builder::{FuncBuilder, ModuleBuilder};
pub use error::CompileError;
pub use instrument::Scheme;
pub use lower::{
    lower_opt, lower_with_plan, lower_with_plan_opt, CheckSite, FnPlan, LowerPlan, OptLevel,
};
pub use printer::function_with_cfg;

use hwst_isa::Program;

/// Instruments `module` for `scheme` and lowers it to machine code.
///
/// The entry point is the function named `main`; the emitted program
/// begins with a startup shim that calls `main` and passes its return
/// value to `exit`.
///
/// # Errors
///
/// Returns a [`CompileError`] for malformed IR (pointer-analysis
/// violations, unknown callees, missing `main`).
pub fn compile(module: &ir::Module, scheme: Scheme) -> Result<Program, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    lower::lower(&instrumented, scheme)
}

/// Compiles and also returns the static instruction count per function —
/// used by tests and the code-size diagnostics.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_sizes(
    module: &ir::Module,
    scheme: Scheme,
) -> Result<(Program, Vec<(String, usize)>), CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    lower::lower_with_sizes(&instrumented, scheme)
}

/// Compiles and also returns the [`LowerPlan`] side-tables — function
/// symbol ranges (`start_pc`/`end_pc`), frame geometry and check sites.
/// This is what the telemetry profiler and the binary validator consume.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_with_plan(
    module: &ir::Module,
    scheme: Scheme,
) -> Result<(Program, LowerPlan), CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    lower::lower_with_plan(&instrumented, scheme)
}

/// Pass configuration for [`compile_with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Instrumentation scheme.
    pub scheme: Scheme,
    /// Run redundant-check elimination ([`rce`]) on the instrumented
    /// IR.
    pub rce: bool,
    /// Run the metadata-completeness verifier ([`verify`]) on the final
    /// instrumented IR (after RCE, when enabled).
    pub verify: bool,
    /// Run the static bounds-proof pass ([`bounds`]) on the source IR
    /// and skip every check it proves unnecessary, emitting one proof
    /// witness per skip.
    pub bounds: bool,
    /// Back-end optimization level ([`OptLevel`]): `O0` is the paper's
    /// frame-slot lowering, `O1` adds linear-scan register allocation,
    /// frame-slot load/store elimination and metadata-op scheduling.
    pub opt: OptLevel,
}

impl CompileOptions {
    /// Plain compilation for `scheme` — exactly what [`compile`] does.
    pub const fn new(scheme: Scheme) -> Self {
        CompileOptions {
            scheme,
            rce: false,
            verify: false,
            bounds: false,
            opt: OptLevel::O0,
        }
    }

    /// Enables redundant-check elimination.
    pub const fn with_rce(mut self) -> Self {
        self.rce = true;
        self
    }

    /// Enables the completeness verifier.
    pub const fn with_verify(mut self) -> Self {
        self.verify = true;
        self
    }

    /// Enables the static bounds-proof check elimination.
    pub const fn with_bounds(mut self) -> Self {
        self.bounds = true;
        self
    }

    /// Selects the back-end optimization level.
    pub const fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }
}

/// The result of [`compile_with_options`].
#[derive(Debug)]
pub struct Compiled {
    /// The lowered program.
    pub program: Program,
    /// Check-elimination counters (all zero when RCE was off).
    pub rce: rce::RceStats,
    /// Static check sites remaining in the final instrumented IR
    /// ([`rce::static_check_count`]).
    pub check_count: usize,
    /// Bounds-proof counters (all zero when the pass was off).
    pub bounds: bounds::BoundsStats,
    /// One proof witness per site the bounds pass proved in-bounds
    /// (empty when the pass was off). Indexed by
    /// [`instrument::SkippedCheck::witness`].
    pub witnesses: Vec<bounds::Witness>,
    /// The checks the instrumenter actually skipped, each justified by
    /// a witness.
    pub skips: Vec<instrument::SkippedCheck>,
}

/// [`compile`] with the optional static-analysis passes: the bounds-
/// proof check eliminator, redundant-check elimination and the
/// metadata-completeness verifier.
///
/// Pass order: `bounds` analyzes the *source* IR and the instrumenter
/// skips every proven check as it inserts the rest; `rce` then removes
/// dominated duplicates among the surviving checks; `verify` finally
/// re-checks completeness, accepting a missing check only where a skip
/// carries an arithmetically valid witness
/// ([`verify::verify_with`]).
///
/// # Errors
///
/// Same as [`compile`], plus [`CompileError::UncoveredDeref`] /
/// [`CompileError::InvalidWitness`] when verification is enabled and
/// fails.
pub fn compile_with_options(
    module: &ir::Module,
    opts: CompileOptions,
) -> Result<Compiled, CompileError> {
    let info = analysis::analyze(module)?;
    let (outcome, bounds_stats) = if opts.bounds {
        let o = bounds::analyze(module);
        let s = o.stats;
        (Some(o), s)
    } else {
        (None, bounds::BoundsStats::default())
    };
    let (mut instrumented, skips) =
        instrument::instrument_with_bounds(module, &info, opts.scheme, outcome.as_ref());
    let stats = if opts.rce {
        rce::eliminate(&mut instrumented)
    } else {
        rce::RceStats::default()
    };
    let witnesses = outcome.map(|o| o.witnesses).unwrap_or_default();
    if opts.verify {
        verify::verify_with(&instrumented, opts.scheme, &skips, &witnesses)?;
    }
    let check_count = rce::static_check_count(&instrumented);
    let program = lower::lower_opt(&instrumented, opts.scheme, opts.opt)?;
    Ok(Compiled {
        program,
        rce: stats,
        check_count,
        bounds: bounds_stats,
        witnesses,
        skips,
    })
}
