//! `hwst-lint`: static memory-safety diagnostics over
//! pre-instrumentation IR.
//!
//! Where the instrumentation schemes detect violations *dynamically*,
//! this pass reports the ones that are provable *statically*, as
//! structured diagnostics carrying the matching CWE identifier:
//!
//! | check | CWE |
//! |---|---|
//! | const-offset overflow write (stack) | 121 |
//! | const-offset overflow write (heap/global) | 122 |
//! | const-offset underwrite | 124 |
//! | const-offset over-read | 126 |
//! | const-offset under-read | 127 |
//! | double free (dominated by a free of the same region) | 415 |
//! | use after free (deref dominated by a free) | 416 |
//! | deref of a guaranteed-NULL allocation | 476 |
//! | free of an interior pointer | 761 |
//! | returning a pointer to the function's own stack | 562 |
//!
//! Every check is *must*-style and value-precise: offsets resolve
//! through constant pointer arithmetic only ([`DefMap`]), region sizes
//! come from `StackAlloc`/`AddrOfGlobal`/constant-size `Malloc`, and
//! the temporal checks use an intersection dataflow ("freed on every
//! path"). Anything laundered through memory, non-constant arithmetic
//! or a call boundary resolves to an unknown root and stays silent —
//! the linter never reports a diagnostic for code that could be
//! correct, so benign programs produce none (tested against the Juliet
//! suite's benign twins in `hwst-juliet`).

use crate::dataflow::{solve_forward, Cfg, DefMap, ForwardAnalysis};
use crate::ir::{Function, Inst, Module, Terminator, VarId};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// How certain the linter is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Guaranteed misbehaviour if the code executes.
    Error,
    /// Suspect construction that is almost always a bug.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Function containing the finding.
    pub func: String,
    /// Block index.
    pub block: usize,
    /// Instruction index within the block (`insts.len()` marks the
    /// terminator).
    pub inst: usize,
    /// Certainty.
    pub severity: Severity,
    /// The matching CWE identifier (e.g. `416` for use-after-free).
    pub cwe: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: CWE-{} in {} at b{}/{}: {}",
            self.severity, self.cwe, self.func, self.block, self.inst, self.message
        )
    }
}

/// What the linter knows about a pointer root.
#[derive(Debug, Clone, Copy)]
enum Region {
    Stack(u64),
    Heap(u64),
    Global(u64),
    /// Allocation so large the wrapper is guaranteed to return NULL.
    Null,
}

/// Allocations above this size cannot succeed in the simulated address
/// space; the wrapper returns NULL bound to the empty region.
const NULL_ALLOC_THRESHOLD: i64 = 1 << 32;

/// Lints a whole module.
pub fn lint(module: &Module) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &module.funcs {
        lint_func(f, module, &mut out);
    }
    out
}

/// The "freed on every path" set of region roots.
struct FreedRoots<'a> {
    defs: &'a DefMap,
}

impl ForwardAnalysis for FreedRoots<'_> {
    type Fact = BTreeSet<VarId>;

    fn entry_fact(&self) -> Self::Fact {
        BTreeSet::new()
    }

    fn meet(&self, into: &mut Self::Fact, other: &Self::Fact) {
        into.retain(|v| other.contains(v));
    }

    fn transfer(&self, inst: &Inst, fact: &mut Self::Fact) {
        match inst {
            Inst::Free { ptr } | Inst::FreeMeta { ptr, .. } => {
                fact.insert(self.defs.temporal_root(*ptr));
            }
            _ => {}
        }
    }
}

fn lint_func(f: &Function, module: &Module, out: &mut Vec<Diagnostic>) {
    let Some(defs) = DefMap::build(f) else {
        return; // register-reusing IR: out of scope
    };

    // Region table: every root with a statically known extent.
    let mut regions: HashMap<VarId, Region> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            match *i {
                Inst::StackAlloc { dst, size } => {
                    regions.insert(dst, Region::Stack(size));
                }
                Inst::AddrOfGlobal { dst, global } => {
                    if let Some(g) = module.globals.get(global.0 as usize) {
                        regions.insert(dst, Region::Global(g.size));
                    }
                }
                Inst::Malloc { dst, size } | Inst::MallocMeta { dst, size, .. } => {
                    if let Some(n) = defs.const_val(size) {
                        let r = if n >= NULL_ALLOC_THRESHOLD {
                            Region::Null
                        } else {
                            Region::Heap(n.max(0) as u64)
                        };
                        regions.insert(dst, r);
                    }
                }
                _ => {}
            }
        }
    }

    let cfg = Cfg::new(f);
    let freed = solve_forward(f, &cfg, &FreedRoots { defs: &defs });

    let mut push = |block: usize, inst: usize, severity: Severity, cwe: u32, message: String| {
        out.push(Diagnostic {
            func: f.name.clone(),
            block,
            inst,
            severity,
            cwe,
            message,
        });
    };

    for (b, block) in f.blocks.iter().enumerate() {
        let Some(mut freed_here) = freed[b].clone() else {
            continue; // unreachable
        };
        for (idx, inst) in block.insts.iter().enumerate() {
            // Dereference checks.
            let access = match *inst {
                Inst::Load {
                    addr,
                    offset,
                    width,
                    ..
                } => Some((addr, offset, width.bytes() as i64, false)),
                Inst::Store {
                    addr,
                    offset,
                    width,
                    ..
                } => Some((addr, offset, width.bytes() as i64, true)),
                Inst::LoadPtr { addr, offset, .. } => Some((addr, offset, 8, false)),
                Inst::StorePtr { addr, offset, .. } => Some((addr, offset, 8, true)),
                _ => None,
            };
            if let Some((addr, offset, size, is_write)) = access {
                let (root, delta) = defs.spatial_anchor(addr);
                let lo = delta.wrapping_add(offset);
                let hi = lo.wrapping_add(size);
                match regions.get(&root) {
                    Some(Region::Null) => push(
                        b,
                        idx,
                        Severity::Error,
                        476,
                        format!(
                            "dereference of {root}: the allocation is too large to \
                             succeed, so the pointer is guaranteed NULL"
                        ),
                    ),
                    Some(&Region::Stack(n)) | Some(&Region::Heap(n)) | Some(&Region::Global(n)) => {
                        let region = regions[&root];
                        if lo < 0 {
                            let (cwe, what) = if is_write {
                                (124, "underwrite")
                            } else {
                                (127, "under-read")
                            };
                            push(
                                b,
                                idx,
                                Severity::Error,
                                cwe,
                                format!(
                                    "{size}-byte {what} at byte {lo} of the \
                                     {n}-byte region rooted at {root}"
                                ),
                            );
                        } else if hi > n as i64 {
                            let (cwe, what) = match (is_write, region) {
                                (true, Region::Stack(_)) => (121, "overflow write"),
                                (true, _) => (122, "overflow write"),
                                (false, _) => (126, "over-read"),
                            };
                            push(
                                b,
                                idx,
                                Severity::Error,
                                cwe,
                                format!(
                                    "{size}-byte {what} at bytes {lo}..{hi} of the \
                                     {n}-byte region rooted at {root}"
                                ),
                            );
                        }
                    }
                    None => {}
                }
                if freed_here.contains(&defs.temporal_root(addr)) {
                    push(
                        b,
                        idx,
                        Severity::Error,
                        416,
                        format!(
                            "dereference of {addr}: its region is freed on every \
                             path reaching this point"
                        ),
                    );
                }
            }
            // Free-site checks.
            if let Inst::Free { ptr } = *inst {
                let root = defs.temporal_root(ptr);
                if freed_here.contains(&root) {
                    push(
                        b,
                        idx,
                        Severity::Error,
                        415,
                        format!("double free of {root}: already freed on every path"),
                    );
                }
                let (_, delta) = defs.spatial_anchor(ptr);
                if delta != 0 {
                    push(
                        b,
                        idx,
                        Severity::Error,
                        761,
                        format!("free of interior pointer {ptr} ({delta} bytes into its region)"),
                    );
                }
            }
            // Keep the running freed-set in sync for later insts.
            FreedRoots { defs: &defs }.transfer(inst, &mut freed_here);
        }
        // Terminator check: returning a pointer into the own frame.
        if let Terminator::Ret { value: Some(v) } = block.term {
            let root = defs.temporal_root(v);
            if matches!(defs.def(root), Some(Inst::StackAlloc { .. })) {
                push(
                    b,
                    block.insts.len(),
                    Severity::Warning,
                    562,
                    format!("returning {v}, a pointer into this function's own stack frame"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Width;
    use crate::ModuleBuilder;

    fn cwes(module: &Module) -> Vec<u32> {
        lint(module).iter().map(|d| d.cwe).collect()
    }

    #[test]
    fn const_offset_overflows_by_region() {
        // Stack overflow write.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.stack_alloc(16);
        let v = f.konst(1);
        f.store(v, p, 16, Width::U8);
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![121]);

        // Heap overflow write through a gep chain, and over-read.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(32);
        let q = f.gep_imm(p, 24);
        let v = f.konst(1);
        f.store(v, q, 1, Width::U64); // bytes 25..33 of 32
        let _ = f.load(q, 8, Width::U8); // byte 32
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![122, 126]);

        // Underwrite / under-read.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(32);
        let v = f.konst(1);
        f.store(v, p, -4, Width::U32);
        let _ = f.load(p, -1, Width::U8);
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![124, 127]);

        // Global overflow, via the known global size.
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 8);
        let mut f = mb.func("main");
        let p = f.addr_of_global(g);
        let v = f.konst(1);
        f.store(v, p, 8, Width::U8);
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![122]);
    }

    #[test]
    fn in_bounds_accesses_are_silent() {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 8);
        let mut f = mb.func("main");
        let p = f.malloc_bytes(32);
        let s = f.stack_alloc(16);
        let ga = f.addr_of_global(g);
        let v = f.konst(1);
        f.store(v, p, 24, Width::U64); // bytes 24..32: last slot
        f.store(v, s, 15, Width::U8);
        f.store(v, ga, 0, Width::U64);
        let q = f.gep_imm(p, 31);
        let _ = f.load(q, 0, Width::U8);
        f.free(p);
        f.ret(None);
        f.finish();
        assert!(cwes(&mb.finish()).is_empty());
    }

    #[test]
    fn temporal_lints_fire_only_when_dominated() {
        // Use-after-free + double free, straight line.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        f.free(p);
        let _ = f.load(p, 0, Width::U64);
        f.free(p);
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![416, 415]);

        // Freed on one arm only: the post-join deref must stay silent.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        let c = f.konst(0);
        let then_b = f.new_block();
        let join = f.new_block();
        f.br(c, then_b, join);
        f.switch_to(then_b);
        f.free(p);
        f.jmp(join);
        f.switch_to(join);
        let _ = f.load(p, 0, Width::U64);
        f.ret(None);
        f.finish();
        assert!(cwes(&mb.finish()).is_empty());
    }

    #[test]
    fn interior_free_and_null_deref() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        let q = f.gep_imm(p, 8);
        f.free(q);
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![761]);

        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let huge = f.konst(1 << 40);
        let p = f.malloc(huge);
        let v = f.konst(1);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        assert_eq!(cwes(&mb.finish()), vec![476]);
    }

    #[test]
    fn stack_pointer_return_is_a_warning() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("escape");
        let s = f.stack_alloc(16);
        f.ret(Some(s));
        f.finish();
        let mut f = mb.func("main");
        let _ = f.call("escape", &[]);
        f.ret(None);
        f.finish();
        let diags = lint(&mb.finish());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].cwe, 562);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].func, "escape");
    }

    #[test]
    fn laundered_flows_stay_silent() {
        // Value round-trip through memory strips the root: no OOB or
        // temporal diagnostic may fire, mirroring the dynamic schemes.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(16);
        let cell = f.malloc_bytes(8);
        f.store(p, cell, 0, Width::U64);
        let raw = f.load(cell, 0, Width::U64);
        f.store(raw, cell, 0, Width::U64);
        let q = f.load_ptr(cell, 0);
        f.free(p);
        let _ = f.load(q, 64, Width::U64); // OOB + UAF, but laundered
        f.ret(None);
        f.finish();
        assert!(cwes(&mb.finish()).is_empty());
    }
}
