//! Metadata-completeness verifier for instrumented IR.
//!
//! Replays the same available-checks dataflow the redundant-check
//! eliminator uses ([`crate::rce`]) and demands that at every
//! dereference the checks the active [`Scheme`] promises are available:
//!
//! * [`Scheme::Hwst128Tchk`] — a [`Inst::Tchk`] fact for the access's
//!   SRF root (exact),
//! * [`Scheme::Sbcets`] — a `__sbcets_spatial_check` fact matching the
//!   access's `(root, offset, size)` exactly, plus a temporal-check
//!   fact,
//! * [`Scheme::Hwst128`] — an inline temporal-pattern fact (spatial
//!   safety is carried by the hardware's bounded accesses, so there is
//!   nothing spatial to verify in the IR),
//! * [`Scheme::None`] / [`Scheme::Shore`] — no promised IR checks;
//!   trivially complete.
//!
//! Because this runs *after* RCE, it is an end-to-end soundness gate:
//! if elimination ever deleted a check that some path still needs, the
//! fact is absent at the dereference and verification fails with
//! [`CompileError::UncoveredDeref`].
//!
//! ## Precision notes
//!
//! The temporal facts for the software schemes name the `(key, lock)`
//! value pair, not the pointer; the verifier accepts any available
//! temporal fact for those schemes (associating companions with
//! pointers is the instrumenter's private bookkeeping). The
//! `Hwst128Tchk` contract — the hardware scheme the paper centres on —
//! is verified exactly per-pointer. Infrastructure accesses are exempt:
//! metadata-shuttle globals (`__meta_args`, `__meta_tmp`,
//! `__hwst_scratch`), the runtime helper bodies (`__sbcets_*`), the
//! lock-word load inside a recognised inline temporal pattern, and
//! unreachable blocks (no fact, no runtime behaviour). Functions that
//! are not single-assignment are skipped, matching the eliminator's
//! bail-out.

use crate::instrument::{Scheme, META_ARGS_GLOBAL, META_TMP_GLOBAL, SCRATCH_GLOBAL};
use crate::ir::{Function, Inst, Module, VarId};
use crate::rce::{available_checks, transfer_check, CheckFact, FactSet};
use crate::CompileError;
use std::collections::HashSet;

/// Checks every dereference of `module` against `scheme`'s contract.
///
/// # Errors
///
/// [`CompileError::UncoveredDeref`] naming the first uncovered access.
pub fn verify(module: &Module, scheme: Scheme) -> Result<(), CompileError> {
    if matches!(scheme, Scheme::None | Scheme::Shore) {
        return Ok(());
    }
    let exempt_globals: HashSet<u32> = module
        .globals
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            g.name == META_ARGS_GLOBAL || g.name == META_TMP_GLOBAL || g.name == SCRATCH_GLOBAL
        })
        .map(|(i, _)| i as u32)
        .collect();
    for f in &module.funcs {
        if f.name.starts_with("__sbcets_") {
            continue; // runtime helper bodies implement the checks
        }
        verify_func(f, scheme, &exempt_globals)?;
    }
    Ok(())
}

fn verify_func(
    f: &Function,
    scheme: Scheme,
    exempt_globals: &HashSet<u32>,
) -> Result<(), CompileError> {
    let Some((defs, patterns, facts)) = available_checks(f) else {
        return Ok(()); // not single-assignment: out of scope (see docs)
    };
    let pattern_check_blocks: HashSet<usize> = patterns.values().map(|p| p.check_block).collect();

    let exempt_root = |v: VarId| -> bool {
        matches!(
            defs.def(defs.temporal_root(v)),
            Some(Inst::AddrOfGlobal { global, .. }) if exempt_globals.contains(&global.0)
        )
    };

    for (b, block) in f.blocks.iter().enumerate() {
        let Some(mut fact) = facts[b].clone() else {
            continue; // unreachable: never executes
        };
        let in_pattern_check = pattern_check_blocks.contains(&b);
        for (idx, inst) in block.insts.iter().enumerate() {
            let access = match *inst {
                Inst::Load {
                    addr,
                    offset,
                    width,
                    ..
                } => Some((addr, offset, width.bytes() as i64)),
                Inst::Store {
                    addr,
                    offset,
                    width,
                    ..
                } => Some((addr, offset, width.bytes() as i64)),
                Inst::LoadPtr { addr, offset, .. } | Inst::StorePtr { addr, offset, .. } => {
                    Some((addr, offset, 8))
                }
                _ => None,
            };
            if let Some((addr, offset, size)) = access {
                let exempt = exempt_root(addr) || (in_pattern_check && idx == 0);
                if !exempt && !covered(scheme, &defs, &fact, addr, offset, size) {
                    return Err(CompileError::UncoveredDeref {
                        func: f.name.clone(),
                        block: b,
                        inst: idx,
                        scheme: scheme.label(),
                    });
                }
            }
            transfer_check(&defs, inst, &mut fact);
        }
    }
    Ok(())
}

fn covered(
    scheme: Scheme,
    defs: &crate::dataflow::DefMap,
    fact: &FactSet,
    addr: VarId,
    offset: i64,
    size: i64,
) -> bool {
    match scheme {
        Scheme::Hwst128Tchk => fact.contains(&CheckFact::Tchk(defs.temporal_root(addr))),
        Scheme::Hwst128 => fact
            .iter()
            .any(|f| matches!(f, CheckFact::SbTemporal { .. })),
        Scheme::Sbcets => {
            let (root, delta) = defs.spatial_anchor(addr);
            let want = delta.wrapping_add(offset);
            let spatial = fact.iter().any(|f| {
                matches!(
                    f,
                    CheckFact::SbSpatial {
                        root: r,
                        delta: d,
                        size: s,
                        ..
                    } if *r == root && *d == want && *s == size
                )
            });
            let temporal = fact
                .iter()
                .any(|f| matches!(f, CheckFact::SbTemporal { .. }));
            spatial && temporal
        }
        Scheme::None | Scheme::Shore => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::instrument::instrument;
    use crate::ir::{Terminator, Width};
    use crate::ModuleBuilder;

    fn sample_modules() -> Vec<Module> {
        let mut out = Vec::new();

        // Straight-line heap traffic with a free.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        let _ = f.load(p, 8, Width::U32);
        f.free(p);
        f.ret(None);
        f.finish();
        out.push(mb.finish());

        // Stack + global + cross-function pointer traffic.
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 32);
        let mut f = mb.func("sink");
        let q = f.param(true);
        let v = f.konst(1);
        f.store(v, q, 0, Width::U8);
        f.ret(None);
        f.finish();
        let mut f = mb.func("main");
        let s = f.stack_alloc(16);
        let ga = f.addr_of_global(g);
        let v = f.konst(3);
        f.store(v, s, 8, Width::U64);
        f.store(v, ga, 0, Width::U64);
        f.call_void("sink", &[s]);
        let cell = f.malloc_bytes(8);
        f.store_ptr(s, cell, 0);
        let r = f.load_ptr(cell, 0);
        let _ = f.load(r, 0, Width::U8);
        f.ret(None);
        f.finish();
        out.push(mb.finish());

        out
    }

    #[test]
    fn instrumented_modules_verify_under_every_scheme() {
        for m in sample_modules() {
            let info = analyze(&m).unwrap();
            for scheme in Scheme::ALL {
                let out = instrument(&m, &info, scheme);
                verify(&out, scheme).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            }
        }
    }

    #[test]
    fn rce_output_still_verifies() {
        for m in sample_modules() {
            let info = analyze(&m).unwrap();
            for scheme in Scheme::ALL {
                let mut out = instrument(&m, &info, scheme);
                crate::rce::eliminate(&mut out);
                verify(&out, scheme).unwrap_or_else(|e| panic!("{scheme:?} post-RCE: {e}"));
            }
        }
    }

    #[test]
    fn deleting_a_needed_check_is_caught() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let info = analyze(&m).unwrap();
        let mut out = instrument(&m, &info, Scheme::Hwst128Tchk);
        // Hand-break the module: drop every tchk.
        for func in &mut out.funcs {
            for b in &mut func.blocks {
                b.insts.retain(|i| !matches!(i, Inst::Tchk { .. }));
            }
        }
        let err = verify(&out, Scheme::Hwst128Tchk).unwrap_err();
        assert!(matches!(err, CompileError::UncoveredDeref { .. }), "{err}");
    }

    #[test]
    fn unreachable_derefs_are_ignored() {
        // A dead block dereferencing without checks must not fail the
        // verifier: it cannot execute.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(8);
        let v = f.konst(1);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let info = analyze(&m).unwrap();
        let mut out = instrument(&m, &info, Scheme::Hwst128Tchk);
        // Append an unreachable block with a raw deref.
        let main = out.funcs.iter_mut().find(|f| f.name == "main").unwrap();
        let addr = main.params.first().copied().unwrap_or(VarId(0));
        main.blocks.push(crate::ir::Block {
            insts: vec![Inst::Load {
                dst: VarId(999),
                addr,
                offset: 0,
                width: Width::U64,
            }],
            term: Terminator::Ret { value: None },
        });
        main.num_vars = main.num_vars.max(1000);
        verify(&out, Scheme::Hwst128Tchk).unwrap();
    }
}
