//! Metadata-completeness verifier for instrumented IR.
//!
//! Replays the same available-checks dataflow the redundant-check
//! eliminator uses ([`crate::rce`]) and demands that at every
//! dereference the checks the active [`Scheme`] promises are available:
//!
//! * [`Scheme::Hwst128Tchk`] — a [`Inst::Tchk`] fact for the access's
//!   SRF root (exact),
//! * [`Scheme::Sbcets`] — a `__sbcets_spatial_check` fact matching the
//!   access's `(root, offset, size)` exactly, plus a temporal-check
//!   fact,
//! * [`Scheme::Hwst128`] — an inline temporal-pattern fact (spatial
//!   safety is carried by the hardware's bounded accesses, so there is
//!   nothing spatial to verify in the IR),
//! * [`Scheme::None`] / [`Scheme::Shore`] — no promised IR checks;
//!   trivially complete.
//!
//! Because this runs *after* RCE, it is an end-to-end soundness gate:
//! if elimination ever deleted a check that some path still needs, the
//! fact is absent at the dereference and verification fails with
//! [`CompileError::UncoveredDeref`].
//!
//! ## Precision notes
//!
//! The temporal facts for the software schemes name the `(key, lock)`
//! value pair, not the pointer; the verifier accepts any available
//! temporal fact for those schemes (associating companions with
//! pointers is the instrumenter's private bookkeeping). The
//! `Hwst128Tchk` contract — the hardware scheme the paper centres on —
//! is verified exactly per-pointer. Infrastructure accesses are exempt:
//! metadata-shuttle globals (`__meta_args`, `__meta_tmp`,
//! `__hwst_scratch`), the runtime helper bodies (`__sbcets_*`), the
//! lock-word load inside a recognised inline temporal pattern, and
//! unreachable blocks (no fact, no runtime behaviour). Functions that
//! are not single-assignment are skipped, matching the eliminator's
//! bail-out.

use crate::bounds::Witness;
use crate::instrument::{Scheme, SkippedCheck, META_ARGS_GLOBAL, META_TMP_GLOBAL, SCRATCH_GLOBAL};
use crate::ir::{Function, Inst, Module, VarId};
use crate::rce::{available_checks, transfer_check, CheckFact, FactSet};
use crate::CompileError;
use std::collections::{HashMap, HashSet};

/// Checks every dereference of `module` against `scheme`'s contract.
///
/// # Errors
///
/// [`CompileError::UncoveredDeref`] naming the first uncovered access.
pub fn verify(module: &Module, scheme: Scheme) -> Result<(), CompileError> {
    verify_with(module, scheme, &[], &[])
}

/// [`verify`] for a module whose instrumenter skipped checks under
/// bounds-proof witnesses: each skip is first re-validated (the witness
/// must exist, its interval must arithmetically fit the object, heap
/// witnesses are only admissible under the hardware schemes, and the
/// exempted site must actually be a dereference), then the named sites
/// are exempted from the coverage demand. The verifier deliberately
/// re-derives the arithmetic instead of trusting the bounds pass — a
/// forged or stale witness fails here even if instrumentation already
/// happened.
///
/// # Errors
///
/// [`CompileError::InvalidWitness`] for a skip that fails
/// re-validation, [`CompileError::UncoveredDeref`] for an uncovered
/// non-exempt access.
pub fn verify_with(
    module: &Module,
    scheme: Scheme,
    skips: &[SkippedCheck],
    witnesses: &[Witness],
) -> Result<(), CompileError> {
    if matches!(scheme, Scheme::None | Scheme::Shore) {
        return Ok(());
    }
    let mut exempt_sites: HashMap<&str, HashSet<(usize, usize)>> = HashMap::new();
    for s in skips {
        let fail = |reason: &'static str| {
            Err(CompileError::InvalidWitness {
                func: s.func.clone(),
                block: s.block,
                inst: s.deref,
                reason,
            })
        };
        let Some(w) = witnesses.get(s.witness) else {
            return fail("witness index out of range");
        };
        if !w.arithmetic_ok() {
            return fail("claimed interval does not fit the object");
        }
        if w.heap() && !scheme.uses_hardware() {
            return fail("heap witness under a software-spatial scheme");
        }
        let Some(f) = module.funcs.iter().find(|f| f.name == s.func) else {
            return fail("unknown function");
        };
        // Resolve the deref ordinal to the current instruction index
        // (checks may have been eliminated since the skip was recorded,
        // but dereferences are never removed).
        let Some(block) = f.blocks.get(s.block) else {
            return fail("exempted block does not exist");
        };
        let Some(idx) = block
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| crate::instrument::is_deref(i))
            .map(|(idx, _)| idx)
            .nth(s.deref)
        else {
            return fail("exempted site is not a dereference");
        };
        exempt_sites
            .entry(&f.name)
            .or_default()
            .insert((s.block, idx));
    }
    let exempt_globals: HashSet<u32> = module
        .globals
        .iter()
        .enumerate()
        .filter(|(_, g)| {
            g.name == META_ARGS_GLOBAL || g.name == META_TMP_GLOBAL || g.name == SCRATCH_GLOBAL
        })
        .map(|(i, _)| i as u32)
        .collect();
    for f in &module.funcs {
        if f.name.starts_with("__sbcets_") {
            continue; // runtime helper bodies implement the checks
        }
        verify_func(
            f,
            scheme,
            &exempt_globals,
            exempt_sites.get(f.name.as_str()),
        )?;
    }
    Ok(())
}

fn verify_func(
    f: &Function,
    scheme: Scheme,
    exempt_globals: &HashSet<u32>,
    exempt_sites: Option<&HashSet<(usize, usize)>>,
) -> Result<(), CompileError> {
    let Some((defs, patterns, facts)) = available_checks(f) else {
        return Ok(()); // not single-assignment: out of scope (see docs)
    };
    let pattern_check_blocks: HashSet<usize> = patterns.values().map(|p| p.check_block).collect();

    let exempt_root = |v: VarId| -> bool {
        matches!(
            defs.def(defs.temporal_root(v)),
            Some(Inst::AddrOfGlobal { global, .. }) if exempt_globals.contains(&global.0)
        )
    };

    for (b, block) in f.blocks.iter().enumerate() {
        let Some(mut fact) = facts[b].clone() else {
            continue; // unreachable: never executes
        };
        let in_pattern_check = pattern_check_blocks.contains(&b);
        for (idx, inst) in block.insts.iter().enumerate() {
            let access = match *inst {
                Inst::Load {
                    addr,
                    offset,
                    width,
                    ..
                } => Some((addr, offset, width.bytes() as i64)),
                Inst::Store {
                    addr,
                    offset,
                    width,
                    ..
                } => Some((addr, offset, width.bytes() as i64)),
                Inst::LoadPtr { addr, offset, .. } | Inst::StorePtr { addr, offset, .. } => {
                    Some((addr, offset, 8))
                }
                _ => None,
            };
            if let Some((addr, offset, size)) = access {
                let exempt = exempt_root(addr)
                    || (in_pattern_check && idx == 0)
                    || exempt_sites.is_some_and(|s| s.contains(&(b, idx)));
                if !exempt && !covered(scheme, &defs, &fact, addr, offset, size) {
                    return Err(CompileError::UncoveredDeref {
                        func: f.name.clone(),
                        block: b,
                        inst: idx,
                        scheme: scheme.label(),
                    });
                }
            }
            transfer_check(&defs, inst, &mut fact);
        }
    }
    Ok(())
}

fn covered(
    scheme: Scheme,
    defs: &crate::dataflow::DefMap,
    fact: &FactSet,
    addr: VarId,
    offset: i64,
    size: i64,
) -> bool {
    match scheme {
        // The zoo's tag-checking designs (RV-CURE, HeapSafe) reuse the
        // `tchk` contract: every dereference must carry a tchk fact.
        // HeapSafe's stack/global checks pass vacuously at runtime, but
        // the instruction is still emitted, so the demand is identical.
        Scheme::Hwst128Tchk | Scheme::RvCure | Scheme::HeapSafe => {
            fact.contains(&CheckFact::Tchk(defs.temporal_root(addr)))
        }
        // The inline-software zoo designs promise the same recognised
        // inline temporal pattern as HWST128; L4 Pointer's inline
        // spatial guards are never touched by RCE (no fact models
        // them), so the temporal fact is the verifiable IR contract.
        Scheme::Hwst128 | Scheme::L4Pointer | Scheme::CryptSan => fact
            .iter()
            .any(|f| matches!(f, CheckFact::SbTemporal { .. })),
        Scheme::Sbcets => {
            let (root, delta) = defs.spatial_anchor(addr);
            let want = delta.wrapping_add(offset);
            let spatial = fact.iter().any(|f| {
                matches!(
                    f,
                    CheckFact::SbSpatial {
                        root: r,
                        delta: d,
                        size: s,
                        ..
                    } if *r == root && *d == want && *s == size
                )
            });
            let temporal = fact
                .iter()
                .any(|f| matches!(f, CheckFact::SbTemporal { .. }));
            spatial && temporal
        }
        Scheme::None | Scheme::Shore => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::instrument::instrument;
    use crate::ir::{Terminator, Width};
    use crate::ModuleBuilder;

    fn sample_modules() -> Vec<Module> {
        let mut out = Vec::new();

        // Straight-line heap traffic with a free.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        let _ = f.load(p, 8, Width::U32);
        f.free(p);
        f.ret(None);
        f.finish();
        out.push(mb.finish());

        // Stack + global + cross-function pointer traffic.
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 32);
        let mut f = mb.func("sink");
        let q = f.param(true);
        let v = f.konst(1);
        f.store(v, q, 0, Width::U8);
        f.ret(None);
        f.finish();
        let mut f = mb.func("main");
        let s = f.stack_alloc(16);
        let ga = f.addr_of_global(g);
        let v = f.konst(3);
        f.store(v, s, 8, Width::U64);
        f.store(v, ga, 0, Width::U64);
        f.call_void("sink", &[s]);
        let cell = f.malloc_bytes(8);
        f.store_ptr(s, cell, 0);
        let r = f.load_ptr(cell, 0);
        let _ = f.load(r, 0, Width::U8);
        f.ret(None);
        f.finish();
        out.push(mb.finish());

        out
    }

    #[test]
    fn instrumented_modules_verify_under_every_scheme() {
        for m in sample_modules() {
            let info = analyze(&m).unwrap();
            for scheme in Scheme::ALL {
                let out = instrument(&m, &info, scheme);
                verify(&out, scheme).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            }
        }
    }

    #[test]
    fn rce_output_still_verifies() {
        for m in sample_modules() {
            let info = analyze(&m).unwrap();
            for scheme in Scheme::ALL {
                let mut out = instrument(&m, &info, scheme);
                crate::rce::eliminate(&mut out);
                verify(&out, scheme).unwrap_or_else(|e| panic!("{scheme:?} post-RCE: {e}"));
            }
        }
    }

    #[test]
    fn deleting_a_needed_check_is_caught() {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let info = analyze(&m).unwrap();
        let mut out = instrument(&m, &info, Scheme::Hwst128Tchk);
        // Hand-break the module: drop every tchk.
        for func in &mut out.funcs {
            for b in &mut func.blocks {
                b.insts.retain(|i| !matches!(i, Inst::Tchk { .. }));
            }
        }
        let err = verify(&out, Scheme::Hwst128Tchk).unwrap_err();
        assert!(matches!(err, CompileError::UncoveredDeref { .. }), "{err}");
    }

    fn bounds_loop_module() -> Module {
        use crate::ir::BinOp;
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let arr = f.stack_alloc(64);
        let i = f.local();
        let z = f.konst(0);
        f.local_set(i, z);
        let head = f.new_block();
        let body = f.new_block();
        let done = f.new_block();
        f.jmp(head);
        f.switch_to(head);
        let iv = f.local_get(i);
        let c = f.bin_imm(BinOp::Slt, iv, 8);
        f.br(c, body, done);
        f.switch_to(body);
        let iv2 = f.local_get(i);
        let off = f.bin_imm(BinOp::Sll, iv2, 3);
        let slot = f.gep(arr, off);
        let v = f.konst(1);
        f.store(v, slot, 0, Width::U64);
        let iv3 = f.local_get(i);
        let nx = f.bin_imm(BinOp::Add, iv3, 1);
        f.local_set(i, nx);
        f.jmp(head);
        f.switch_to(done);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    #[test]
    fn bounds_skips_verify_under_every_scheme() {
        let m = bounds_loop_module();
        let info = analyze(&m).unwrap();
        let outcome = crate::bounds::analyze(&m);
        assert!(outcome.stats.proven >= 1, "{:?}", outcome.stats);
        for scheme in Scheme::ALL {
            let (out, skips) =
                crate::instrument::instrument_with_bounds(&m, &info, scheme, Some(&outcome));
            if !matches!(scheme, Scheme::None | Scheme::Shore) {
                assert!(!skips.is_empty(), "{scheme:?} skipped nothing");
            }
            verify_with(&out, scheme, &skips, &outcome.witnesses)
                .unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
        }
    }

    #[test]
    fn skips_without_witnesses_fail_verification() {
        // The same instrumented module must NOT verify if the witness
        // list is withheld: a skip is only as good as its proof.
        let m = bounds_loop_module();
        let info = analyze(&m).unwrap();
        let outcome = crate::bounds::analyze(&m);
        let (out, skips) = crate::instrument::instrument_with_bounds(
            &m,
            &info,
            Scheme::Hwst128Tchk,
            Some(&outcome),
        );
        let err = verify_with(&out, Scheme::Hwst128Tchk, &skips, &[]).unwrap_err();
        assert!(matches!(err, CompileError::InvalidWitness { .. }), "{err}");
        // ... and without even the skip records, it is an uncovered deref.
        let err = verify(&out, Scheme::Hwst128Tchk).unwrap_err();
        assert!(matches!(err, CompileError::UncoveredDeref { .. }), "{err}");
    }

    #[test]
    fn forged_witnesses_are_rejected() {
        let m = bounds_loop_module();
        let info = analyze(&m).unwrap();
        let outcome = crate::bounds::analyze(&m);
        let (out, skips) = crate::instrument::instrument_with_bounds(
            &m,
            &info,
            Scheme::Hwst128Tchk,
            Some(&outcome),
        );

        // Interval past the end of the object.
        let mut forged = outcome.witnesses.clone();
        for w in &mut forged {
            w.hi = w.size as i64 + 8;
        }
        let err = verify_with(&out, Scheme::Hwst128Tchk, &skips, &forged).unwrap_err();
        assert!(matches!(err, CompileError::InvalidWitness { .. }), "{err}");

        // Negative base offset.
        let mut forged = outcome.witnesses.clone();
        for w in &mut forged {
            w.lo = -8;
        }
        assert!(verify_with(&out, Scheme::Hwst128Tchk, &skips, &forged).is_err());

        // Skip pointing past every dereference in its block.
        let mut bad_skips = skips.clone();
        for s in &mut bad_skips {
            s.deref += 100;
        }
        let r = verify_with(&out, Scheme::Hwst128Tchk, &bad_skips, &outcome.witnesses);
        assert!(r.is_err());
    }

    #[test]
    fn rce_shifts_do_not_break_skip_resolution() {
        // One block holding (a) a kept check, (b) a check RCE deletes
        // (same temporal root ⇒ indices shift), then (c) a bounds-
        // skipped store. The ordinal-based skip must still resolve to
        // the right dereference after elimination.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let cell = f.malloc_bytes(8);
        let p = f.malloc_bytes(64);
        f.store_ptr(p, cell, 0);
        let q = f.load_ptr(cell, 0); // unknown-provenance pointer
        let _a = f.load(q, 0, Width::U64); // checked
        let _b = f.load(q, 8, Width::U64); // RCE removes this tchk
        let arr = f.stack_alloc(16);
        let v = f.konst(9);
        f.store(v, arr, 8, Width::U64); // bounds-proven: skipped
        f.ret(None);
        f.finish();
        let m = mb.finish();
        for scheme in Scheme::ALL {
            let opts = crate::CompileOptions::new(scheme)
                .with_rce()
                .with_bounds()
                .with_verify();
            let c =
                crate::compile_with_options(&m, opts).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            if scheme == Scheme::Hwst128Tchk {
                assert!(c.rce.tchk_removed >= 1, "{:?}", c.rce);
                assert!(!c.skips.is_empty());
            }
        }
    }

    #[test]
    fn unreachable_derefs_are_ignored() {
        // A dead block dereferencing without checks must not fail the
        // verifier: it cannot execute.
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(8);
        let v = f.konst(1);
        f.store(v, p, 0, Width::U64);
        f.ret(None);
        f.finish();
        let m = mb.finish();
        let info = analyze(&m).unwrap();
        let mut out = instrument(&m, &info, Scheme::Hwst128Tchk);
        // Append an unreachable block with a raw deref.
        let main = out.funcs.iter_mut().find(|f| f.name == "main").unwrap();
        let addr = main.params.first().copied().unwrap_or(VarId(0));
        main.blocks.push(crate::ir::Block {
            insts: vec![Inst::Load {
                dst: VarId(999),
                addr,
                offset: 0,
                width: Width::U64,
            }],
            term: Terminator::Ret { value: None },
        });
        main.num_vars = main.num_vars.max(1000);
        verify(&out, Scheme::Hwst128Tchk).unwrap();
    }
}
