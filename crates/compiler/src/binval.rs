//! Binary-level translation validation for the HWST128 lowering.
//!
//! The static passes in [`crate::lint`], [`crate::rce`] and
//! [`crate::verify`] all reason about the *IR*. Nothing there says
//! anything about the artifact that actually runs: if the `-O0`
//! back-end in `lower.rs` drops a metadata load, skews a shadow-map
//! offset, or pairs the wrong shadow register with a checked access,
//! every safety claim the repo makes is silently void. This module
//! closes that gap with an abstract interpreter over the *machine
//! code*: it decodes nothing the compiler tells it about semantics —
//! it re-derives the instrumentation structure from the instruction
//! stream itself (via [`hwst_isa::cfg`] CFG recovery) and uses the
//! [`LowerPlan`] side-tables only for function extents, frame geometry
//! and the IR-check ↔ instruction correspondence.
//!
//! # Abstract domain
//!
//! Per machine register the interpreter tracks a product of
//!
//! * a **numeric value** (`Num`): an exact constant, an offset from
//!   the function's entry stack pointer, or ⊤, and
//! * a **provenance** (`Prov`): "this value is the current content
//!   of frame slot *s*", the machine-level image of the IR's
//!   home-slot discipline.
//!
//! Alongside the GPR file it mirrors the shadow register file: for
//! each SRF entry half it tracks *where the metadata came from*
//! (`MetaSrc`) and, when statically known, the decompressed bounds
//! (`Bounds`). Finally it tracks which frame-slot shadow words have
//! been written on **every** path (a must-analysis; joins intersect).
//!
//! # What is proven (per function)
//!
//! * **(a) check/metadata correspondence** — every checked load/store
//!   consumes an SRF entry populated by an `lbdls` from the *same*
//!   home slot the address register was loaded from (the hardware
//!   silently skips the check when the entry is empty or zero — see
//!   `hwst_sim::exec::spatial_check` — so a dropped metadata load
//!   *disables* checking without any observable trap);
//! * **(b) shadow-map addressing** — every `sbdl`/`sbdu` targets a
//!   valid container (an in-frame, 8-aligned slot, or a
//!   pointer-provenanced heap/global container), stores a populated
//!   SRF half, and same-container pairs store coherently-sourced
//!   halves; the LMSM address itself (Eq. 1: `(addr << 2) + offset`)
//!   is applied uniformly by the hardware, so validity reduces to
//!   container validity plus the global layout checks;
//! * **(c) compression-config consistency** — `bndrs`/`bndrt` operands
//!   that are statically constant must be representable under the
//!   active compression config, and the config must cover the layout
//!   (base field spans the user address space, lock field spans the
//!   lock region);
//! * **(d) no silent pointer escape** — a pointer-provenanced value
//!   parked into a pointer home slot requires a shadow store to that
//!   slot somewhere in the function, and a pointer stored through a
//!   pointer (a heap escape) requires a through-pointer shadow store.
//!
//! Checks (a)–(c) are flow-sensitive over the recovered machine CFG;
//! (d) is a flow-insensitive per-function check.
//!
//! # What is *not* proven
//!
//! This is translation validation, not verification: the validator
//! proves that the lowering *preserved the instrumentation structure*,
//! not that the metadata values are functionally correct, and not that
//! the program is memory-safe (that is the hardware's job at run
//! time). Calls havoc all registers and the whole SRF; slot shadows
//! and slot contents below the alloca region survive calls because
//! home slots are compiler-internal and never address-taken.
//!
//! As a byproduct the interpreter *discharges* checks statically: a
//! checked access whose address and bounds are both known (globals,
//! allocas) is proven in- or out-of-bounds, and a repeated check of an
//! unmodified slot pointer is proven redundant. These counts feed the
//! A9 ablation (checks discharged at binary level beyond IR-level
//! RCE); statically-proven violations are reported as
//! [`FindingClass::StaticBug`] with a CWE class and do **not** fail
//! validation.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hwst_isa::cfg;
use hwst_isa::{AluImmOp, AluOp, Instr, LoadWidth, Program, Reg, StoreWidth};
use hwst_mem::MemoryLayout;
use hwst_metadata::{CompressionConfig, ShadowCodec};

use crate::instrument::{self, Scheme};
use crate::ir::Module;
use crate::lower::{lower_with_plan, CheckSite, FnPlan, LowerPlan};
use crate::{analysis, rce, verify, CompileError};

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// How a finding bears on validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingClass {
    /// The lowering violated the instrumentation contract. Any such
    /// finding fails validation ([`BinvalReport::ok`]).
    Lowering,
    /// The *program* provably violates memory safety (the lowering is
    /// fine — the check is present and will fire). Reported with a CWE
    /// class; does not fail validation.
    StaticBug,
}

/// One validator diagnostic, anchored to an emitted instruction.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lowering defect vs. statically-proven program bug.
    pub class: FindingClass,
    /// Stable machine-readable code (e.g. `CHECK_SRF_EMPTY`).
    pub code: &'static str,
    /// Containing function (or `<image>` for global findings).
    pub func: String,
    /// Program-wide instruction index.
    pub at: usize,
    /// Absolute PC of the instruction.
    pub pc: u64,
    /// CWE class for [`FindingClass::StaticBug`] findings.
    pub cwe: Option<u16>,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.class {
            FindingClass::Lowering => "lowering",
            FindingClass::StaticBug => "static-bug",
        };
        write!(
            f,
            "{kind}: [{code}] {func}+{at} (pc {pc:#x}): {msg}",
            code = self.code,
            func = self.func,
            at = self.at,
            pc = self.pc,
            msg = self.message
        )?;
        if let Some(c) = self.cwe {
            write!(f, " [CWE-{c}]")?;
        }
        Ok(())
    }
}

/// Per-function validation statistics (the A9 ablation inputs).
#[derive(Debug, Clone, Default)]
pub struct FnReport {
    /// Function name.
    pub name: String,
    /// Checked loads/stores encountered (reachable code).
    pub checked_ops: usize,
    /// `tchk` instructions encountered.
    pub tchk_ops: usize,
    /// `lbdls`/`lbdus` metadata loads encountered.
    pub meta_loads: usize,
    /// `sbdl`/`sbdu` shadow stores encountered.
    pub shadow_stores: usize,
    /// Checked ops proven in-bounds from statically-known address and
    /// bounds.
    pub discharged_in_bounds: usize,
    /// Checked ops proven redundant with an earlier identical check of
    /// an unmodified slot pointer.
    pub discharged_redundant: usize,
}

impl FnReport {
    /// Total checks statically discharged at binary level.
    pub fn discharged(&self) -> usize {
        self.discharged_in_bounds + self.discharged_redundant
    }
}

/// The result of validating one lowered image.
#[derive(Debug, Clone)]
pub struct BinvalReport {
    /// The scheme the image was lowered for.
    pub scheme: Scheme,
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Per-function statistics, in emission order.
    pub funcs: Vec<FnReport>,
}

impl BinvalReport {
    /// `true` when no [`FindingClass::Lowering`] finding was reported.
    pub fn ok(&self) -> bool {
        self.lowering_findings() == 0
    }

    /// Number of lowering (validation-failing) findings.
    pub fn lowering_findings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.class == FindingClass::Lowering)
            .count()
    }

    /// Number of statically-proven program bugs.
    pub fn static_bugs(&self) -> usize {
        self.findings.len() - self.lowering_findings()
    }

    /// Total checked operations across all functions.
    pub fn checked_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.checked_ops).sum()
    }

    /// Total checks statically discharged across all functions.
    pub fn discharged(&self) -> usize {
        self.funcs.iter().map(|f| f.discharged()).sum()
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract numeric value: ⊤, an exact constant, or an offset from the
/// function's *entry* stack pointer (so the post-prologue `sp` is
/// `Sp(-frame_size)` and the address of frame slot `s` is
/// `Sp(s - frame_size)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Num {
    Top,
    Const(u64),
    Sp(i64),
}

/// Abstract provenance: is this value the current content of a frame
/// slot? `exact` means the value equals the slot content (a plain
/// reload yields the same value); inexact provenance survives pointer
/// arithmetic and is enough for the correspondence check but not for
/// redundancy discharge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prov {
    None,
    Slot { off: i64, exact: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsVal {
    prov: Prov,
    num: Num,
}

const TOP: AbsVal = AbsVal {
    prov: Prov::None,
    num: Num::Top,
};

/// Where an SRF half's metadata came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MetaSrc {
    /// Loaded from the shadow word of frame slot `s`.
    Slot(i64),
    /// Loaded from a heap or global container's shadow word.
    Dyn,
    /// Produced in-register by `bndrs`/`bndrt`.
    Fresh,
}

/// Statically-known spatial bounds (half-open `[base, bound)`),
/// either absolute or entry-`sp`-relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bounds {
    Const(u64, u64),
    Sp(i64, i64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SrfHalf {
    src: MetaSrc,
    bounds: Option<Bounds>,
}

/// The per-program-point abstract state. All compound members are
/// must-information: joins intersect.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    regs: [AbsVal; 32],
    srf_l: [Option<SrfHalf>; 32],
    srf_u: [Option<SrfHalf>; 32],
    /// Known contents of frame slots (keyed by frame offset).
    vals: BTreeMap<i64, Num>,
    /// Frame-slot shadow words (lower half) written on every path,
    /// with their content's bounds when statically known.
    shadow_l: BTreeMap<i64, Option<Bounds>>,
    /// Frame-slot shadow words (upper half) written on every path.
    shadow_u: BTreeSet<i64>,
    /// Checks already performed: (pointer slot, access offset, bytes).
    done: BTreeSet<(i64, i64, u64)>,
}

impl AbsState {
    fn entry() -> Self {
        let mut regs = [TOP; 32];
        regs[Reg::Zero.index() as usize].num = Num::Const(0);
        regs[Reg::Sp.index() as usize].num = Num::Sp(0);
        AbsState {
            regs,
            srf_l: [None; 32],
            srf_u: [None; 32],
            vals: BTreeMap::new(),
            shadow_l: BTreeMap::new(),
            shadow_u: BTreeSet::new(),
            done: BTreeSet::new(),
        }
    }
}

fn join_num(a: Num, b: Num) -> Num {
    if a == b {
        a
    } else {
        Num::Top
    }
}

fn join_prov(a: Prov, b: Prov) -> Prov {
    match (a, b) {
        (Prov::Slot { off: oa, exact: ea }, Prov::Slot { off: ob, exact: eb }) if oa == ob => {
            Prov::Slot {
                off: oa,
                exact: ea && eb,
            }
        }
        _ => Prov::None,
    }
}

fn join_half(a: Option<SrfHalf>, b: Option<SrfHalf>) -> Option<SrfHalf> {
    match (a, b) {
        (Some(x), Some(y)) if x.src == y.src => Some(SrfHalf {
            src: x.src,
            bounds: if x.bounds == y.bounds { x.bounds } else { None },
        }),
        _ => None,
    }
}

fn join(a: &AbsState, b: &AbsState) -> AbsState {
    let mut regs = [TOP; 32];
    let mut srf_l = [None; 32];
    let mut srf_u = [None; 32];
    for i in 0..32 {
        regs[i] = AbsVal {
            prov: join_prov(a.regs[i].prov, b.regs[i].prov),
            num: join_num(a.regs[i].num, b.regs[i].num),
        };
        srf_l[i] = join_half(a.srf_l[i], b.srf_l[i]);
        srf_u[i] = join_half(a.srf_u[i], b.srf_u[i]);
    }
    let vals = a
        .vals
        .iter()
        .filter(|(k, v)| b.vals.get(k) == Some(v))
        .map(|(&k, &v)| (k, v))
        .collect();
    let shadow_l = a
        .shadow_l
        .iter()
        .filter_map(|(&k, &v)| {
            b.shadow_l
                .get(&k)
                .map(|&bv| (k, if v == bv { v } else { None }))
        })
        .collect();
    let shadow_u = a.shadow_u.intersection(&b.shadow_u).copied().collect();
    let done = a.done.intersection(&b.done).copied().collect();
    AbsState {
        regs,
        srf_l,
        srf_u,
        vals,
        shadow_l,
        shadow_u,
        done,
    }
}

// ---------------------------------------------------------------------------
// The per-function interpreter
// ---------------------------------------------------------------------------

/// Where a shadow access lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Container {
    /// A frame slot, by frame offset.
    Slot(i64),
    /// A statically-known absolute address (a global / `__meta` area).
    Global(u64),
    /// Through a pointer whose home slot is known.
    Dyn(i64),
    /// No idea where this lands.
    Unknown,
}

/// Key for `sbdl`/`sbdu` pair-coherence tracking within a block:
/// syntactic base register + offset + resolved container.
type PairKey = (u8, i64, Container);

struct FnInterp<'a> {
    instrs: &'a [Instr],
    base: u64,
    plan: &'a FnPlan,
    scheme: Scheme,
    codec: ShadowCodec,
    fs: i64,
    ptr_slots: BTreeSet<i64>,
    check_at: HashMap<usize, &'a CheckSite>,
    /// Emit findings/stats (final pass) vs. fixpoint-only.
    emit: bool,
    findings: Vec<Finding>,
    stats: FnReport,
    // Flow-insensitive escape accounting (check d), emit pass only.
    ptr_store_slots: BTreeSet<(usize, i64)>,
    sbdl_slots: BTreeSet<i64>,
    /// Reachable `sbdl` instructions targeting a dynamic (heap/global)
    /// container — the machine image of the IR's `MetaStore` copies.
    sbdl_dyn: usize,
}

fn num_add(n: Num, d: i64) -> Num {
    match n {
        Num::Top => Num::Top,
        Num::Const(c) => Num::Const(c.wrapping_add(d as u64)),
        Num::Sp(o) => Num::Sp(o.wrapping_add(d)),
    }
}

fn eval_alu_imm(op: AluImmOp, n: Num, imm: i64) -> Num {
    match (op, n) {
        (AluImmOp::Addi, _) => num_add(n, imm),
        (_, Num::Const(c)) => Num::Const(op.eval(c, imm)),
        _ => Num::Top,
    }
}

fn eval_alu(op: AluOp, a: Num, b: Num) -> Num {
    match (op, a, b) {
        (_, Num::Const(x), Num::Const(y)) => Num::Const(op.eval(x, y)),
        (AluOp::Add, Num::Sp(d), Num::Const(c)) | (AluOp::Add, Num::Const(c), Num::Sp(d)) => {
            Num::Sp(d.wrapping_add(c as i64))
        }
        (AluOp::Sub, Num::Sp(d), Num::Const(c)) => Num::Sp(d.wrapping_sub(c as i64)),
        (AluOp::Sub, Num::Sp(x), Num::Sp(y)) => Num::Const(x.wrapping_sub(y) as u64),
        _ => Num::Top,
    }
}

/// Which GPR does `i` define, if any? (SRF-only writers like `lbdls`
/// do not count.)
fn gpr_def(i: &Instr) -> Option<Reg> {
    match *i {
        Instr::Lui { rd, .. }
        | Instr::Auipc { rd, .. }
        | Instr::Alu { rd, .. }
        | Instr::AluImm { rd, .. }
        | Instr::Load { rd, .. }
        | Instr::Csr { rd, .. }
        | Instr::Lbas { rd, .. }
        | Instr::Lbnd { rd, .. }
        | Instr::Lkey { rd, .. }
        | Instr::Lloc { rd, .. } => Some(rd),
        _ => None,
    }
}

impl<'a> FnInterp<'a> {
    fn new(
        instrs: &'a [Instr],
        base: u64,
        plan: &'a FnPlan,
        scheme: Scheme,
        codec: ShadowCodec,
    ) -> Self {
        FnInterp {
            instrs,
            base,
            plan,
            scheme,
            codec,
            fs: plan.frame_size,
            ptr_slots: plan.ptr_slots.iter().copied().collect(),
            check_at: plan.checks.iter().map(|c| (c.at, c)).collect(),
            emit: false,
            findings: Vec::new(),
            stats: FnReport {
                name: plan.name.clone(),
                ..FnReport::default()
            },
            ptr_store_slots: BTreeSet::new(),
            sbdl_slots: BTreeSet::new(),
            sbdl_dyn: 0,
        }
    }

    fn pc(&self, at: usize) -> u64 {
        self.base + at as u64 * 4
    }

    fn finding(&mut self, class: FindingClass, code: &'static str, at: usize, message: String) {
        self.finding_cwe(class, code, at, None, message);
    }

    fn finding_cwe(
        &mut self,
        class: FindingClass,
        code: &'static str,
        at: usize,
        cwe: Option<u16>,
        message: String,
    ) {
        if self.emit {
            self.findings.push(Finding {
                class,
                code,
                func: self.plan.name.clone(),
                at,
                pc: self.pc(at),
                cwe,
                message,
            });
        }
    }

    /// Is `s` a plausible frame-slot container for shadow traffic?
    /// Slot 0 is the return-address slot and never carries metadata.
    fn valid_slot(&self, s: i64) -> bool {
        s >= 8 && s < self.fs && s % 8 == 0
    }

    fn set_reg(&self, st: &mut AbsState, rd: Reg, v: AbsVal) {
        if !rd.is_zero() {
            st.regs[rd.index() as usize] = v;
        }
    }

    fn srf_clear(&self, st: &mut AbsState, rd: Reg) {
        let r = rd.index() as usize;
        st.srf_l[r] = None;
        st.srf_u[r] = None;
    }

    /// Mirrors `Srf::propagate`: copy the first source whose entry is
    /// (known) valid; otherwise invalidate.
    fn srf_propagate(&self, st: &mut AbsState, rd: Reg, rs1: Reg, rs2: Option<Reg>) {
        if rd.is_zero() {
            return;
        }
        let valid = |st: &AbsState, r: Reg| {
            let i = r.index() as usize;
            st.srf_l[i].is_some() || st.srf_u[i].is_some()
        };
        let src = if valid(st, rs1) {
            Some(rs1)
        } else {
            rs2.filter(|&r| valid(st, r))
        };
        let d = rd.index() as usize;
        match src {
            Some(r) => {
                let s = r.index() as usize;
                st.srf_l[d] = st.srf_l[s];
                st.srf_u[d] = st.srf_u[s];
            }
            None => {
                st.srf_l[d] = None;
                st.srf_u[d] = None;
            }
        }
    }

    /// Value changed at frame offset `s`: provenance into that slot is
    /// stale, prior checks of the pointer it held no longer discharge
    /// later ones, and any statically-known shadow *content* for it is
    /// no longer trustworthy (the shadow word itself stays written).
    fn kill_slot(&self, st: &mut AbsState, s: i64) {
        for r in st.regs.iter_mut() {
            if matches!(r.prov, Prov::Slot { off, .. } if off == s) {
                r.prov = Prov::None;
            }
        }
        st.done.retain(|&(sl, _, _)| sl != s);
        if let Some(b) = st.shadow_l.get_mut(&s) {
            *b = None;
        }
    }

    fn call_havoc(&self, st: &mut AbsState) {
        let sp = Reg::Sp.index() as usize;
        let zero = Reg::Zero.index() as usize;
        for (i, r) in st.regs.iter_mut().enumerate() {
            if i != sp && i != zero {
                *r = TOP;
            }
        }
        st.srf_l = [None; 32];
        st.srf_u = [None; 32];
        // The callee can reach our alloca areas through escaped
        // pointers, but never our home slots or spill locals (they are
        // compiler-internal and not address-taken). Shadow words of
        // home slots survive for the same reason.
        let ab = self.plan.alloca_base;
        st.vals.retain(|&k, _| k < ab);
    }

    fn container_of(&self, st: &AbsState, rs1: Reg, offset: i64) -> Container {
        let v = st.regs[rs1.index() as usize];
        match num_add(v.num, offset) {
            Num::Sp(d) => Container::Slot(d.wrapping_add(self.fs)),
            Num::Const(c) => Container::Global(c),
            Num::Top => match v.prov {
                Prov::Slot { off, .. } => Container::Dyn(off),
                Prov::None => Container::Unknown,
            },
        }
    }

    /// Check (a) at a checked load/store, plus the A9 discharge
    /// accounting and static bounds evaluation.
    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &mut self,
        st: &mut AbsState,
        at: usize,
        rs1: Reg,
        offset: i64,
        bytes: u64,
        is_store: bool,
    ) {
        if self.emit {
            self.stats.checked_ops += 1;
        }
        let rv = st.regs[rs1.index() as usize];
        let slot = match rv.prov {
            Prov::Slot { off, .. } if self.ptr_slots.contains(&off) => off,
            _ => {
                self.finding(
                    FindingClass::Lowering,
                    "CHECK_ADDR_UNKNOWN",
                    at,
                    format!(
                        "checked {} consumes an address of unknown pointer provenance",
                        if is_store { "store" } else { "load" }
                    ),
                );
                return;
            }
        };
        let half = st.srf_l[rs1.index() as usize];
        let half = match half {
            None => {
                self.finding(
                    FindingClass::Lowering,
                    "CHECK_SRF_EMPTY",
                    at,
                    format!(
                        "checked {} consumes SRF[{rs1}] which is not populated on every \
                         path — the hardware silently skips the bounds check",
                        if is_store { "store" } else { "load" }
                    ),
                );
                return;
            }
            Some(h) => h,
        };
        match half.src {
            MetaSrc::Slot(ms) if ms == slot => {}
            MetaSrc::Fresh => {} // bounds bound in-register: still checked
            other => {
                self.finding(
                    FindingClass::Lowering,
                    "CHECK_SRF_MISMATCH",
                    at,
                    format!(
                        "checked access address comes from slot {slot} but SRF[{rs1}] \
                         was populated from {other:?} — the check guards the wrong metadata"
                    ),
                );
                return;
            }
        }
        // Lowering plan cross-check: the IR side-table must know this
        // site and agree on the slot.
        match self.check_at.get(&at) {
            None => self.finding(
                FindingClass::Lowering,
                "PLAN_MISSING",
                at,
                "checked instruction not recorded as an IR check site".to_string(),
            ),
            Some(site) if site.slot != slot => self.finding(
                FindingClass::Lowering,
                "PLAN_MISMATCH",
                at,
                format!(
                    "lowering plan maps this check to slot {}, machine state says {slot}",
                    site.slot
                ),
            ),
            Some(_) => {}
        }
        // Static discharge / static bug detection.
        let addr = num_add(rv.num, offset);
        let verdict = match (half.bounds, addr) {
            (Some(Bounds::Const(lo, hi)), Num::Const(a)) => {
                Some((a < lo, a.wrapping_add(bytes) > hi, a == 0, false))
            }
            (Some(Bounds::Sp(lo, hi)), Num::Sp(a)) => {
                Some((a < lo, a.wrapping_add(bytes as i64) > hi, false, true))
            }
            _ => None,
        };
        let mut discharged = false;
        if let Some((under, over, null, stack)) = verdict {
            if under || over {
                let cwe = if null {
                    476
                } else {
                    match (is_store, under) {
                        (true, true) => 124,
                        (true, false) => {
                            if stack {
                                121
                            } else {
                                122
                            }
                        }
                        (false, true) => 127,
                        (false, false) => 126,
                    }
                };
                self.finding_cwe(
                    FindingClass::StaticBug,
                    "STATIC_OOB",
                    at,
                    Some(cwe),
                    format!(
                        "access provably out of bounds: {bytes}-byte {} at statically-known \
                         address outside the bound metadata",
                        if is_store { "store" } else { "load" }
                    ),
                );
            } else {
                discharged = true;
                if self.emit {
                    self.stats.discharged_in_bounds += 1;
                }
            }
        }
        if let Prov::Slot { exact: true, .. } = rv.prov {
            let key = (slot, offset, bytes);
            if st.done.contains(&key) {
                if !discharged && self.emit {
                    self.stats.discharged_redundant += 1;
                }
            } else {
                st.done.insert(key);
            }
        }
    }

    fn transfer(
        &mut self,
        st: &mut AbsState,
        at: usize,
        pairs: &mut HashMap<PairKey, Option<MetaSrc>>,
    ) {
        let i = self.instrs[at];
        if !self.scheme.uses_hardware() {
            let hw = matches!(
                i,
                Instr::Bndrs { .. }
                    | Instr::Bndrt { .. }
                    | Instr::Sbdl { .. }
                    | Instr::Sbdu { .. }
                    | Instr::Lbdls { .. }
                    | Instr::Lbdus { .. }
                    | Instr::Lbas { .. }
                    | Instr::Lbnd { .. }
                    | Instr::Lkey { .. }
                    | Instr::Lloc { .. }
                    | Instr::Tchk { .. }
                    | Instr::SrfMv { .. }
                    | Instr::SrfClr { .. }
                    | Instr::Load { checked: true, .. }
                    | Instr::Store { checked: true, .. }
            );
            if hw {
                self.finding(
                    FindingClass::Lowering,
                    "SCHEME_VIOLATION",
                    at,
                    format!("HWST128 instruction emitted under scheme {:?}", self.scheme),
                );
            }
        }
        match i {
            Instr::Lui { rd, imm } => {
                self.set_reg(
                    st,
                    rd,
                    AbsVal {
                        prov: Prov::None,
                        num: Num::Const(imm as u64),
                    },
                );
                self.srf_clear(st, rd);
            }
            Instr::Auipc { rd, imm } => {
                self.set_reg(
                    st,
                    rd,
                    AbsVal {
                        prov: Prov::None,
                        num: Num::Const(self.pc(at).wrapping_add(imm as u64)),
                    },
                );
                self.srf_clear(st, rd);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let src = st.regs[rs1.index() as usize];
                let num = eval_alu_imm(op, src.num, imm);
                let prov = match src.prov {
                    Prov::Slot { off, exact } => Prov::Slot {
                        off,
                        exact: exact && op == AluImmOp::Addi && imm == 0,
                    },
                    Prov::None => Prov::None,
                };
                self.set_reg(st, rd, AbsVal { prov, num });
                self.srf_propagate(st, rd, rs1, None);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let a = st.regs[rs1.index() as usize];
                let b = st.regs[rs2.index() as usize];
                let num = eval_alu(op, a.num, b.num);
                // Pointer arithmetic keeps (inexact) provenance when
                // exactly one operand is pointer-provenanced.
                let prov = match (a.prov, b.prov) {
                    (Prov::Slot { off, .. }, Prov::None) | (Prov::None, Prov::Slot { off, .. }) => {
                        Prov::Slot { off, exact: false }
                    }
                    _ => Prov::None,
                };
                self.set_reg(st, rd, AbsVal { prov, num });
                self.srf_propagate(st, rd, rs1, Some(rs2));
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
                checked,
            } => {
                if checked {
                    self.check_access(st, at, rs1, offset, width.bytes(), false);
                }
                let addr = num_add(st.regs[rs1.index() as usize].num, offset);
                let v = if let Num::Sp(d) = addr {
                    let s = d.wrapping_add(self.fs);
                    let num = if width == LoadWidth::D {
                        st.vals.get(&s).copied().unwrap_or(Num::Top)
                    } else {
                        Num::Top
                    };
                    AbsVal {
                        prov: Prov::Slot {
                            off: s,
                            exact: true,
                        },
                        num,
                    }
                } else {
                    TOP
                };
                self.set_reg(st, rd, v);
                self.srf_clear(st, rd);
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
                checked,
            } => {
                if checked {
                    self.check_access(st, at, rs1, offset, width.bytes(), true);
                }
                let addr = num_add(st.regs[rs1.index() as usize].num, offset);
                let val = st.regs[rs2.index() as usize];
                match addr {
                    Num::Sp(d) => {
                        let s = d.wrapping_add(self.fs);
                        self.kill_slot(st, s);
                        if width == StoreWidth::D && val.num != Num::Top {
                            st.vals.insert(s, val.num);
                        } else {
                            st.vals.remove(&s);
                        }
                        if self.emit {
                            if let Prov::Slot { off: p, .. } = val.prov {
                                if self.ptr_slots.contains(&p) && self.ptr_slots.contains(&s) {
                                    self.ptr_store_slots.insert((at, s));
                                }
                            }
                        }
                    }
                    Num::Const(_) | Num::Top => {
                        if addr == Num::Top {
                            // An unknown-target store may alias our
                            // alloca areas (never home slots/locals).
                            let ab = self.plan.alloca_base;
                            st.vals.retain(|&k, _| k < ab);
                        }
                    }
                }
            }
            Instr::Jal { rd, .. } => {
                if !rd.is_zero() {
                    self.call_havoc(st);
                }
            }
            Instr::Jalr { .. } | Instr::Branch { .. } | Instr::Fence | Instr::Ebreak => {}
            Instr::Csr { rd, .. } => {
                self.set_reg(st, rd, TOP);
                self.srf_clear(st, rd);
            }
            Instr::Ecall => {
                // Syscalls return in a0/a1 and clobber nothing else we
                // track; be conservative about the whole a-file.
                for r in [
                    Reg::A0,
                    Reg::A1,
                    Reg::A2,
                    Reg::A3,
                    Reg::A4,
                    Reg::A5,
                    Reg::A6,
                    Reg::A7,
                ] {
                    self.set_reg(st, r, TOP);
                    self.srf_clear(st, r);
                }
            }
            Instr::Bndrs { rd, rs1, rs2 } => {
                let a = st.regs[rs1.index() as usize].num;
                let b = st.regs[rs2.index() as usize].num;
                let bounds = match (a, b) {
                    (Num::Const(lo), Num::Const(hi)) => {
                        if let Err(e) = self.codec.compress_spatial(lo, hi) {
                            self.finding(
                                FindingClass::Lowering,
                                "COMPRESS_UNREPRESENTABLE",
                                at,
                                format!(
                                    "bndrs operands ({lo:#x}, {hi:#x}) not representable \
                                     under the active compression config: {e}"
                                ),
                            );
                        }
                        Some(Bounds::Const(lo, hi))
                    }
                    (Num::Sp(lo), Num::Sp(hi)) => Some(Bounds::Sp(lo, hi)),
                    _ => None,
                };
                if !rd.is_zero() {
                    st.srf_l[rd.index() as usize] = Some(SrfHalf {
                        src: MetaSrc::Fresh,
                        bounds,
                    });
                }
            }
            Instr::Bndrt { rd, rs1, rs2 } => {
                let k = st.regs[rs1.index() as usize].num;
                let l = st.regs[rs2.index() as usize].num;
                if let (Num::Const(key), Num::Const(lock)) = (k, l) {
                    if let Err(e) = self.codec.compress_temporal(key, lock) {
                        self.finding(
                            FindingClass::Lowering,
                            "COMPRESS_UNREPRESENTABLE",
                            at,
                            format!(
                                "bndrt operands ({key:#x}, {lock:#x}) not representable \
                                 under the active compression config: {e}"
                            ),
                        );
                    }
                }
                if !rd.is_zero() {
                    st.srf_u[rd.index() as usize] = Some(SrfHalf {
                        src: MetaSrc::Fresh,
                        bounds: None,
                    });
                }
            }
            Instr::Lbdls { rd, rs1, offset } => {
                if self.emit {
                    self.stats.meta_loads += 1;
                }
                let c = self.container_of(st, rs1, offset);
                let half = match c {
                    Container::Slot(s) => {
                        if !self.valid_slot(s) {
                            self.finding(
                                FindingClass::Lowering,
                                "BAD_CONTAINER",
                                at,
                                format!(
                                    "lbdls reads the shadow of frame offset {s}, which is \
                                     not a metadata-bearing slot"
                                ),
                            );
                            SrfHalf {
                                src: MetaSrc::Dyn,
                                bounds: None,
                            }
                        } else if let Some(&b) = st.shadow_l.get(&s) {
                            SrfHalf {
                                src: MetaSrc::Slot(s),
                                bounds: b,
                            }
                        } else {
                            self.finding(
                                FindingClass::Lowering,
                                "SHADOW_UNWRITTEN",
                                at,
                                format!(
                                    "lbdls reads slot {s}'s shadow word, but no sbdl wrote \
                                     it on every path to here — the loaded metadata is \
                                     unbound (reads as zero ⇒ checks silently pass)"
                                ),
                            );
                            SrfHalf {
                                src: MetaSrc::Slot(s),
                                bounds: None,
                            }
                        }
                    }
                    Container::Global(_) | Container::Dyn(_) => SrfHalf {
                        src: MetaSrc::Dyn,
                        bounds: None,
                    },
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "lbdls container address has unknown provenance".to_string(),
                        );
                        SrfHalf {
                            src: MetaSrc::Dyn,
                            bounds: None,
                        }
                    }
                };
                if !rd.is_zero() {
                    st.srf_l[rd.index() as usize] = Some(half);
                }
            }
            Instr::Lbdus { rd, rs1, offset } => {
                if self.emit {
                    self.stats.meta_loads += 1;
                }
                // An unwritten upper shadow word reads as zero, which
                // decompresses to lock 0 = "no temporal metadata" and
                // is benign — so no must-written check here.
                let src = match self.container_of(st, rs1, offset) {
                    Container::Slot(s) if self.valid_slot(s) => MetaSrc::Slot(s),
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "lbdus container address has unknown provenance".to_string(),
                        );
                        MetaSrc::Dyn
                    }
                    _ => MetaSrc::Dyn,
                };
                if !rd.is_zero() {
                    st.srf_u[rd.index() as usize] = Some(SrfHalf { src, bounds: None });
                }
            }
            Instr::Sbdl { rs1, rs2, offset } => {
                if self.emit {
                    self.stats.shadow_stores += 1;
                }
                let src = st.srf_l[rs2.index() as usize];
                if src.is_none() {
                    self.finding(
                        FindingClass::Lowering,
                        "SBD_UNPOPULATED",
                        at,
                        format!(
                            "sbdl stores SRF[{rs2}].lower which is not populated on every \
                             path — it would write zero bounds (checks silently pass)"
                        ),
                    );
                }
                let c = self.container_of(st, rs1, offset);
                match c {
                    Container::Slot(s) => {
                        if !self.valid_slot(s) {
                            self.finding(
                                FindingClass::Lowering,
                                "BAD_CONTAINER",
                                at,
                                format!(
                                    "sbdl writes the shadow of frame offset {s}, which is \
                                     not a metadata-bearing slot"
                                ),
                            );
                        } else {
                            st.shadow_l.insert(s, src.and_then(|h| h.bounds));
                            st.done.retain(|&(sl, _, _)| sl != s);
                            for (r, h) in st.srf_l.iter_mut().enumerate() {
                                if r != rs2.index() as usize
                                    && matches!(h, Some(x) if x.src == MetaSrc::Slot(s))
                                {
                                    *h = None;
                                }
                            }
                            if self.emit {
                                self.sbdl_slots.insert(s);
                            }
                        }
                    }
                    Container::Global(_) | Container::Dyn(_) => {
                        if self.emit {
                            self.sbdl_dyn += 1;
                        }
                    }
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "sbdl container address has unknown provenance".to_string(),
                        );
                    }
                }
                pairs.insert((rs1.index(), offset, c), src.map(|h| h.src));
            }
            Instr::Sbdu { rs1, rs2, offset } => {
                if self.emit {
                    self.stats.shadow_stores += 1;
                }
                let src = st.srf_u[rs2.index() as usize];
                if src.is_none() {
                    self.finding(
                        FindingClass::Lowering,
                        "SBD_UNPOPULATED",
                        at,
                        format!(
                            "sbdu stores SRF[{rs2}].upper which is not populated on every \
                             path — it would write a zero temporal half"
                        ),
                    );
                }
                let c = self.container_of(st, rs1, offset);
                match c {
                    Container::Slot(s) => {
                        if !self.valid_slot(s) {
                            self.finding(
                                FindingClass::Lowering,
                                "BAD_CONTAINER",
                                at,
                                format!(
                                    "sbdu writes the shadow of frame offset {s}, which is \
                                     not a metadata-bearing slot"
                                ),
                            );
                        } else {
                            st.shadow_u.insert(s);
                            for (r, h) in st.srf_u.iter_mut().enumerate() {
                                if r != rs2.index() as usize
                                    && matches!(h, Some(x) if x.src == MetaSrc::Slot(s))
                                {
                                    *h = None;
                                }
                            }
                        }
                    }
                    Container::Global(_) | Container::Dyn(_) => {}
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "sbdu container address has unknown provenance".to_string(),
                        );
                    }
                }
                // Pair coherence: an sbdu against the same container as
                // a preceding sbdl in this block must store a half
                // sourced from the same place — catching "lower from
                // slot A, upper from slot B" register mix-ups.
                if let Some(&Some(lsrc)) = pairs.get(&(rs1.index(), offset, c)) {
                    if let Some(h) = src {
                        if h.src != lsrc {
                            self.finding(
                                FindingClass::Lowering,
                                "SBD_PAIR_INCOHERENT",
                                at,
                                format!(
                                    "sbdl/sbdu pair stores halves from different sources \
                                     ({lsrc:?} vs {:?}) to the same container",
                                    h.src
                                ),
                            );
                        }
                    }
                }
            }
            Instr::Lbas { rd, .. }
            | Instr::Lbnd { rd, .. }
            | Instr::Lkey { rd, .. }
            | Instr::Lloc { rd, .. } => {
                self.set_reg(st, rd, TOP);
                self.srf_clear(st, rd);
            }
            Instr::Tchk { rs1 } => {
                if self.emit {
                    self.stats.tchk_ops += 1;
                }
                let rv = st.regs[rs1.index() as usize];
                let slot = match rv.prov {
                    Prov::Slot { off, .. } if self.ptr_slots.contains(&off) => off,
                    _ => {
                        self.finding(
                            FindingClass::Lowering,
                            "TCHK_ADDR_UNKNOWN",
                            at,
                            "tchk consumes a pointer of unknown provenance".to_string(),
                        );
                        return;
                    }
                };
                match st.srf_u[rs1.index() as usize] {
                    None => self.finding(
                        FindingClass::Lowering,
                        "TCHK_SRF_EMPTY",
                        at,
                        format!(
                            "tchk consumes SRF[{rs1}].upper which is not populated on \
                             every path — the temporal check is silently skipped"
                        ),
                    ),
                    Some(h) => match h.src {
                        MetaSrc::Slot(ms) if ms == slot => {}
                        MetaSrc::Fresh => {}
                        other => self.finding(
                            FindingClass::Lowering,
                            "TCHK_SRF_MISMATCH",
                            at,
                            format!(
                                "tchk pointer comes from slot {slot} but SRF[{rs1}].upper \
                                 was populated from {other:?}"
                            ),
                        ),
                    },
                }
            }
            Instr::SrfMv { rd, rs1 } => {
                if !rd.is_zero() {
                    let s = rs1.index() as usize;
                    let d = rd.index() as usize;
                    st.srf_l[d] = st.srf_l[s];
                    st.srf_u[d] = st.srf_u[s];
                }
            }
            Instr::SrfClr { rd } => self.srf_clear(st, rd),
        }
    }

    /// Fixpoint + findings pass over the recovered machine CFG.
    fn run(&mut self) -> (Vec<Finding>, FnReport) {
        let range = self.plan.start..self.plan.start + self.plan.len;
        let g = cfg::recover(self.instrs, range);
        let n = g.blocks.len();
        if n == 0 {
            return (std::mem::take(&mut self.findings), self.stats.clone());
        }
        let mut inputs: Vec<Option<AbsState>> = vec![None; n];
        inputs[0] = Some(AbsState::entry());
        let mut work = vec![0usize];
        // Monotone joins on a finite-height domain terminate; the guard
        // only protects against an analysis bug, never fires on real
        // input, and degrades to fewer facts (never a panic).
        let mut fuel = 64usize.saturating_mul(n).saturating_add(256);
        while let Some(b) = work.pop() {
            if fuel == 0 {
                break;
            }
            fuel -= 1;
            let Some(mut st) = inputs[b].clone() else {
                continue;
            };
            let mut pairs = HashMap::new();
            for at in g.blocks[b].start..g.blocks[b].end {
                self.transfer(&mut st, at, &mut pairs);
            }
            for &s in &g.blocks[b].succs {
                let joined = match &inputs[s] {
                    None => st.clone(),
                    Some(prev) => join(prev, &st),
                };
                if inputs[s].as_ref() != Some(&joined) {
                    inputs[s] = Some(joined);
                    work.push(s);
                }
            }
        }
        // Findings pass: each reachable block exactly once, from its
        // fixed in-state.
        self.emit = true;
        for (b, input) in inputs.iter().enumerate() {
            let Some(start_state) = input else { continue };
            let mut st = start_state.clone();
            let mut pairs = HashMap::new();
            for at in g.blocks[b].start..g.blocks[b].end {
                self.transfer(&mut st, at, &mut pairs);
            }
        }
        self.emit = false;
        // Check (d): flow-insensitive escape coverage. Only meaningful
        // for schemes that carry hardware metadata — software-only
        // instrumentation has no shadow stores by design.
        if !self.scheme.uses_hardware() {
            return (std::mem::take(&mut self.findings), self.stats.clone());
        }
        let missing: Vec<(usize, i64)> = self
            .ptr_store_slots
            .iter()
            .filter(|(_, s)| !self.sbdl_slots.contains(s))
            .copied()
            .collect();
        self.emit = true;
        for (at, s) in missing {
            self.finding(
                FindingClass::Lowering,
                "PTR_ESCAPE",
                at,
                format!(
                    "a tracked pointer is parked into pointer slot {s}, but no sbdl \
                     anywhere in the function writes that slot's shadow"
                ),
            );
        }
        // The IR promised `meta_stores` through-pointer metadata
        // copies; each lowers to exactly one dynamic-container `sbdl`.
        // A binary with none of them lost every escape's metadata.
        // (Laundered escapes — plain stores of pointer-valued data —
        // are the *program's* choice and are intentionally exempt.)
        if self.plan.meta_stores > 0 && self.sbdl_dyn == 0 {
            self.finding(
                FindingClass::Lowering,
                "PTR_ESCAPE",
                self.plan.start,
                format!(
                    "the IR performs {} through-pointer metadata cop{}, but the lowered \
                     code contains no reachable sbdl targeting a heap or global container",
                    self.plan.meta_stores,
                    if self.plan.meta_stores == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                ),
            );
        }
        self.emit = false;
        (std::mem::take(&mut self.findings), self.stats.clone())
    }
}

// ---------------------------------------------------------------------------
// Image-level validation
// ---------------------------------------------------------------------------

/// Validates a lowered image against its [`LowerPlan`] under the given
/// compression config and memory layout.
pub fn validate(
    program: &Program,
    plan: &LowerPlan,
    compression: CompressionConfig,
    layout: MemoryLayout,
) -> BinvalReport {
    let mut findings = Vec::new();
    let mut funcs = Vec::new();
    // Check (c), global part: the 24-bit CSR config must cover the
    // layout the image is linked against.
    if plan.scheme.uses_hardware() {
        if let Err(e) = layout.validate() {
            findings.push(global_finding(
                program,
                "CONFIG_LAYOUT",
                format!("memory layout is inconsistent: {e}"),
            ));
        }
        if layout.user_end() > compression.max_base() {
            findings.push(global_finding(
                program,
                "CONFIG_BASE_RANGE",
                format!(
                    "user address space ends at {:#x} but the compressed base field \
                     only reaches {:#x}",
                    layout.user_end(),
                    compression.max_base()
                ),
            ));
        }
        if layout.lock_slots > compression.lock_entries() {
            findings.push(global_finding(
                program,
                "CONFIG_LOCK_RANGE",
                format!(
                    "{} lock slots exceed the {}-entry compressed lock field",
                    layout.lock_slots,
                    compression.lock_entries()
                ),
            ));
        }
    }
    let codec = ShadowCodec::new(compression, layout.lock_region_base);
    for fp in &plan.funcs {
        // Plan sanity: every recorded IR check site must map onto a
        // checked machine access (catches instruction deletion).
        for site in &fp.checks {
            let ok = match program.instrs().get(site.at) {
                Some(Instr::Load { checked, .. }) => *checked && !site.is_store,
                Some(Instr::Store { checked, .. }) => *checked && site.is_store,
                _ => false,
            };
            if !ok {
                findings.push(Finding {
                    class: FindingClass::Lowering,
                    code: "PLAN_DANGLING",
                    func: fp.name.clone(),
                    at: site.at,
                    pc: program.base() + site.at as u64 * 4,
                    cwe: None,
                    message: format!(
                        "IR check site (block {}, inst {}) does not map to a checked \
                         machine access",
                        site.block, site.inst
                    ),
                });
            }
        }
        let mut interp = FnInterp::new(program.instrs(), program.base(), fp, plan.scheme, codec);
        let (mut fnd, stats) = interp.run();
        findings.append(&mut fnd);
        funcs.push(stats);
    }
    BinvalReport {
        scheme: plan.scheme,
        findings,
        funcs,
    }
}

fn global_finding(program: &Program, code: &'static str, message: String) -> Finding {
    Finding {
        class: FindingClass::Lowering,
        code,
        func: "<image>".to_string(),
        at: 0,
        pc: program.base(),
        cwe: None,
        message,
    }
}

/// Instruments, lowers and validates `module` for `scheme` with the
/// default layout and spec compression config.
///
/// # Errors
///
/// Returns a [`CompileError`] when the module fails analysis or
/// lowering (validation itself never errors — it reports findings).
pub fn validate_module(module: &Module, scheme: Scheme) -> Result<BinvalReport, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    let (program, plan) = lower_with_plan(&instrumented, scheme)?;
    Ok(validate(
        &program,
        &plan,
        CompressionConfig::SPEC_DEFAULT,
        MemoryLayout::default(),
    ))
}

// ---------------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------------

/// The paired IR-level and binary-level verdicts for one workload.
#[derive(Debug)]
pub struct TvOutcome {
    /// Did the IR-level completeness verifier accept the instrumented
    /// module?
    pub ir_ok: bool,
    /// IR-level error, when `!ir_ok`.
    pub ir_error: Option<String>,
    /// IR-level RCE counters (all zero when RCE was not requested) —
    /// the A9 baseline that binary-level discharge is compared against.
    pub rce: rce::RceStats,
    /// The binary-level validation report.
    pub report: BinvalReport,
}

impl TvOutcome {
    /// Translation validation fails when the two levels disagree: the
    /// IR verifier accepted what the binary validator rejects, or vice
    /// versa. Either direction means a pass is wrong.
    pub fn diverged(&self) -> bool {
        self.ir_ok != self.report.ok()
    }

    /// Both levels accepted.
    pub fn ok(&self) -> bool {
        self.ir_ok && self.report.ok()
    }
}

/// Runs IR-level verification and binary-level validation over the same
/// instrumented module and pairs the verdicts.
///
/// # Errors
///
/// Returns a [`CompileError`] for analysis/lowering failures (not for
/// verification findings, which are part of the outcome).
pub fn translation_validate(module: &Module, scheme: Scheme) -> Result<TvOutcome, CompileError> {
    translation_validate_with(module, scheme, false)
}

/// [`translation_validate`] with optional IR-level redundant-check
/// elimination first — the A9 ablation compares binary-level discharge
/// against what RCE already removed.
///
/// # Errors
///
/// Same as [`translation_validate`].
pub fn translation_validate_with(
    module: &Module,
    scheme: Scheme,
    run_rce: bool,
) -> Result<TvOutcome, CompileError> {
    let info = analysis::analyze(module)?;
    let mut instrumented = instrument::instrument(module, &info, scheme);
    let stats = if run_rce {
        rce::eliminate(&mut instrumented)
    } else {
        rce::RceStats::default()
    };
    let ir = verify::verify(&instrumented, scheme);
    let (program, plan) = lower_with_plan(&instrumented, scheme)?;
    let report = validate(
        &program,
        &plan,
        CompressionConfig::SPEC_DEFAULT,
        MemoryLayout::default(),
    );
    Ok(TvOutcome {
        ir_ok: ir.is_ok(),
        ir_error: ir.err().map(|e| e.to_string()),
        rce: stats,
        report,
    })
}

// ---------------------------------------------------------------------------
// Mutation-based self-test
// ---------------------------------------------------------------------------

/// A seeded corruption of a lowered image. Every mutation targets a
/// *candidate site*: an `lbdls` that feeds a checked access in
/// straight-line code (see [`mutation_sites`]), which guarantees the
/// mutant is non-equivalent — the corrupted metadata path is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Replace the metadata load with a `nop` — the checked access
    /// consumes an invalid SRF entry and the hardware silently skips
    /// the check.
    DropMetaLoad,
    /// Skew the shadow-map offset by one slot — the check consumes a
    /// neighbouring slot's metadata.
    SkewShadowOffset,
    /// Redirect the metadata load into a different shadow register —
    /// the checked access consumes a stale entry.
    SwapShadowReg,
}

impl Mutation {
    /// All mutation operators.
    pub const ALL: [Mutation; 3] = [
        Mutation::DropMetaLoad,
        Mutation::SkewShadowOffset,
        Mutation::SwapShadowReg,
    ];

    /// Stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Mutation::DropMetaLoad => "drop-meta-load",
            Mutation::SkewShadowOffset => "skew-shadow-offset",
            Mutation::SwapShadowReg => "swap-shadow-reg",
        }
    }
}

/// One mutant's fate.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// Mutation operator name.
    pub mutation: &'static str,
    /// The seed that selected the site.
    pub seed: u64,
    /// Instruction index that was corrupted.
    pub site: usize,
    /// Absolute PC of the corrupted instruction.
    pub pc: u64,
    /// Name of the function containing the site (`"<shim>"` for the
    /// startup shim), resolved from the plan's symbol ranges.
    pub func: String,
    /// Did the validator reject the mutant?
    pub killed: bool,
    /// Findings the validator reported.
    pub findings: usize,
}

/// The result of a deterministic mutation campaign.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Number of candidate sites in the image.
    pub candidates: usize,
    /// One entry per (seed × operator) mutant.
    pub outcomes: Vec<MutantOutcome>,
}

impl MutationReport {
    /// Mutants the validator rejected.
    pub fn killed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.killed).count()
    }

    /// Total mutants generated.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// 100% kill rate (vacuously true with no candidates).
    pub fn all_killed(&self) -> bool {
        self.outcomes.iter().all(|o| o.killed)
    }
}

/// `splitmix64` — the same deterministic seed-stretching the fault-
/// injection campaigns use; no global RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Enumerates candidate mutation sites: `lbdls` instructions whose SRF
/// destination feeds a checked load/store in straight-line code with no
/// intervening redefinition. Restricting candidates this way makes
/// every mutant observably non-equivalent, so a sound validator must
/// kill 100% of them.
pub fn mutation_sites(program: &Program) -> Vec<usize> {
    let instrs = program.instrs();
    let mut out = Vec::new();
    'sites: for (i, ins) in instrs.iter().enumerate() {
        let Instr::Lbdls { rd, .. } = *ins else {
            continue;
        };
        // T2 is the metadata shuttle for shadow-to-shadow copies; its
        // loads feed sbdl/sbdu, not checks, and are judged by the
        // pair-coherence rule instead.
        if rd == Reg::T2 || rd.is_zero() {
            continue;
        }
        for later in &instrs[i + 1..] {
            match *later {
                Instr::Load {
                    rs1, checked: true, ..
                } if rs1 == rd => {
                    out.push(i);
                    continue 'sites;
                }
                Instr::Store {
                    rs1, checked: true, ..
                } if rs1 == rd => {
                    out.push(i);
                    continue 'sites;
                }
                // Control flow, calls or a tchk consumer: give up on
                // this site (tchk consumes the *upper* half, so a
                // lower-half mutation could be equivalent).
                Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Branch { .. }
                | Instr::Ecall
                | Instr::Ebreak
                | Instr::Tchk { .. } => continue 'sites,
                // Re-population or SRF clobber of the same entry masks
                // the mutation.
                Instr::Lbdls { rd: r2, .. } | Instr::SrfMv { rd: r2, .. } if r2 == rd => {
                    continue 'sites
                }
                Instr::SrfClr { rd: r2 } if r2 == rd => continue 'sites,
                _ => {
                    if gpr_def(later) == Some(rd) {
                        continue 'sites;
                    }
                }
            }
        }
    }
    out
}

/// Applies `m` at `site` (an index from [`mutation_sites`]) and returns
/// the corrupted program. A site that is not an `lbdls` is returned
/// unchanged — the campaign never panics on a stale site list.
pub fn mutate(program: &Program, site: usize, m: Mutation) -> Program {
    let mut instrs = program.instrs().to_vec();
    if let Some(Instr::Lbdls { rd, rs1, offset }) = instrs.get(site).copied() {
        instrs[site] = match m {
            Mutation::DropMetaLoad => Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::Zero,
                rs1: Reg::Zero,
                imm: 0,
            },
            Mutation::SkewShadowOffset => Instr::Lbdls {
                rd,
                rs1,
                offset: offset + 8,
            },
            Mutation::SwapShadowReg => Instr::Lbdls {
                rd: Reg::T2,
                rs1,
                offset,
            },
        };
    }
    Program::from_instrs(program.base(), instrs)
}

/// Runs the deterministic mutation campaign for `module` × `scheme`:
/// for every seed and every operator, one site is chosen by
/// `splitmix64`, mutated, and re-validated against the unchanged plan.
///
/// # Errors
///
/// Returns a [`CompileError`] for analysis/lowering failures.
pub fn mutation_campaign(
    module: &Module,
    scheme: Scheme,
    seeds: &[u64],
) -> Result<MutationReport, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    let (program, plan) = lower_with_plan(&instrumented, scheme)?;
    let sites = mutation_sites(&program);
    let mut report = MutationReport {
        candidates: sites.len(),
        outcomes: Vec::new(),
    };
    if sites.is_empty() {
        return Ok(report);
    }
    for &seed in seeds {
        for (mi, &m) in Mutation::ALL.iter().enumerate() {
            let pick = splitmix64(seed ^ (mi as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            let site = sites[(pick % sites.len() as u64) as usize];
            let mutant = mutate(&program, site, m);
            let r = validate(
                &mutant,
                &plan,
                CompressionConfig::SPEC_DEFAULT,
                MemoryLayout::default(),
            );
            let pc = program.base() + site as u64 * 4;
            report.outcomes.push(MutantOutcome {
                mutation: m.name(),
                seed,
                site,
                pc,
                func: plan
                    .func_at_pc(pc)
                    .map_or_else(|| "<shim>".to_string(), |f| f.name.clone()),
                killed: !r.ok(),
                findings: r.findings.len(),
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Width;
    use crate::ModuleBuilder;

    /// Heap, stack, global and cross-function pointer traffic — enough
    /// to exercise every lowering arm the validator models.
    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 32);
        let mut f = mb.func("sink");
        let q = f.param(true);
        let v = f.konst(1);
        f.store(v, q, 0, Width::U8);
        f.ret(None);
        f.finish();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        let _ = f.load(p, 8, Width::U32);
        let s = f.stack_alloc(16);
        let ga = f.addr_of_global(g);
        f.store(v, s, 8, Width::U64);
        f.store(v, ga, 0, Width::U64);
        f.call_void("sink", &[s]);
        let cell = f.malloc_bytes(8);
        f.store_ptr(s, cell, 0);
        let r = f.load_ptr(cell, 0);
        let _ = f.load(r, 0, Width::U8);
        f.free(p);
        f.free(cell);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    fn lower(scheme: Scheme) -> (Program, LowerPlan) {
        let m = sample_module();
        let info = analysis::analyze(&m).unwrap();
        let inst = instrument::instrument(&m, &info, scheme);
        lower_with_plan(&inst, scheme).unwrap()
    }

    #[test]
    fn clean_lowering_validates_under_every_scheme() {
        for scheme in Scheme::ALL {
            let m = sample_module();
            let r = validate_module(&m, scheme).unwrap();
            assert!(
                r.ok(),
                "{scheme:?}: {:?}",
                r.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn translation_validation_agrees_on_clean_input() {
        for scheme in Scheme::ALL {
            let m = sample_module();
            for rce in [false, true] {
                let tv = translation_validate_with(&m, scheme, rce).unwrap();
                assert!(!tv.diverged(), "{scheme:?} rce={rce}: {:?}", tv.ir_error);
                assert!(tv.ok());
            }
        }
    }

    #[test]
    fn hardware_schemes_have_mutation_candidates() {
        for scheme in [Scheme::Hwst128, Scheme::Hwst128Tchk, Scheme::Shore] {
            let (program, _) = lower(scheme);
            assert!(
                !mutation_sites(&program).is_empty(),
                "{scheme:?}: no candidate sites"
            );
        }
        let (program, _) = lower(Scheme::Sbcets);
        assert!(mutation_sites(&program).is_empty());
    }

    #[test]
    fn every_mutation_operator_is_killed() {
        let (program, plan) = lower(Scheme::Hwst128Tchk);
        for &site in &mutation_sites(&program) {
            for m in Mutation::ALL {
                let mutant = mutate(&program, site, m);
                let r = validate(
                    &mutant,
                    &plan,
                    CompressionConfig::SPEC_DEFAULT,
                    MemoryLayout::default(),
                );
                assert!(!r.ok(), "{} at site {site} survived validation", m.name());
            }
        }
    }

    #[test]
    fn dropped_meta_load_is_an_srf_emptiness_finding() {
        let (program, plan) = lower(Scheme::Hwst128);
        let sites = mutation_sites(&program);
        let mutant = mutate(&program, sites[0], Mutation::DropMetaLoad);
        let r = validate(
            &mutant,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(
            r.findings.iter().any(|f| f.code == "CHECK_SRF_EMPTY"),
            "{:?}",
            r.findings.iter().map(|f| f.code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unchecking_a_planned_access_is_flagged() {
        let (program, plan) = lower(Scheme::Hwst128);
        let at = plan.funcs.iter().flat_map(|f| &f.checks).next().unwrap().at;
        let mut instrs = program.instrs().to_vec();
        match &mut instrs[at] {
            Instr::Load { checked, .. } | Instr::Store { checked, .. } => *checked = false,
            other => panic!("plan site is not an access: {other:?}"),
        }
        let stripped = Program::from_instrs(program.base(), instrs);
        let r = validate(
            &stripped,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(r.findings.iter().any(|f| f.code == "PLAN_DANGLING"));
    }

    #[test]
    fn undersized_lock_field_is_a_config_finding() {
        // EMBEDDED has a 16-bit lock field; the default layout carries
        // 2^20 lock slots.
        let (program, plan) = lower(Scheme::Hwst128Tchk);
        let r = validate(
            &program,
            &plan,
            CompressionConfig::EMBEDDED,
            MemoryLayout::default(),
        );
        assert!(r.findings.iter().any(|f| f.code == "CONFIG_LOCK_RANGE"));
    }

    #[test]
    fn hardware_instructions_under_software_scheme_are_flagged() {
        let (program, mut plan) = lower(Scheme::Hwst128);
        plan.scheme = Scheme::Sbcets;
        let r = validate(
            &program,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(r.findings.iter().any(|f| f.code == "SCHEME_VIOLATION"));
    }

    #[test]
    fn campaign_is_deterministic() {
        let m = sample_module();
        let a = mutation_campaign(&m, Scheme::Hwst128, &[7, 11]).unwrap();
        let b = mutation_campaign(&m, Scheme::Hwst128, &[7, 11]).unwrap();
        assert_eq!(a.total(), b.total());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!((x.site, x.killed, x.seed), (y.site, y.killed, y.seed));
        }
        assert!(a.all_killed());
    }

    #[test]
    fn finding_display_is_stable() {
        let f = Finding {
            class: FindingClass::Lowering,
            code: "CHECK_SRF_EMPTY",
            func: "main".into(),
            at: 3,
            pc: 0x1000c,
            cwe: None,
            message: "x".into(),
        };
        assert_eq!(
            f.to_string(),
            "lowering: [CHECK_SRF_EMPTY] main+3 (pc 0x1000c): x"
        );
    }
}
