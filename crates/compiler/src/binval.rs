//! Binary-level translation validation for the HWST128 lowering.
//!
//! The static passes in [`crate::lint`], [`crate::rce`] and
//! [`crate::verify`] all reason about the *IR*. Nothing there says
//! anything about the artifact that actually runs: if the `-O0`
//! back-end in `lower.rs` drops a metadata load, skews a shadow-map
//! offset, or pairs the wrong shadow register with a checked access,
//! every safety claim the repo makes is silently void. This module
//! closes that gap with an abstract interpreter over the *machine
//! code*: it decodes nothing the compiler tells it about semantics —
//! it re-derives the instrumentation structure from the instruction
//! stream itself (via [`hwst_isa::cfg`] CFG recovery) and uses the
//! [`LowerPlan`] side-tables only for function extents, frame geometry
//! and the IR-check ↔ instruction correspondence.
//!
//! # Abstract domain
//!
//! Per machine register the interpreter tracks a product of
//!
//! * a **numeric value** (`Num`): an exact constant, an offset from
//!   the function's entry stack pointer, or ⊤, and
//! * a **provenance** (`Prov`): "this value is the current content
//!   of frame slot *s*", the machine-level image of the IR's
//!   home-slot discipline.
//!
//! Alongside the GPR file it mirrors the shadow register file: for
//! each SRF entry half it tracks *where the metadata came from*
//! (`MetaSrc`) and, when statically known, the decompressed bounds
//! (`Bounds`). Finally it tracks which frame-slot shadow words have
//! been written on **every** path (a must-analysis; joins intersect).
//!
//! # What is proven (per function)
//!
//! * **(a) check/metadata correspondence** — every checked load/store
//!   consumes an SRF entry populated by an `lbdls` from the *same*
//!   home slot the address register was loaded from (the hardware
//!   silently skips the check when the entry is empty or zero — see
//!   `hwst_sim::exec::spatial_check` — so a dropped metadata load
//!   *disables* checking without any observable trap);
//! * **(b) shadow-map addressing** — every `sbdl`/`sbdu` targets a
//!   valid container (an in-frame, 8-aligned slot, or a
//!   pointer-provenanced heap/global container), stores a populated
//!   SRF half, and same-container pairs store coherently-sourced
//!   halves; the LMSM address itself (Eq. 1: `(addr << 2) + offset`)
//!   is applied uniformly by the hardware, so validity reduces to
//!   container validity plus the global layout checks;
//! * **(c) compression-config consistency** — `bndrs`/`bndrt` operands
//!   that are statically constant must be representable under the
//!   active compression config, and the config must cover the layout
//!   (base field spans the user address space, lock field spans the
//!   lock region);
//! * **(d) no silent pointer escape** — a pointer-provenanced value
//!   parked into a pointer home slot requires a shadow store to that
//!   slot somewhere in the function, and a pointer stored through a
//!   pointer (a heap escape) requires a through-pointer shadow store.
//!
//! Checks (a)–(c) are flow-sensitive over the recovered machine CFG;
//! (d) is a flow-insensitive per-function check.
//!
//! When the image was produced with the static bounds-proof pass
//! ([`crate::bounds`]), a fifth obligation applies
//! ([`validate_with_elim`]):
//!
//! * **(e) elimination witnesses** — every check the instrumenter
//!   skipped must carry an arithmetically valid proof witness that
//!   resolves to a real check site, and — under
//!   [`Scheme::Hwst128Tchk`] — every checked access whose home slot is
//!   not temporally covered by a reachable `tchk` (directly or through
//!   the parked-pointer copy chain) must be one of the witnessed
//!   sites. An image that dropped a `tchk` without a valid witness
//!   fails validation with a `TCHK_ELIDED` finding; forged witnesses
//!   fail with `WITNESS_INVALID` / `WITNESS_DANGLING`. The
//!   [`witness_campaign`] self-test forges witnesses five different
//!   ways and requires a 100% kill rate.
//!
//! # What is *not* proven
//!
//! This is translation validation, not verification: the validator
//! proves that the lowering *preserved the instrumentation structure*,
//! not that the metadata values are functionally correct, and not that
//! the program is memory-safe (that is the hardware's job at run
//! time). Calls havoc all registers and the whole SRF; slot shadows
//! and slot contents below the alloca region survive calls because
//! home slots are compiler-internal and never address-taken.
//!
//! As a byproduct the interpreter *discharges* checks statically: a
//! checked access whose address and bounds are both known (globals,
//! allocas) is proven in- or out-of-bounds, and a repeated check of an
//! unmodified slot pointer is proven redundant. These counts feed the
//! A9 ablation (checks discharged at binary level beyond IR-level
//! RCE); statically-proven violations are reported as
//! [`FindingClass::StaticBug`] with a CWE class and do **not** fail
//! validation.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hwst_isa::cfg;
use hwst_isa::{AluImmOp, AluOp, Instr, LoadWidth, Program, Reg, StoreWidth};
use hwst_mem::MemoryLayout;
use hwst_metadata::{CompressionConfig, ShadowCodec};

use crate::bounds::{self, Witness};
use crate::instrument::{self, Scheme, SkippedCheck};
use crate::ir::Module;
use crate::lower::{lower_with_plan, lower_with_plan_opt, CheckSite, FnPlan, LowerPlan, OptLevel};
use crate::{analysis, rce, verify, CompileError};

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// How a finding bears on validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingClass {
    /// The lowering violated the instrumentation contract. Any such
    /// finding fails validation ([`BinvalReport::ok`]).
    Lowering,
    /// The *program* provably violates memory safety (the lowering is
    /// fine — the check is present and will fire). Reported with a CWE
    /// class; does not fail validation.
    StaticBug,
}

/// One validator diagnostic, anchored to an emitted instruction.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lowering defect vs. statically-proven program bug.
    pub class: FindingClass,
    /// Stable machine-readable code (e.g. `CHECK_SRF_EMPTY`).
    pub code: &'static str,
    /// Containing function (or `<image>` for global findings).
    pub func: String,
    /// Program-wide instruction index.
    pub at: usize,
    /// Absolute PC of the instruction.
    pub pc: u64,
    /// CWE class for [`FindingClass::StaticBug`] findings.
    pub cwe: Option<u16>,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.class {
            FindingClass::Lowering => "lowering",
            FindingClass::StaticBug => "static-bug",
        };
        write!(
            f,
            "{kind}: [{code}] {func}+{at} (pc {pc:#x}): {msg}",
            code = self.code,
            func = self.func,
            at = self.at,
            pc = self.pc,
            msg = self.message
        )?;
        if let Some(c) = self.cwe {
            write!(f, " [CWE-{c}]")?;
        }
        Ok(())
    }
}

/// Per-function validation statistics (the A9 ablation inputs).
#[derive(Debug, Clone, Default)]
pub struct FnReport {
    /// Function name.
    pub name: String,
    /// Checked loads/stores encountered (reachable code).
    pub checked_ops: usize,
    /// `tchk` instructions encountered.
    pub tchk_ops: usize,
    /// `lbdls`/`lbdus` metadata loads encountered.
    pub meta_loads: usize,
    /// `sbdl`/`sbdu` shadow stores encountered.
    pub shadow_stores: usize,
    /// Checked ops proven in-bounds from statically-known address and
    /// bounds.
    pub discharged_in_bounds: usize,
    /// Checked ops proven redundant with an earlier identical check of
    /// an unmodified slot pointer.
    pub discharged_redundant: usize,
    /// Checked sites whose temporal check was elided under a bounds
    /// witness (counted only when validating with an [`ElimPlan`]).
    pub tchk_witnessed: usize,
}

impl FnReport {
    /// Total checks statically discharged at binary level.
    pub fn discharged(&self) -> usize {
        self.discharged_in_bounds + self.discharged_redundant
    }
}

/// The result of validating one lowered image.
#[derive(Debug, Clone)]
pub struct BinvalReport {
    /// The scheme the image was lowered for.
    pub scheme: Scheme,
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Per-function statistics, in emission order.
    pub funcs: Vec<FnReport>,
}

impl BinvalReport {
    /// `true` when no [`FindingClass::Lowering`] finding was reported.
    pub fn ok(&self) -> bool {
        self.lowering_findings() == 0
    }

    /// Number of lowering (validation-failing) findings.
    pub fn lowering_findings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.class == FindingClass::Lowering)
            .count()
    }

    /// Number of statically-proven program bugs.
    pub fn static_bugs(&self) -> usize {
        self.findings.len() - self.lowering_findings()
    }

    /// Total checked operations across all functions.
    pub fn checked_ops(&self) -> usize {
        self.funcs.iter().map(|f| f.checked_ops).sum()
    }

    /// Total checks statically discharged across all functions.
    pub fn discharged(&self) -> usize {
        self.funcs.iter().map(|f| f.discharged()).sum()
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract numeric value: ⊤, an exact constant, or an offset from the
/// function's *entry* stack pointer (so the post-prologue `sp` is
/// `Sp(-frame_size)` and the address of frame slot `s` is
/// `Sp(s - frame_size)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Num {
    Top,
    Const(u64),
    Sp(i64),
}

/// Abstract provenance: is this value the current content of a frame
/// slot? `exact` means the value equals the slot content (a plain
/// reload yields the same value); inexact provenance survives pointer
/// arithmetic and is enough for the correspondence check but not for
/// redundancy discharge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prov {
    None,
    Slot { off: i64, exact: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsVal {
    prov: Prov,
    num: Num,
}

const TOP: AbsVal = AbsVal {
    prov: Prov::None,
    num: Num::Top,
};

/// Where an SRF half's metadata came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MetaSrc {
    /// Loaded from the shadow word of frame slot `s`.
    Slot(i64),
    /// Loaded from a heap or global container's shadow word.
    Dyn,
    /// Produced in-register by `bndrs`/`bndrt`.
    Fresh,
}

/// Statically-known spatial bounds (half-open `[base, bound)`),
/// either absolute or entry-`sp`-relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bounds {
    Const(u64, u64),
    Sp(i64, i64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SrfHalf {
    src: MetaSrc,
    bounds: Option<Bounds>,
}

/// The per-program-point abstract state. All compound members are
/// must-information: joins intersect.
#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    regs: [AbsVal; 32],
    srf_l: [Option<SrfHalf>; 32],
    srf_u: [Option<SrfHalf>; 32],
    /// Known contents of frame slots (keyed by frame offset).
    vals: BTreeMap<i64, Num>,
    /// Frame-slot shadow words (lower half) written on every path,
    /// with their content's bounds when statically known.
    shadow_l: BTreeMap<i64, Option<Bounds>>,
    /// Frame-slot shadow words (upper half) written on every path.
    shadow_u: BTreeSet<i64>,
    /// Checks already performed: (pointer slot, access offset, bytes).
    done: BTreeSet<(i64, i64, u64)>,
}

impl AbsState {
    fn entry() -> Self {
        let mut regs = [TOP; 32];
        regs[Reg::Zero.index() as usize].num = Num::Const(0);
        regs[Reg::Sp.index() as usize].num = Num::Sp(0);
        AbsState {
            regs,
            srf_l: [None; 32],
            srf_u: [None; 32],
            vals: BTreeMap::new(),
            shadow_l: BTreeMap::new(),
            shadow_u: BTreeSet::new(),
            done: BTreeSet::new(),
        }
    }
}

fn join_num(a: Num, b: Num) -> Num {
    if a == b {
        a
    } else {
        Num::Top
    }
}

fn join_prov(a: Prov, b: Prov) -> Prov {
    match (a, b) {
        (Prov::Slot { off: oa, exact: ea }, Prov::Slot { off: ob, exact: eb }) if oa == ob => {
            Prov::Slot {
                off: oa,
                exact: ea && eb,
            }
        }
        _ => Prov::None,
    }
}

fn join_half(a: Option<SrfHalf>, b: Option<SrfHalf>) -> Option<SrfHalf> {
    match (a, b) {
        (Some(x), Some(y)) if x.src == y.src => Some(SrfHalf {
            src: x.src,
            bounds: if x.bounds == y.bounds { x.bounds } else { None },
        }),
        _ => None,
    }
}

fn join(a: &AbsState, b: &AbsState) -> AbsState {
    let mut regs = [TOP; 32];
    let mut srf_l = [None; 32];
    let mut srf_u = [None; 32];
    for i in 0..32 {
        regs[i] = AbsVal {
            prov: join_prov(a.regs[i].prov, b.regs[i].prov),
            num: join_num(a.regs[i].num, b.regs[i].num),
        };
        srf_l[i] = join_half(a.srf_l[i], b.srf_l[i]);
        srf_u[i] = join_half(a.srf_u[i], b.srf_u[i]);
    }
    let vals = a
        .vals
        .iter()
        .filter(|(k, v)| b.vals.get(k) == Some(v))
        .map(|(&k, &v)| (k, v))
        .collect();
    let shadow_l = a
        .shadow_l
        .iter()
        .filter_map(|(&k, &v)| {
            b.shadow_l
                .get(&k)
                .map(|&bv| (k, if v == bv { v } else { None }))
        })
        .collect();
    let shadow_u = a.shadow_u.intersection(&b.shadow_u).copied().collect();
    let done = a.done.intersection(&b.done).copied().collect();
    AbsState {
        regs,
        srf_l,
        srf_u,
        vals,
        shadow_l,
        shadow_u,
        done,
    }
}

// ---------------------------------------------------------------------------
// The per-function interpreter
// ---------------------------------------------------------------------------

/// Where a shadow access lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Container {
    /// A frame slot, by frame offset.
    Slot(i64),
    /// A statically-known absolute address (a global / `__meta` area).
    Global(u64),
    /// Through a pointer whose home slot is known.
    Dyn(i64),
    /// No idea where this lands.
    Unknown,
}

/// Key for `sbdl`/`sbdu` pair-coherence tracking within a block:
/// syntactic base register + offset + resolved container.
type PairKey = (u8, i64, Container);

struct FnInterp<'a> {
    instrs: &'a [Instr],
    base: u64,
    plan: &'a FnPlan,
    scheme: Scheme,
    codec: ShadowCodec,
    fs: i64,
    ptr_slots: BTreeSet<i64>,
    check_at: HashMap<usize, &'a CheckSite>,
    /// Emit findings/stats (final pass) vs. fixpoint-only.
    emit: bool,
    findings: Vec<Finding>,
    stats: FnReport,
    // Flow-insensitive escape accounting (check d), emit pass only.
    ptr_store_slots: BTreeSet<(usize, i64)>,
    sbdl_slots: BTreeSet<i64>,
    /// Reachable `sbdl` instructions targeting a dynamic (heap/global)
    /// container — the machine image of the IR's `MetaStore` copies.
    sbdl_dyn: usize,
    // Temporal-coverage accounting (check e), emit pass only.
    /// Reachable `tchk` instructions and the home slot whose pointer
    /// each one consumed.
    tchk_sites: Vec<(usize, i64)>,
    /// A reachable `tchk` consumed a pointer of unknown provenance —
    /// the coverage obligation is skipped for this function.
    tchk_unknown: bool,
    /// Parked-pointer copy edges, destination slot → source slots: a
    /// store into pointer slot `d` of a value derived from pointer
    /// slot `s` records `d → s`, so a `tchk` of `s` temporally covers
    /// accesses through `d` (same pointer value, same key).
    copy_edges: BTreeMap<i64, BTreeSet<i64>>,
    /// Emit-pass slot-source tracking feeding [`FnInterp::copy_edges`]:
    /// for each GPR, the set of frame slots its current value could
    /// derive from. Deliberately separate from [`Prov`], which must
    /// stay a *single* object for the spatial checks — a derived
    /// pointer (`ld` base, `add` a loaded index, `sd`) mixes two
    /// slot-sourced registers, and coverage wants the union, not
    /// `Prov::None`. Reset at block entry (lowered code never carries
    /// live values across blocks in registers).
    reg_srcs: Vec<BTreeSet<i64>>,
    /// Interned virtual source ids for heap cells `(container slot,
    /// offset)`, so two loads of the same cell share a source and a
    /// pointer stored through one name and reloaded through another
    /// stays on the coverage graph. Ids are negative — they can never
    /// collide with a frame slot.
    heap_srcs: BTreeMap<(i64, i64), i64>,
}

fn num_add(n: Num, d: i64) -> Num {
    match n {
        Num::Top => Num::Top,
        Num::Const(c) => Num::Const(c.wrapping_add(d as u64)),
        Num::Sp(o) => Num::Sp(o.wrapping_add(d)),
    }
}

fn eval_alu_imm(op: AluImmOp, n: Num, imm: i64) -> Num {
    match (op, n) {
        (AluImmOp::Addi, _) => num_add(n, imm),
        (_, Num::Const(c)) => Num::Const(op.eval(c, imm)),
        _ => Num::Top,
    }
}

fn eval_alu(op: AluOp, a: Num, b: Num) -> Num {
    match (op, a, b) {
        (_, Num::Const(x), Num::Const(y)) => Num::Const(op.eval(x, y)),
        (AluOp::Add, Num::Sp(d), Num::Const(c)) | (AluOp::Add, Num::Const(c), Num::Sp(d)) => {
            Num::Sp(d.wrapping_add(c as i64))
        }
        (AluOp::Sub, Num::Sp(d), Num::Const(c)) => Num::Sp(d.wrapping_sub(c as i64)),
        (AluOp::Sub, Num::Sp(x), Num::Sp(y)) => Num::Const(x.wrapping_sub(y) as u64),
        _ => Num::Top,
    }
}

/// Which GPR does `i` define, if any? (SRF-only writers like `lbdls`
/// do not count.)
fn gpr_def(i: &Instr) -> Option<Reg> {
    match *i {
        Instr::Lui { rd, .. }
        | Instr::Auipc { rd, .. }
        | Instr::Alu { rd, .. }
        | Instr::AluImm { rd, .. }
        | Instr::Load { rd, .. }
        | Instr::Csr { rd, .. }
        | Instr::Lbas { rd, .. }
        | Instr::Lbnd { rd, .. }
        | Instr::Lkey { rd, .. }
        | Instr::Lloc { rd, .. } => Some(rd),
        _ => None,
    }
}

impl<'a> FnInterp<'a> {
    fn new(
        instrs: &'a [Instr],
        base: u64,
        plan: &'a FnPlan,
        scheme: Scheme,
        codec: ShadowCodec,
    ) -> Self {
        FnInterp {
            instrs,
            base,
            plan,
            scheme,
            codec,
            fs: plan.frame_size,
            ptr_slots: plan.ptr_slots.iter().copied().collect(),
            check_at: plan.checks.iter().map(|c| (c.at, c)).collect(),
            emit: false,
            findings: Vec::new(),
            stats: FnReport {
                name: plan.name.clone(),
                ..FnReport::default()
            },
            ptr_store_slots: BTreeSet::new(),
            sbdl_slots: BTreeSet::new(),
            sbdl_dyn: 0,
            tchk_sites: Vec::new(),
            tchk_unknown: false,
            copy_edges: BTreeMap::new(),
            reg_srcs: vec![BTreeSet::new(); 32],
            heap_srcs: BTreeMap::new(),
        }
    }

    /// The virtual source id of heap cell `(container, offset)`.
    fn heap_src(&mut self, container: i64, offset: i64) -> i64 {
        let n = self.heap_srcs.len() as i64;
        *self
            .heap_srcs
            .entry((container, offset))
            .or_insert(-(n + 1))
    }

    /// The slot-source set of `r` (empty for `x0` and unknown values).
    fn srcs(&self, r: Reg) -> BTreeSet<i64> {
        self.reg_srcs[r.index() as usize].clone()
    }

    fn set_srcs(&mut self, rd: Reg, s: BTreeSet<i64>) {
        if !rd.is_zero() {
            self.reg_srcs[rd.index() as usize] = s;
        }
    }

    /// Emit-pass-only update of [`FnInterp::reg_srcs`] /
    /// [`FnInterp::copy_edges`] from the *pre*-instruction state:
    /// frame-slot loads seed a register's source set, ALU ops
    /// propagate and union it, any other definition (including a
    /// call's clobber) clears it, and a store into a frame slot
    /// records the destination→sources edges.
    fn track_srcs(&mut self, st: &AbsState, i: &Instr) {
        match *i {
            Instr::Load {
                rd, rs1, offset, ..
            } => {
                let a = st.regs[rs1.index() as usize];
                let mut s = BTreeSet::new();
                match num_add(a.num, offset) {
                    Num::Sp(d) => {
                        s.insert(d.wrapping_add(self.fs));
                    }
                    _ => {
                        // A load through a slot-homed pointer reads a
                        // nameable heap cell.
                        if let Prov::Slot { off, exact: true } = a.prov {
                            s.insert(self.heap_src(off, offset));
                        }
                    }
                }
                self.set_srcs(rd, s);
            }
            Instr::AluImm { rd, rs1, .. } => {
                let s = self.srcs(rs1);
                self.set_srcs(rd, s);
            }
            Instr::Alu { rd, rs1, rs2, .. } => {
                let mut s = self.srcs(rs1);
                s.extend(self.srcs(rs2));
                self.set_srcs(rd, s);
            }
            Instr::Store {
                rs1, rs2, offset, ..
            } => {
                let a = st.regs[rs1.index() as usize];
                let dest = match num_add(a.num, offset) {
                    Num::Sp(d) => Some(d.wrapping_add(self.fs)),
                    _ => match a.prov {
                        Prov::Slot { off, exact: true } => Some(self.heap_src(off, offset)),
                        _ => None,
                    },
                };
                let srcs = self.srcs(rs2);
                if let Some(d) = dest {
                    if !srcs.is_empty() {
                        self.copy_edges.entry(d).or_default().extend(srcs);
                    }
                }
            }
            Instr::Jal { rd, .. } => {
                if !rd.is_zero() {
                    for s in &mut self.reg_srcs {
                        s.clear();
                    }
                }
            }
            _ => {
                if let Some(rd) = gpr_def(i) {
                    self.set_srcs(rd, BTreeSet::new());
                }
            }
        }
    }

    fn pc(&self, at: usize) -> u64 {
        self.base + at as u64 * 4
    }

    fn finding(&mut self, class: FindingClass, code: &'static str, at: usize, message: String) {
        self.finding_cwe(class, code, at, None, message);
    }

    fn finding_cwe(
        &mut self,
        class: FindingClass,
        code: &'static str,
        at: usize,
        cwe: Option<u16>,
        message: String,
    ) {
        if self.emit {
            self.findings.push(Finding {
                class,
                code,
                func: self.plan.name.clone(),
                at,
                pc: self.pc(at),
                cwe,
                message,
            });
        }
    }

    /// Is `s` a plausible frame-slot container for shadow traffic?
    /// Slot 0 is the return-address slot and never carries metadata.
    fn valid_slot(&self, s: i64) -> bool {
        s >= 8 && s < self.fs && s % 8 == 0
    }

    fn set_reg(&self, st: &mut AbsState, rd: Reg, v: AbsVal) {
        if !rd.is_zero() {
            st.regs[rd.index() as usize] = v;
        }
    }

    fn srf_clear(&self, st: &mut AbsState, rd: Reg) {
        let r = rd.index() as usize;
        st.srf_l[r] = None;
        st.srf_u[r] = None;
    }

    /// Mirrors `Srf::propagate`: copy the first source whose entry is
    /// (known) valid; otherwise invalidate.
    fn srf_propagate(&self, st: &mut AbsState, rd: Reg, rs1: Reg, rs2: Option<Reg>) {
        if rd.is_zero() {
            return;
        }
        let valid = |st: &AbsState, r: Reg| {
            let i = r.index() as usize;
            st.srf_l[i].is_some() || st.srf_u[i].is_some()
        };
        let src = if valid(st, rs1) {
            Some(rs1)
        } else {
            rs2.filter(|&r| valid(st, r))
        };
        let d = rd.index() as usize;
        match src {
            Some(r) => {
                let s = r.index() as usize;
                st.srf_l[d] = st.srf_l[s];
                st.srf_u[d] = st.srf_u[s];
            }
            None => {
                st.srf_l[d] = None;
                st.srf_u[d] = None;
            }
        }
    }

    /// Value changed at frame offset `s`: provenance into that slot is
    /// stale, prior checks of the pointer it held no longer discharge
    /// later ones, and any statically-known shadow *content* for it is
    /// no longer trustworthy (the shadow word itself stays written).
    fn kill_slot(&self, st: &mut AbsState, s: i64) {
        for r in st.regs.iter_mut() {
            if matches!(r.prov, Prov::Slot { off, .. } if off == s) {
                r.prov = Prov::None;
            }
        }
        st.done.retain(|&(sl, _, _)| sl != s);
        if let Some(b) = st.shadow_l.get_mut(&s) {
            *b = None;
        }
    }

    fn call_havoc(&self, st: &mut AbsState) {
        let sp = Reg::Sp.index() as usize;
        let zero = Reg::Zero.index() as usize;
        for (i, r) in st.regs.iter_mut().enumerate() {
            if i != sp && i != zero {
                *r = TOP;
            }
        }
        st.srf_l = [None; 32];
        st.srf_u = [None; 32];
        // The callee can reach our alloca areas through escaped
        // pointers, but never our home slots or spill locals (they are
        // compiler-internal and not address-taken). Shadow words of
        // home slots survive for the same reason.
        let ab = self.plan.alloca_base;
        st.vals.retain(|&k, _| k < ab);
    }

    fn container_of(&self, st: &AbsState, rs1: Reg, offset: i64) -> Container {
        let v = st.regs[rs1.index() as usize];
        match num_add(v.num, offset) {
            Num::Sp(d) => Container::Slot(d.wrapping_add(self.fs)),
            Num::Const(c) => Container::Global(c),
            Num::Top => match v.prov {
                Prov::Slot { off, .. } => Container::Dyn(off),
                Prov::None => Container::Unknown,
            },
        }
    }

    /// Check (a) at a checked load/store, plus the A9 discharge
    /// accounting and static bounds evaluation.
    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &mut self,
        st: &mut AbsState,
        at: usize,
        rs1: Reg,
        offset: i64,
        bytes: u64,
        is_store: bool,
    ) {
        if self.emit {
            self.stats.checked_ops += 1;
        }
        let rv = st.regs[rs1.index() as usize];
        let slot = match rv.prov {
            Prov::Slot { off, .. } if self.ptr_slots.contains(&off) => off,
            _ => {
                self.finding(
                    FindingClass::Lowering,
                    "CHECK_ADDR_UNKNOWN",
                    at,
                    format!(
                        "checked {} consumes an address of unknown pointer provenance",
                        if is_store { "store" } else { "load" }
                    ),
                );
                return;
            }
        };
        let half = st.srf_l[rs1.index() as usize];
        let half = match half {
            None => {
                self.finding(
                    FindingClass::Lowering,
                    "CHECK_SRF_EMPTY",
                    at,
                    format!(
                        "checked {} consumes SRF[{rs1}] which is not populated on every \
                         path — the hardware silently skips the bounds check",
                        if is_store { "store" } else { "load" }
                    ),
                );
                return;
            }
            Some(h) => h,
        };
        match half.src {
            MetaSrc::Slot(ms) if ms == slot => {}
            MetaSrc::Fresh => {} // bounds bound in-register: still checked
            other => {
                self.finding(
                    FindingClass::Lowering,
                    "CHECK_SRF_MISMATCH",
                    at,
                    format!(
                        "checked access address comes from slot {slot} but SRF[{rs1}] \
                         was populated from {other:?} — the check guards the wrong metadata"
                    ),
                );
                return;
            }
        }
        // Lowering plan cross-check: the IR side-table must know this
        // site and agree on the slot.
        match self.check_at.get(&at) {
            None => self.finding(
                FindingClass::Lowering,
                "PLAN_MISSING",
                at,
                "checked instruction not recorded as an IR check site".to_string(),
            ),
            Some(site) if site.slot != slot => self.finding(
                FindingClass::Lowering,
                "PLAN_MISMATCH",
                at,
                format!(
                    "lowering plan maps this check to slot {}, machine state says {slot}",
                    site.slot
                ),
            ),
            Some(_) => {}
        }
        // Static discharge / static bug detection.
        let addr = num_add(rv.num, offset);
        let verdict = match (half.bounds, addr) {
            (Some(Bounds::Const(lo, hi)), Num::Const(a)) => {
                Some((a < lo, a.wrapping_add(bytes) > hi, a == 0, false))
            }
            (Some(Bounds::Sp(lo, hi)), Num::Sp(a)) => {
                Some((a < lo, a.wrapping_add(bytes as i64) > hi, false, true))
            }
            _ => None,
        };
        let mut discharged = false;
        if let Some((under, over, null, stack)) = verdict {
            if under || over {
                let cwe = if null {
                    476
                } else {
                    match (is_store, under) {
                        (true, true) => 124,
                        (true, false) => {
                            if stack {
                                121
                            } else {
                                122
                            }
                        }
                        (false, true) => 127,
                        (false, false) => 126,
                    }
                };
                self.finding_cwe(
                    FindingClass::StaticBug,
                    "STATIC_OOB",
                    at,
                    Some(cwe),
                    format!(
                        "access provably out of bounds: {bytes}-byte {} at statically-known \
                         address outside the bound metadata",
                        if is_store { "store" } else { "load" }
                    ),
                );
            } else {
                discharged = true;
                if self.emit {
                    self.stats.discharged_in_bounds += 1;
                }
            }
        }
        if let Prov::Slot { exact: true, .. } = rv.prov {
            let key = (slot, offset, bytes);
            if st.done.contains(&key) {
                if !discharged && self.emit {
                    self.stats.discharged_redundant += 1;
                }
            } else {
                st.done.insert(key);
            }
        }
    }

    fn transfer(
        &mut self,
        st: &mut AbsState,
        at: usize,
        pairs: &mut HashMap<PairKey, Option<MetaSrc>>,
    ) {
        let i = self.instrs[at];
        if self.emit {
            self.track_srcs(st, &i);
        }
        if !self.scheme.uses_hardware() {
            let hw = matches!(
                i,
                Instr::Bndrs { .. }
                    | Instr::Bndrt { .. }
                    | Instr::Sbdl { .. }
                    | Instr::Sbdu { .. }
                    | Instr::Lbdls { .. }
                    | Instr::Lbdus { .. }
                    | Instr::Lbas { .. }
                    | Instr::Lbnd { .. }
                    | Instr::Lkey { .. }
                    | Instr::Lloc { .. }
                    | Instr::Tchk { .. }
                    | Instr::SrfMv { .. }
                    | Instr::SrfClr { .. }
                    | Instr::Load { checked: true, .. }
                    | Instr::Store { checked: true, .. }
            );
            if hw {
                self.finding(
                    FindingClass::Lowering,
                    "SCHEME_VIOLATION",
                    at,
                    format!("HWST128 instruction emitted under scheme {:?}", self.scheme),
                );
            }
        }
        match i {
            Instr::Lui { rd, imm } => {
                self.set_reg(
                    st,
                    rd,
                    AbsVal {
                        prov: Prov::None,
                        num: Num::Const(imm as u64),
                    },
                );
                self.srf_clear(st, rd);
            }
            Instr::Auipc { rd, imm } => {
                self.set_reg(
                    st,
                    rd,
                    AbsVal {
                        prov: Prov::None,
                        num: Num::Const(self.pc(at).wrapping_add(imm as u64)),
                    },
                );
                self.srf_clear(st, rd);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let src = st.regs[rs1.index() as usize];
                let num = eval_alu_imm(op, src.num, imm);
                let prov = match src.prov {
                    Prov::Slot { off, exact } => Prov::Slot {
                        off,
                        exact: exact && op == AluImmOp::Addi && imm == 0,
                    },
                    Prov::None => Prov::None,
                };
                self.set_reg(st, rd, AbsVal { prov, num });
                self.srf_propagate(st, rd, rs1, None);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let a = st.regs[rs1.index() as usize];
                let b = st.regs[rs2.index() as usize];
                let num = eval_alu(op, a.num, b.num);
                // Pointer arithmetic keeps (inexact) provenance when
                // exactly one operand is pointer-provenanced.
                let prov = match (a.prov, b.prov) {
                    (Prov::Slot { off, .. }, Prov::None) | (Prov::None, Prov::Slot { off, .. }) => {
                        Prov::Slot { off, exact: false }
                    }
                    _ => Prov::None,
                };
                self.set_reg(st, rd, AbsVal { prov, num });
                self.srf_propagate(st, rd, rs1, Some(rs2));
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
                checked,
            } => {
                if checked {
                    self.check_access(st, at, rs1, offset, width.bytes(), false);
                }
                let addr = num_add(st.regs[rs1.index() as usize].num, offset);
                let v = if let Num::Sp(d) = addr {
                    let s = d.wrapping_add(self.fs);
                    let num = if width == LoadWidth::D {
                        st.vals.get(&s).copied().unwrap_or(Num::Top)
                    } else {
                        Num::Top
                    };
                    AbsVal {
                        prov: Prov::Slot {
                            off: s,
                            exact: true,
                        },
                        num,
                    }
                } else {
                    TOP
                };
                self.set_reg(st, rd, v);
                self.srf_clear(st, rd);
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
                checked,
            } => {
                if checked {
                    self.check_access(st, at, rs1, offset, width.bytes(), true);
                }
                let addr = num_add(st.regs[rs1.index() as usize].num, offset);
                let val = st.regs[rs2.index() as usize];
                match addr {
                    Num::Sp(d) => {
                        let s = d.wrapping_add(self.fs);
                        self.kill_slot(st, s);
                        if width == StoreWidth::D && val.num != Num::Top {
                            st.vals.insert(s, val.num);
                        } else {
                            st.vals.remove(&s);
                        }
                        // Store-forwarding: after a full-width store of
                        // a register into a pointer home slot, the
                        // register provably holds that slot's current
                        // value — exactly the fact the `-O1` cache
                        // relies on when a later checked access consumes
                        // the register without an intervening reload.
                        if width == StoreWidth::D && !rs2.is_zero() && self.ptr_slots.contains(&s) {
                            st.regs[rs2.index() as usize].prov = Prov::Slot {
                                off: s,
                                exact: true,
                            };
                        }
                        if self.emit {
                            if let Prov::Slot { off: p, .. } = val.prov {
                                if self.ptr_slots.contains(&p) && self.ptr_slots.contains(&s) {
                                    self.ptr_store_slots.insert((at, s));
                                }
                            }
                        }
                    }
                    Num::Const(_) | Num::Top => {
                        if addr == Num::Top {
                            // An unknown-target store may alias our
                            // alloca areas (never home slots/locals).
                            let ab = self.plan.alloca_base;
                            st.vals.retain(|&k, _| k < ab);
                        }
                    }
                }
            }
            Instr::Jal { rd, .. } => {
                if !rd.is_zero() {
                    self.call_havoc(st);
                }
            }
            Instr::Jalr { .. } | Instr::Branch { .. } | Instr::Fence | Instr::Ebreak => {}
            Instr::Csr { rd, .. } => {
                self.set_reg(st, rd, TOP);
                self.srf_clear(st, rd);
            }
            Instr::Ecall => {
                // Syscalls return in a0/a1 and clobber nothing else we
                // track; be conservative about the whole a-file.
                for r in [
                    Reg::A0,
                    Reg::A1,
                    Reg::A2,
                    Reg::A3,
                    Reg::A4,
                    Reg::A5,
                    Reg::A6,
                    Reg::A7,
                ] {
                    self.set_reg(st, r, TOP);
                    self.srf_clear(st, r);
                }
            }
            Instr::Bndrs { rd, rs1, rs2 } => {
                let a = st.regs[rs1.index() as usize].num;
                let b = st.regs[rs2.index() as usize].num;
                let bounds = match (a, b) {
                    (Num::Const(lo), Num::Const(hi)) => {
                        if let Err(e) = self.codec.compress_spatial(lo, hi) {
                            self.finding(
                                FindingClass::Lowering,
                                "COMPRESS_UNREPRESENTABLE",
                                at,
                                format!(
                                    "bndrs operands ({lo:#x}, {hi:#x}) not representable \
                                     under the active compression config: {e}"
                                ),
                            );
                        }
                        Some(Bounds::Const(lo, hi))
                    }
                    (Num::Sp(lo), Num::Sp(hi)) => Some(Bounds::Sp(lo, hi)),
                    _ => None,
                };
                if !rd.is_zero() {
                    st.srf_l[rd.index() as usize] = Some(SrfHalf {
                        src: MetaSrc::Fresh,
                        bounds,
                    });
                }
            }
            Instr::Bndrt { rd, rs1, rs2 } => {
                let k = st.regs[rs1.index() as usize].num;
                let l = st.regs[rs2.index() as usize].num;
                if let (Num::Const(key), Num::Const(lock)) = (k, l) {
                    if let Err(e) = self.codec.compress_temporal(key, lock) {
                        self.finding(
                            FindingClass::Lowering,
                            "COMPRESS_UNREPRESENTABLE",
                            at,
                            format!(
                                "bndrt operands ({key:#x}, {lock:#x}) not representable \
                                 under the active compression config: {e}"
                            ),
                        );
                    }
                }
                if !rd.is_zero() {
                    st.srf_u[rd.index() as usize] = Some(SrfHalf {
                        src: MetaSrc::Fresh,
                        bounds: None,
                    });
                }
            }
            Instr::Lbdls { rd, rs1, offset } => {
                if self.emit {
                    self.stats.meta_loads += 1;
                }
                let c = self.container_of(st, rs1, offset);
                let half = match c {
                    Container::Slot(s) => {
                        if !self.valid_slot(s) {
                            self.finding(
                                FindingClass::Lowering,
                                "BAD_CONTAINER",
                                at,
                                format!(
                                    "lbdls reads the shadow of frame offset {s}, which is \
                                     not a metadata-bearing slot"
                                ),
                            );
                            SrfHalf {
                                src: MetaSrc::Dyn,
                                bounds: None,
                            }
                        } else if let Some(&b) = st.shadow_l.get(&s) {
                            SrfHalf {
                                src: MetaSrc::Slot(s),
                                bounds: b,
                            }
                        } else {
                            self.finding(
                                FindingClass::Lowering,
                                "SHADOW_UNWRITTEN",
                                at,
                                format!(
                                    "lbdls reads slot {s}'s shadow word, but no sbdl wrote \
                                     it on every path to here — the loaded metadata is \
                                     unbound (reads as zero ⇒ checks silently pass)"
                                ),
                            );
                            SrfHalf {
                                src: MetaSrc::Slot(s),
                                bounds: None,
                            }
                        }
                    }
                    Container::Global(_) | Container::Dyn(_) => SrfHalf {
                        src: MetaSrc::Dyn,
                        bounds: None,
                    },
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "lbdls container address has unknown provenance".to_string(),
                        );
                        SrfHalf {
                            src: MetaSrc::Dyn,
                            bounds: None,
                        }
                    }
                };
                if !rd.is_zero() {
                    st.srf_l[rd.index() as usize] = Some(half);
                }
            }
            Instr::Lbdus { rd, rs1, offset } => {
                if self.emit {
                    self.stats.meta_loads += 1;
                }
                // An unwritten upper shadow word reads as zero, which
                // decompresses to lock 0 = "no temporal metadata" and
                // is benign — so no must-written check here.
                let src = match self.container_of(st, rs1, offset) {
                    Container::Slot(s) if self.valid_slot(s) => MetaSrc::Slot(s),
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "lbdus container address has unknown provenance".to_string(),
                        );
                        MetaSrc::Dyn
                    }
                    _ => MetaSrc::Dyn,
                };
                if !rd.is_zero() {
                    st.srf_u[rd.index() as usize] = Some(SrfHalf { src, bounds: None });
                }
            }
            Instr::Sbdl { rs1, rs2, offset } => {
                if self.emit {
                    self.stats.shadow_stores += 1;
                }
                let src = st.srf_l[rs2.index() as usize];
                if src.is_none() {
                    self.finding(
                        FindingClass::Lowering,
                        "SBD_UNPOPULATED",
                        at,
                        format!(
                            "sbdl stores SRF[{rs2}].lower which is not populated on every \
                             path — it would write zero bounds (checks silently pass)"
                        ),
                    );
                }
                let c = self.container_of(st, rs1, offset);
                match c {
                    Container::Slot(s) => {
                        if !self.valid_slot(s) {
                            self.finding(
                                FindingClass::Lowering,
                                "BAD_CONTAINER",
                                at,
                                format!(
                                    "sbdl writes the shadow of frame offset {s}, which is \
                                     not a metadata-bearing slot"
                                ),
                            );
                        } else {
                            st.shadow_l.insert(s, src.and_then(|h| h.bounds));
                            st.done.retain(|&(sl, _, _)| sl != s);
                            for (r, h) in st.srf_l.iter_mut().enumerate() {
                                if r != rs2.index() as usize
                                    && matches!(h, Some(x) if x.src == MetaSrc::Slot(s))
                                {
                                    *h = None;
                                }
                            }
                            if self.emit {
                                self.sbdl_slots.insert(s);
                            }
                        }
                    }
                    Container::Global(_) | Container::Dyn(_) => {
                        if self.emit {
                            self.sbdl_dyn += 1;
                        }
                    }
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "sbdl container address has unknown provenance".to_string(),
                        );
                    }
                }
                pairs.insert((rs1.index(), offset, c), src.map(|h| h.src));
            }
            Instr::Sbdu { rs1, rs2, offset } => {
                if self.emit {
                    self.stats.shadow_stores += 1;
                }
                let src = st.srf_u[rs2.index() as usize];
                if src.is_none() {
                    self.finding(
                        FindingClass::Lowering,
                        "SBD_UNPOPULATED",
                        at,
                        format!(
                            "sbdu stores SRF[{rs2}].upper which is not populated on every \
                             path — it would write a zero temporal half"
                        ),
                    );
                }
                let c = self.container_of(st, rs1, offset);
                match c {
                    Container::Slot(s) => {
                        if !self.valid_slot(s) {
                            self.finding(
                                FindingClass::Lowering,
                                "BAD_CONTAINER",
                                at,
                                format!(
                                    "sbdu writes the shadow of frame offset {s}, which is \
                                     not a metadata-bearing slot"
                                ),
                            );
                        } else {
                            st.shadow_u.insert(s);
                            for (r, h) in st.srf_u.iter_mut().enumerate() {
                                if r != rs2.index() as usize
                                    && matches!(h, Some(x) if x.src == MetaSrc::Slot(s))
                                {
                                    *h = None;
                                }
                            }
                        }
                    }
                    Container::Global(_) | Container::Dyn(_) => {}
                    Container::Unknown => {
                        self.finding(
                            FindingClass::Lowering,
                            "BAD_CONTAINER",
                            at,
                            "sbdu container address has unknown provenance".to_string(),
                        );
                    }
                }
                // Pair coherence: an sbdu against the same container as
                // a preceding sbdl in this block must store a half
                // sourced from the same place — catching "lower from
                // slot A, upper from slot B" register mix-ups.
                if let Some(&Some(lsrc)) = pairs.get(&(rs1.index(), offset, c)) {
                    if let Some(h) = src {
                        if h.src != lsrc {
                            self.finding(
                                FindingClass::Lowering,
                                "SBD_PAIR_INCOHERENT",
                                at,
                                format!(
                                    "sbdl/sbdu pair stores halves from different sources \
                                     ({lsrc:?} vs {:?}) to the same container",
                                    h.src
                                ),
                            );
                        }
                    }
                }
            }
            Instr::Lbas { rd, .. }
            | Instr::Lbnd { rd, .. }
            | Instr::Lkey { rd, .. }
            | Instr::Lloc { rd, .. } => {
                self.set_reg(st, rd, TOP);
                self.srf_clear(st, rd);
            }
            Instr::Tchk { rs1 } => {
                if self.emit {
                    self.stats.tchk_ops += 1;
                }
                let rv = st.regs[rs1.index() as usize];
                let slot = match rv.prov {
                    Prov::Slot { off, .. } if self.ptr_slots.contains(&off) => off,
                    _ => {
                        if self.emit {
                            self.tchk_unknown = true;
                        }
                        self.finding(
                            FindingClass::Lowering,
                            "TCHK_ADDR_UNKNOWN",
                            at,
                            "tchk consumes a pointer of unknown provenance".to_string(),
                        );
                        return;
                    }
                };
                if self.emit {
                    self.tchk_sites.push((at, slot));
                }
                match st.srf_u[rs1.index() as usize] {
                    None => self.finding(
                        FindingClass::Lowering,
                        "TCHK_SRF_EMPTY",
                        at,
                        format!(
                            "tchk consumes SRF[{rs1}].upper which is not populated on \
                             every path — the temporal check is silently skipped"
                        ),
                    ),
                    Some(h) => match h.src {
                        MetaSrc::Slot(ms) if ms == slot => {}
                        MetaSrc::Fresh => {}
                        other => self.finding(
                            FindingClass::Lowering,
                            "TCHK_SRF_MISMATCH",
                            at,
                            format!(
                                "tchk pointer comes from slot {slot} but SRF[{rs1}].upper \
                                 was populated from {other:?}"
                            ),
                        ),
                    },
                }
            }
            Instr::SrfMv { rd, rs1 } => {
                if !rd.is_zero() {
                    let s = rs1.index() as usize;
                    let d = rd.index() as usize;
                    st.srf_l[d] = st.srf_l[s];
                    st.srf_u[d] = st.srf_u[s];
                }
            }
            Instr::SrfClr { rd } => self.srf_clear(st, rd),
        }
    }

    /// Fixpoint + findings pass over the recovered machine CFG.
    /// Runs the dataflow fixpoint over `g` with findings suppressed
    /// (`self.emit` must be false) and returns the per-block in-states
    /// (`None` = unreachable).
    fn fixpoint(&mut self, g: &cfg::MachineCfg) -> Vec<Option<AbsState>> {
        let n = g.blocks.len();
        let mut inputs: Vec<Option<AbsState>> = vec![None; n];
        if n == 0 {
            return inputs;
        }
        inputs[0] = Some(AbsState::entry());
        let mut work = vec![0usize];
        // Monotone joins on a finite-height domain terminate; the guard
        // only protects against an analysis bug, never fires on real
        // input, and degrades to fewer facts (never a panic).
        let mut fuel = 64usize.saturating_mul(n).saturating_add(256);
        while let Some(b) = work.pop() {
            if fuel == 0 {
                break;
            }
            fuel -= 1;
            let Some(mut st) = inputs[b].clone() else {
                continue;
            };
            let mut pairs = HashMap::new();
            for at in g.blocks[b].start..g.blocks[b].end {
                self.transfer(&mut st, at, &mut pairs);
            }
            for &s in &g.blocks[b].succs {
                let joined = match &inputs[s] {
                    None => st.clone(),
                    Some(prev) => join(prev, &st),
                };
                if inputs[s].as_ref() != Some(&joined) {
                    inputs[s] = Some(joined);
                    work.push(s);
                }
            }
        }
        inputs
    }

    fn run(&mut self) -> (Vec<Finding>, FnReport) {
        let range = self.plan.start..self.plan.start + self.plan.len;
        let g = cfg::recover(self.instrs, range);
        if g.blocks.is_empty() {
            return (std::mem::take(&mut self.findings), self.stats.clone());
        }
        let inputs = self.fixpoint(&g);
        // Findings pass: each reachable block exactly once, from its
        // fixed in-state.
        self.emit = true;
        for (b, input) in inputs.iter().enumerate() {
            let Some(start_state) = input else { continue };
            let mut st = start_state.clone();
            let mut pairs = HashMap::new();
            // `-O1` carries live pointer values across block boundaries
            // in cache registers, so the per-block source tracking is
            // seeded from the fixed in-state's provenance facts rather
            // than starting empty. The fixpoint's `Slot` provenance is a
            // must-fact (joins demote on disagreement), so the seed only
            // adds edges that hold on every path into the block.
            for (r, s) in self.reg_srcs.iter_mut().enumerate() {
                s.clear();
                if let Prov::Slot { off, .. } = start_state.regs[r].prov {
                    s.insert(off);
                }
            }
            for at in g.blocks[b].start..g.blocks[b].end {
                self.transfer(&mut st, at, &mut pairs);
            }
        }
        self.emit = false;
        // Check (d): flow-insensitive escape coverage. Only meaningful
        // for schemes that carry hardware metadata — software-only
        // instrumentation has no shadow stores by design.
        if !self.scheme.uses_hardware() {
            return (std::mem::take(&mut self.findings), self.stats.clone());
        }
        let missing: Vec<(usize, i64)> = self
            .ptr_store_slots
            .iter()
            .filter(|(_, s)| !self.sbdl_slots.contains(s))
            .copied()
            .collect();
        self.emit = true;
        for (at, s) in missing {
            self.finding(
                FindingClass::Lowering,
                "PTR_ESCAPE",
                at,
                format!(
                    "a tracked pointer is parked into pointer slot {s}, but no sbdl \
                     anywhere in the function writes that slot's shadow"
                ),
            );
        }
        // The IR promised `meta_stores` through-pointer metadata
        // copies; each lowers to exactly one dynamic-container `sbdl`.
        // A binary with none of them lost every escape's metadata.
        // (Laundered escapes — plain stores of pointer-valued data —
        // are the *program's* choice and are intentionally exempt.)
        if self.plan.meta_stores > 0 && self.sbdl_dyn == 0 {
            self.finding(
                FindingClass::Lowering,
                "PTR_ESCAPE",
                self.plan.start,
                format!(
                    "the IR performs {} through-pointer metadata cop{}, but the lowered \
                     code contains no reachable sbdl targeting a heap or global container",
                    self.plan.meta_stores,
                    if self.plan.meta_stores == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                ),
            );
        }
        self.emit = false;
        (std::mem::take(&mut self.findings), self.stats.clone())
    }

    /// Enumerates candidate sites for the `-O1` register-allocation
    /// mutation operators (see [`RegMutation`]). Every listed site is
    /// chosen so that the corresponding mutant is *guaranteed*
    /// non-equivalent under the abstract semantics — a sound validator
    /// must kill 100% of them:
    ///
    /// * `clobber`: the reaching definition of a pool register that a
    ///   later checked access in the same block consumes, with no
    ///   intervening redefinition or store of that register (a store
    ///   would re-establish provenance by forwarding);
    /// * `drop_spill`: a write-through spill store whose forwarding
    ///   fact (`reg == slot content`) a later checked access in the
    ///   same block depends on — the pre-store provenance differs from
    ///   the stored slot, and the block is not on a CFG cycle so the
    ///   mutant's in-state provably equals the original's;
    /// * `swap_pair`: any reachable scheduled upper-half shadow store.
    fn reg_sites(&mut self, sites: &mut RegSites) {
        let range = self.plan.start..self.plan.start + self.plan.len;
        let g = cfg::recover(self.instrs, range);
        if g.blocks.is_empty() {
            return;
        }
        let inputs = self.fixpoint(&g);
        let n = g.blocks.len();
        // `on_cycle[b]`: is b reachable from itself?
        let mut on_cycle = vec![false; n];
        for (b, flag) in on_cycle.iter_mut().enumerate() {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = g.blocks[b].succs.clone();
            while let Some(x) = stack.pop() {
                if x == b {
                    *flag = true;
                    break;
                }
                if !seen[x] {
                    seen[x] = true;
                    stack.extend(g.blocks[x].succs.iter().copied());
                }
            }
        }
        for (b, input) in inputs.iter().enumerate() {
            let Some(start_state) = input else { continue };
            let mut st = start_state.clone();
            let mut pairs = HashMap::new();
            let end = g.blocks[b].end;
            for at in g.blocks[b].start..end {
                let ins = self.instrs[at];
                if let Some(rd) = gpr_def(&ins) {
                    if crate::regalloc::POOL.contains(&rd) && self.feeds_checked_access(at, end, rd)
                    {
                        sites.clobber.push(at);
                    }
                }
                if !on_cycle[b] {
                    if let Instr::Store {
                        width: StoreWidth::D,
                        rs1,
                        rs2,
                        offset,
                        checked: false,
                    } = ins
                    {
                        if let Num::Sp(d) = num_add(st.regs[rs1.index() as usize].num, offset) {
                            let s = d.wrapping_add(self.fs);
                            let pre = st.regs[rs2.index() as usize].prov;
                            if crate::regalloc::POOL.contains(&rs2)
                                && self.ptr_slots.contains(&s)
                                && !matches!(pre, Prov::Slot { off, .. } if off == s)
                                && self.spill_feeds_check(at, end, rs2, s)
                            {
                                sites.drop_spill.push(at);
                            }
                        }
                    }
                }
                if matches!(ins, Instr::Sbdu { .. }) {
                    sites.swap_pair.push(at);
                }
                self.transfer(&mut st, at, &mut pairs);
            }
        }
    }

    /// Does the pool register defined at `at` feed a checked access
    /// before `end`, with nothing in between that could re-establish
    /// its provenance after a clobber (redefinition, store of the
    /// register, or a call boundary)?
    fn feeds_checked_access(&self, at: usize, end: usize, rd: Reg) -> bool {
        for later in &self.instrs[at + 1..end] {
            match *later {
                Instr::Load {
                    rs1, checked: true, ..
                } if rs1 == rd => return true,
                Instr::Store {
                    rs1, rs2, checked, ..
                } if rs1 == rd || rs2 == rd => return checked && rs1 == rd,
                Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Ecall | Instr::Ebreak => {
                    return false
                }
                _ => {
                    if gpr_def(later) == Some(rd) {
                        return false;
                    }
                }
            }
        }
        false
    }

    /// Does a checked access through `rd` with plan slot `s` follow the
    /// spill store at `at` before `end`, with no intervening
    /// redefinition, store of `rd`, or call?
    fn spill_feeds_check(&self, at: usize, end: usize, rd: Reg, s: i64) -> bool {
        for (j, later) in self.instrs[at + 1..end].iter().enumerate() {
            let here = at + 1 + j;
            match *later {
                Instr::Load {
                    rs1, checked: true, ..
                } if rs1 == rd => {
                    return matches!(self.check_at.get(&here), Some(site) if site.slot == s)
                }
                Instr::Store {
                    rs1, rs2, checked, ..
                } if rs1 == rd || rs2 == rd => {
                    return checked
                        && rs1 == rd
                        && matches!(self.check_at.get(&here), Some(site) if site.slot == s)
                }
                Instr::Jal { .. } | Instr::Jalr { .. } => return false,
                _ => {
                    if gpr_def(later) == Some(rd) {
                        return false;
                    }
                }
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Check-elimination plans (the bounds-witness obligation)
// ---------------------------------------------------------------------------

/// The witness side-table of a bounds-optimised image: the checks the
/// instrumenter skipped ([`SkippedCheck`]), resolved from RCE-stable
/// deref ordinals to the `(block, inst)` coordinates the [`LowerPlan`]
/// records, each paired with its claimed access interval. Skips that
/// fail resolution or carry an arithmetically invalid witness land in a
/// `bad` list and each becomes a `WITNESS_INVALID` finding — an image
/// can never *gain* acceptance by corrupting its witness table.
#[derive(Debug, Clone, Default)]
pub struct ElimPlan {
    /// Function → (block, inst) → claimed `(lo, hi, size)`.
    sites: BTreeMap<String, ElimSites>,
    /// Unresolvable or invalid skips: (func, block, deref, reason).
    bad: Vec<(String, usize, usize, &'static str)>,
}

/// One function's witnessed sites: `(block, inst)` → `(lo, hi, size)`.
type ElimSites = BTreeMap<(u32, u32), (i64, i64, u64)>;

impl ElimPlan {
    /// Resolves `skips` against the **post-RCE** instrumented module.
    /// Ordinals are stable across RCE because RCE removes checks, never
    /// dereferences; resolution mirrors
    /// [`crate::verify::verify_with`] and rejects for the same reasons.
    pub fn new(module: &Module, skips: &[SkippedCheck], witnesses: &[Witness]) -> Self {
        let mut plan = ElimPlan::default();
        for s in skips {
            match resolve_skip(module, s, witnesses) {
                Ok((coord, w)) => {
                    plan.sites
                        .entry(s.func.clone())
                        .or_default()
                        .insert(coord, (w.lo, w.hi, w.size));
                }
                Err(reason) => plan.bad.push((s.func.clone(), s.block, s.deref, reason)),
            }
        }
        plan
    }

    /// Number of successfully resolved witnessed sites.
    pub fn site_count(&self) -> usize {
        self.sites.values().map(|m| m.len()).sum()
    }

    /// Number of skips that failed resolution (each one is reported as
    /// a `WITNESS_INVALID` finding).
    pub fn invalid(&self) -> usize {
        self.bad.len()
    }
}

/// A resolved skip: `(block, inst)` coordinates plus the witness that
/// justified it — or the stable rejection reason.
type ResolvedSkip<'w> = Result<((u32, u32), &'w Witness), &'static str>;

/// Resolves one skip's deref ordinal to an instruction index and
/// re-checks its witness arithmetic.
fn resolve_skip<'w>(
    module: &Module,
    s: &SkippedCheck,
    witnesses: &'w [Witness],
) -> ResolvedSkip<'w> {
    let w = witnesses
        .get(s.witness)
        .ok_or("witness index out of range")?;
    if !w.arithmetic_ok() {
        return Err("claimed interval does not fit the object");
    }
    let f = module
        .funcs
        .iter()
        .find(|f| f.name == s.func)
        .ok_or("unknown function")?;
    let b = f
        .blocks
        .get(s.block)
        .ok_or("exempted block does not exist")?;
    let idx = b
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| instrument::is_deref(i))
        .map(|(i, _)| i)
        .nth(s.deref)
        .ok_or("exempted site is not a dereference")?;
    Ok(((s.block as u32, idx as u32), w))
}

/// Transitive source closure of `start` over the parked-pointer copy
/// chain (destination → sources). Contains `start` itself.
fn src_closure(start: i64, edges: &BTreeMap<i64, BTreeSet<i64>>) -> BTreeSet<i64> {
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(s) = stack.pop() {
        if seen.insert(s) {
            if let Some(srcs) = edges.get(&s) {
                stack.extend(srcs.iter().copied());
            }
        }
    }
    seen
}

/// Is `slot` temporally covered by one of the `tchks`? Covered means
/// the two slots can hold the same pointer value: their source
/// closures intersect. A tchk slot is in its own closure, so "the
/// access slot was copied from the checked slot" and "both were
/// reloaded from the same heap cell" are both special cases.
fn slot_covered(slot: i64, tchks: &BTreeSet<i64>, edges: &BTreeMap<i64, BTreeSet<i64>>) -> bool {
    let sc = src_closure(slot, edges);
    tchks
        .iter()
        .any(|&t| !sc.is_disjoint(&src_closure(t, edges)))
}

// ---------------------------------------------------------------------------
// Image-level validation
// ---------------------------------------------------------------------------

/// Validates a lowered image against its [`LowerPlan`] under the given
/// compression config and memory layout.
pub fn validate(
    program: &Program,
    plan: &LowerPlan,
    compression: CompressionConfig,
    layout: MemoryLayout,
) -> BinvalReport {
    validate_impl(program, plan, compression, layout, None)
}

/// [`validate`] plus the check-elimination obligations (check **e**):
/// every skip in `elim` must carry a valid witness resolving to a
/// recorded check site, and — under [`Scheme::Hwst128Tchk`] — every
/// checked access whose home slot has no reachable `tchk` on its copy
/// chain must be one of the witnessed sites.
pub fn validate_with_elim(
    program: &Program,
    plan: &LowerPlan,
    compression: CompressionConfig,
    layout: MemoryLayout,
    elim: &ElimPlan,
) -> BinvalReport {
    validate_impl(program, plan, compression, layout, Some(elim))
}

fn validate_impl(
    program: &Program,
    plan: &LowerPlan,
    compression: CompressionConfig,
    layout: MemoryLayout,
    elim: Option<&ElimPlan>,
) -> BinvalReport {
    let mut findings = Vec::new();
    let mut funcs = Vec::new();
    if let Some(e) = elim {
        for (func, block, deref, reason) in &e.bad {
            findings.push(Finding {
                class: FindingClass::Lowering,
                code: "WITNESS_INVALID",
                func: func.clone(),
                at: 0,
                pc: program.base(),
                cwe: None,
                message: format!(
                    "skipped check at b{block} (deref {deref}) has no valid bounds \
                     witness: {reason}"
                ),
            });
        }
        for (fname, sites) in &e.sites {
            let fp = plan.funcs.iter().find(|f| &f.name == fname);
            for &(b, i) in sites.keys() {
                let matched =
                    fp.is_some_and(|fp| fp.checks.iter().any(|c| c.block == b && c.inst == i));
                if !matched {
                    findings.push(Finding {
                        class: FindingClass::Lowering,
                        code: "WITNESS_DANGLING",
                        func: fname.clone(),
                        at: 0,
                        pc: program.base(),
                        cwe: None,
                        message: format!(
                            "elimination witness targets b{b}/{i}, which is not a \
                             recorded check site"
                        ),
                    });
                }
            }
        }
    }
    // Check (c), global part: the 24-bit CSR config must cover the
    // layout the image is linked against.
    if plan.scheme.uses_hardware() {
        if let Err(e) = layout.validate() {
            findings.push(global_finding(
                program,
                "CONFIG_LAYOUT",
                format!("memory layout is inconsistent: {e}"),
            ));
        }
        if layout.user_end() > compression.max_base() {
            findings.push(global_finding(
                program,
                "CONFIG_BASE_RANGE",
                format!(
                    "user address space ends at {:#x} but the compressed base field \
                     only reaches {:#x}",
                    layout.user_end(),
                    compression.max_base()
                ),
            ));
        }
        if layout.lock_slots > compression.lock_entries() {
            findings.push(global_finding(
                program,
                "CONFIG_LOCK_RANGE",
                format!(
                    "{} lock slots exceed the {}-entry compressed lock field",
                    layout.lock_slots,
                    compression.lock_entries()
                ),
            ));
        }
    }
    let codec = ShadowCodec::new(compression, layout.lock_region_base);
    for fp in &plan.funcs {
        // `-O1` structural obligation: the register-assignment table
        // must name real home/local slots and allocatable pool
        // registers before anything is believed about cached values.
        // (The semantic half of the obligation needs no table at all —
        // every use of a cache register is re-proven through the
        // provenance domain, which only learns `reg == slot content`
        // from the write-through stores actually present in the code.)
        let mut prev_slot: Option<i64> = None;
        for &(slot, reg) in &fp.reg_assign {
            let mut problems: Vec<String> = Vec::new();
            if slot < 8 || slot >= fp.alloca_base || slot % 8 != 0 {
                problems.push(format!(
                    "slot {slot} is not an 8-aligned home/local slot below the alloca base"
                ));
            }
            if !crate::regalloc::POOL.contains(&reg) {
                problems.push(format!("{reg} is not an allocatable callee-saved register"));
            }
            if prev_slot.is_some_and(|p| p >= slot) {
                problems.push("assigned slots are not strictly ascending".to_string());
            }
            prev_slot = Some(slot);
            for p in problems {
                findings.push(Finding {
                    class: FindingClass::Lowering,
                    code: "REG_ASSIGN_INVALID",
                    func: fp.name.clone(),
                    at: fp.start,
                    pc: program.base() + fp.start as u64 * 4,
                    cwe: None,
                    message: format!("register assignment ({slot} -> {reg}): {p}"),
                });
            }
        }
        // Plan sanity: every recorded IR check site must map onto a
        // checked machine access (catches instruction deletion).
        for site in &fp.checks {
            let ok = match program.instrs().get(site.at) {
                Some(Instr::Load { checked, .. }) => *checked && !site.is_store,
                Some(Instr::Store { checked, .. }) => *checked && site.is_store,
                _ => false,
            };
            if !ok {
                findings.push(Finding {
                    class: FindingClass::Lowering,
                    code: "PLAN_DANGLING",
                    func: fp.name.clone(),
                    at: site.at,
                    pc: program.base() + site.at as u64 * 4,
                    cwe: None,
                    message: format!(
                        "IR check site (block {}, inst {}) does not map to a checked \
                         machine access",
                        site.block, site.inst
                    ),
                });
            }
        }
        let mut interp = FnInterp::new(program.instrs(), program.base(), fp, plan.scheme, codec);
        let (mut fnd, mut stats) = interp.run();
        findings.append(&mut fnd);
        // Check (e): temporal coverage. Only `Hwst128Tchk` carries
        // machine `tchk`s to account for, and the obligation is active
        // only when an elimination plan was supplied; a tchk of unknown
        // provenance makes coverage untrackable, so the function bails
        // (that tchk already failed validation on its own).
        if plan.scheme == Scheme::Hwst128Tchk && !interp.tchk_unknown {
            if let Some(e) = elim {
                let tchk_slots: BTreeSet<i64> = interp.tchk_sites.iter().map(|&(_, s)| s).collect();
                let witnessed = e.sites.get(&fp.name);
                for site in &fp.checks {
                    if slot_covered(site.slot, &tchk_slots, &interp.copy_edges) {
                        continue;
                    }
                    if witnessed.is_some_and(|m| m.contains_key(&(site.block, site.inst))) {
                        stats.tchk_witnessed += 1;
                    } else {
                        findings.push(Finding {
                            class: FindingClass::Lowering,
                            code: "TCHK_ELIDED",
                            func: fp.name.clone(),
                            at: site.at,
                            pc: program.base() + site.at as u64 * 4,
                            cwe: None,
                            message: format!(
                                "checked access on slot {} has no reachable tchk on its \
                                 copy chain and no bounds witness — the temporal check \
                                 was lost",
                                site.slot
                            ),
                        });
                    }
                }
            }
        }
        funcs.push(stats);
    }
    BinvalReport {
        scheme: plan.scheme,
        findings,
        funcs,
    }
}

fn global_finding(program: &Program, code: &'static str, message: String) -> Finding {
    Finding {
        class: FindingClass::Lowering,
        code,
        func: "<image>".to_string(),
        at: 0,
        pc: program.base(),
        cwe: None,
        message,
    }
}

/// Instruments, lowers and validates `module` for `scheme` with the
/// default layout and spec compression config.
///
/// # Errors
///
/// Returns a [`CompileError`] when the module fails analysis or
/// lowering (validation itself never errors — it reports findings).
pub fn validate_module(module: &Module, scheme: Scheme) -> Result<BinvalReport, CompileError> {
    validate_module_opt(module, scheme, OptLevel::O0)
}

/// [`validate_module`] at a caller-chosen back-end optimization tier —
/// the `-O1` gate that every optimized image must clear.
///
/// # Errors
///
/// Same as [`validate_module`].
pub fn validate_module_opt(
    module: &Module,
    scheme: Scheme,
    opt: OptLevel,
) -> Result<BinvalReport, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    let (program, plan) = lower_with_plan_opt(&instrumented, scheme, opt)?;
    Ok(validate(
        &program,
        &plan,
        CompressionConfig::SPEC_DEFAULT,
        MemoryLayout::default(),
    ))
}

// ---------------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------------

/// The paired IR-level and binary-level verdicts for one workload.
#[derive(Debug)]
pub struct TvOutcome {
    /// Did the IR-level completeness verifier accept the instrumented
    /// module?
    pub ir_ok: bool,
    /// IR-level error, when `!ir_ok`.
    pub ir_error: Option<String>,
    /// IR-level RCE counters (all zero when RCE was not requested) —
    /// the A9 baseline that binary-level discharge is compared against.
    pub rce: rce::RceStats,
    /// The binary-level validation report.
    pub report: BinvalReport,
}

impl TvOutcome {
    /// Translation validation fails when the two levels disagree: the
    /// IR verifier accepted what the binary validator rejects, or vice
    /// versa. Either direction means a pass is wrong.
    pub fn diverged(&self) -> bool {
        self.ir_ok != self.report.ok()
    }

    /// Both levels accepted.
    pub fn ok(&self) -> bool {
        self.ir_ok && self.report.ok()
    }
}

/// Runs IR-level verification and binary-level validation over the same
/// instrumented module and pairs the verdicts.
///
/// # Errors
///
/// Returns a [`CompileError`] for analysis/lowering failures (not for
/// verification findings, which are part of the outcome).
pub fn translation_validate(module: &Module, scheme: Scheme) -> Result<TvOutcome, CompileError> {
    translation_validate_with(module, scheme, false)
}

/// [`translation_validate`] with optional IR-level redundant-check
/// elimination first — the A9 ablation compares binary-level discharge
/// against what RCE already removed.
///
/// # Errors
///
/// Same as [`translation_validate`].
pub fn translation_validate_with(
    module: &Module,
    scheme: Scheme,
    run_rce: bool,
) -> Result<TvOutcome, CompileError> {
    translation_validate_full(module, scheme, run_rce, OptLevel::O0)
}

/// [`translation_validate`] at a caller-chosen back-end optimization
/// tier: the `-O1` soundness gate. The IR-level verdict is tier-
/// independent (the same instrumented module is lowered either way);
/// the binary-level validation runs against the optimized image and
/// its plan, including the register-assignment obligations.
///
/// # Errors
///
/// Same as [`translation_validate`].
pub fn translation_validate_opt(
    module: &Module,
    scheme: Scheme,
    opt: OptLevel,
) -> Result<TvOutcome, CompileError> {
    translation_validate_full(module, scheme, false, opt)
}

fn translation_validate_full(
    module: &Module,
    scheme: Scheme,
    run_rce: bool,
    opt: OptLevel,
) -> Result<TvOutcome, CompileError> {
    let info = analysis::analyze(module)?;
    let mut instrumented = instrument::instrument(module, &info, scheme);
    let stats = if run_rce {
        rce::eliminate(&mut instrumented)
    } else {
        rce::RceStats::default()
    };
    let ir = verify::verify(&instrumented, scheme);
    let (program, plan) = lower_with_plan_opt(&instrumented, scheme, opt)?;
    let report = validate(
        &program,
        &plan,
        CompressionConfig::SPEC_DEFAULT,
        MemoryLayout::default(),
    );
    Ok(TvOutcome {
        ir_ok: ir.is_ok(),
        ir_error: ir.err().map(|e| e.to_string()),
        rce: stats,
        report,
    })
}

// ---------------------------------------------------------------------------
// Mutation-based self-test
// ---------------------------------------------------------------------------

/// A seeded corruption of a lowered image. Every mutation targets a
/// *candidate site*: an `lbdls` that feeds a checked access in
/// straight-line code (see [`mutation_sites`]), which guarantees the
/// mutant is non-equivalent — the corrupted metadata path is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Replace the metadata load with a `nop` — the checked access
    /// consumes an invalid SRF entry and the hardware silently skips
    /// the check.
    DropMetaLoad,
    /// Skew the shadow-map offset by one slot — the check consumes a
    /// neighbouring slot's metadata.
    SkewShadowOffset,
    /// Redirect the metadata load into a different shadow register —
    /// the checked access consumes a stale entry.
    SwapShadowReg,
}

impl Mutation {
    /// All mutation operators.
    pub const ALL: [Mutation; 3] = [
        Mutation::DropMetaLoad,
        Mutation::SkewShadowOffset,
        Mutation::SwapShadowReg,
    ];

    /// Stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            Mutation::DropMetaLoad => "drop-meta-load",
            Mutation::SkewShadowOffset => "skew-shadow-offset",
            Mutation::SwapShadowReg => "swap-shadow-reg",
        }
    }
}

/// One mutant's fate.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// Mutation operator name.
    pub mutation: &'static str,
    /// The seed that selected the site.
    pub seed: u64,
    /// Instruction index that was corrupted.
    pub site: usize,
    /// Absolute PC of the corrupted instruction.
    pub pc: u64,
    /// Name of the function containing the site (`"<shim>"` for the
    /// startup shim), resolved from the plan's symbol ranges.
    pub func: String,
    /// Did the validator reject the mutant?
    pub killed: bool,
    /// Findings the validator reported.
    pub findings: usize,
}

/// The result of a deterministic mutation campaign.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Number of candidate sites in the image.
    pub candidates: usize,
    /// One entry per (seed × operator) mutant.
    pub outcomes: Vec<MutantOutcome>,
}

impl MutationReport {
    /// Mutants the validator rejected.
    pub fn killed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.killed).count()
    }

    /// Total mutants generated.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// 100% kill rate (vacuously true with no candidates).
    pub fn all_killed(&self) -> bool {
        self.outcomes.iter().all(|o| o.killed)
    }
}

/// `splitmix64` — the same deterministic seed-stretching the fault-
/// injection campaigns use; no global RNG state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Enumerates candidate mutation sites: `lbdls` instructions whose SRF
/// destination feeds a checked load/store in straight-line code with no
/// intervening redefinition. Restricting candidates this way makes
/// every mutant observably non-equivalent, so a sound validator must
/// kill 100% of them.
pub fn mutation_sites(program: &Program) -> Vec<usize> {
    let instrs = program.instrs();
    let mut out = Vec::new();
    'sites: for (i, ins) in instrs.iter().enumerate() {
        let Instr::Lbdls { rd, .. } = *ins else {
            continue;
        };
        // T2 is the metadata shuttle for shadow-to-shadow copies; its
        // loads feed sbdl/sbdu, not checks, and are judged by the
        // pair-coherence rule instead.
        if rd == Reg::T2 || rd.is_zero() {
            continue;
        }
        for later in &instrs[i + 1..] {
            match *later {
                Instr::Load {
                    rs1, checked: true, ..
                } if rs1 == rd => {
                    out.push(i);
                    continue 'sites;
                }
                Instr::Store {
                    rs1, checked: true, ..
                } if rs1 == rd => {
                    out.push(i);
                    continue 'sites;
                }
                // Control flow, calls or a tchk consumer: give up on
                // this site (tchk consumes the *upper* half, so a
                // lower-half mutation could be equivalent).
                Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Branch { .. }
                | Instr::Ecall
                | Instr::Ebreak
                | Instr::Tchk { .. } => continue 'sites,
                // Re-population or SRF clobber of the same entry masks
                // the mutation.
                Instr::Lbdls { rd: r2, .. } | Instr::SrfMv { rd: r2, .. } if r2 == rd => {
                    continue 'sites
                }
                Instr::SrfClr { rd: r2 } if r2 == rd => continue 'sites,
                _ => {
                    if gpr_def(later) == Some(rd) {
                        continue 'sites;
                    }
                }
            }
        }
    }
    out
}

/// Applies `m` at `site` (an index from [`mutation_sites`]) and returns
/// the corrupted program. A site that is not an `lbdls` is returned
/// unchanged — the campaign never panics on a stale site list.
pub fn mutate(program: &Program, site: usize, m: Mutation) -> Program {
    let mut instrs = program.instrs().to_vec();
    if let Some(Instr::Lbdls { rd, rs1, offset }) = instrs.get(site).copied() {
        instrs[site] = match m {
            Mutation::DropMetaLoad => Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::Zero,
                rs1: Reg::Zero,
                imm: 0,
            },
            Mutation::SkewShadowOffset => Instr::Lbdls {
                rd,
                rs1,
                offset: offset + 8,
            },
            Mutation::SwapShadowReg => Instr::Lbdls {
                rd: Reg::T2,
                rs1,
                offset,
            },
        };
    }
    Program::from_instrs(program.base(), instrs)
}

/// Runs the deterministic mutation campaign for `module` × `scheme`:
/// for every seed and every operator, one site is chosen by
/// `splitmix64`, mutated, and re-validated against the unchanged plan.
///
/// # Errors
///
/// Returns a [`CompileError`] for analysis/lowering failures.
pub fn mutation_campaign(
    module: &Module,
    scheme: Scheme,
    seeds: &[u64],
) -> Result<MutationReport, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    let (program, plan) = lower_with_plan(&instrumented, scheme)?;
    let sites = mutation_sites(&program);
    let mut report = MutationReport {
        candidates: sites.len(),
        outcomes: Vec::new(),
    };
    if sites.is_empty() {
        return Ok(report);
    }
    for &seed in seeds {
        for (mi, &m) in Mutation::ALL.iter().enumerate() {
            let pick = splitmix64(seed ^ (mi as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            let site = sites[(pick % sites.len() as u64) as usize];
            let mutant = mutate(&program, site, m);
            let r = validate(
                &mutant,
                &plan,
                CompressionConfig::SPEC_DEFAULT,
                MemoryLayout::default(),
            );
            let pc = program.base() + site as u64 * 4;
            report.outcomes.push(MutantOutcome {
                mutation: m.name(),
                seed,
                site,
                pc,
                func: plan
                    .func_at_pc(pc)
                    .map_or_else(|| "<shim>".to_string(), |f| f.name.clone()),
                killed: !r.ok(),
                findings: r.findings.len(),
            });
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Register-allocation mutation self-test (the `-O1` kill bar)
// ---------------------------------------------------------------------------

/// A seeded corruption of the `-O1` back-end's register-allocation
/// invariants. Where [`Mutation`] corrupts the metadata *plumbing*,
/// these corrupt the facts the optimizer is trusted with: that cached
/// registers hold what their home slots hold, that write-through spill
/// stores actually happen, and that scheduled shadow-store pairs keep
/// their producers. Sites are enumerated semantically (over the
/// validator's own abstract states) so every mutant is guaranteed
/// non-equivalent — the campaign requires a 100% kill rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegMutation {
    /// Replace the reaching definition of a live cache register with
    /// `addi r, x0, 1` — a later checked access consumes an address of
    /// unknown provenance (`CHECK_ADDR_UNKNOWN`).
    ClobberLiveReg,
    /// Delete a write-through spill store a later checked access
    /// depends on — the register's slot-provenance is never
    /// established, so the access fails the provenance or plan
    /// cross-check.
    DropSpill,
    /// Retarget a scheduled upper-half shadow store at `SRF[x0]`,
    /// which is never populated — the pair stores a zero temporal half
    /// (`SBD_UNPOPULATED`), modelling the scheduler pairing the store
    /// with the wrong producer.
    SwapScheduledPair,
}

impl RegMutation {
    /// All register-allocation mutation operators.
    pub const ALL: [RegMutation; 3] = [
        RegMutation::ClobberLiveReg,
        RegMutation::DropSpill,
        RegMutation::SwapScheduledPair,
    ];

    /// Stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            RegMutation::ClobberLiveReg => "clobber-live-reg",
            RegMutation::DropSpill => "drop-spill",
            RegMutation::SwapScheduledPair => "swap-scheduled-pair",
        }
    }
}

/// Candidate sites for the register-allocation mutation operators, one
/// list per operator (instruction indices into the program).
#[derive(Debug, Clone, Default)]
pub struct RegSites {
    /// [`RegMutation::ClobberLiveReg`] sites: reaching definitions of
    /// pool registers that feed checked accesses.
    pub clobber: Vec<usize>,
    /// [`RegMutation::DropSpill`] sites: write-through spill stores
    /// that later checked accesses depend on.
    pub drop_spill: Vec<usize>,
    /// [`RegMutation::SwapScheduledPair`] sites: reachable scheduled
    /// upper-half shadow stores.
    pub swap_pair: Vec<usize>,
}

impl RegSites {
    /// Total candidate count across all operators.
    pub fn total(&self) -> usize {
        self.clobber.len() + self.drop_spill.len() + self.swap_pair.len()
    }

    /// The site list for `m`.
    pub fn for_op(&self, m: RegMutation) -> &[usize] {
        match m {
            RegMutation::ClobberLiveReg => &self.clobber,
            RegMutation::DropSpill => &self.drop_spill,
            RegMutation::SwapScheduledPair => &self.swap_pair,
        }
    }
}

/// Enumerates register-allocation mutation sites for a lowered image
/// by sweeping the validator's abstract states (see
/// [`RegMutation`]). At `-O0` the clobber and drop-spill lists are
/// empty by construction — no pool register ever feeds a checked
/// access there.
pub fn reg_mutation_sites(program: &Program, plan: &LowerPlan) -> RegSites {
    let codec = ShadowCodec::new(
        CompressionConfig::SPEC_DEFAULT,
        MemoryLayout::default().lock_region_base,
    );
    let mut sites = RegSites::default();
    for fp in &plan.funcs {
        let mut interp = FnInterp::new(program.instrs(), program.base(), fp, plan.scheme, codec);
        interp.reg_sites(&mut sites);
    }
    sites
}

/// Applies `m` at `site` (an index from [`reg_mutation_sites`]) and
/// returns the corrupted program. A site whose instruction does not
/// match the operator's shape is returned unchanged — the campaign
/// never panics on a stale site list.
pub fn reg_mutate(program: &Program, site: usize, m: RegMutation) -> Program {
    let mut instrs = program.instrs().to_vec();
    match m {
        RegMutation::ClobberLiveReg => {
            if let Some(rd) = instrs.get(site).and_then(gpr_def) {
                instrs[site] = Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: Reg::Zero,
                    imm: 1,
                };
            }
        }
        RegMutation::DropSpill => {
            if matches!(instrs.get(site), Some(Instr::Store { .. })) {
                instrs[site] = Instr::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::Zero,
                    rs1: Reg::Zero,
                    imm: 0,
                };
            }
        }
        RegMutation::SwapScheduledPair => {
            if let Some(Instr::Sbdu { rs1, offset, .. }) = instrs.get(site).copied() {
                instrs[site] = Instr::Sbdu {
                    rs1,
                    rs2: Reg::Zero,
                    offset,
                };
            }
        }
    }
    Program::from_instrs(program.base(), instrs)
}

/// Runs the deterministic register-allocation mutation campaign for
/// `module` × `scheme` at `opt`: for every seed and every operator
/// with a non-empty site list, one site is chosen by `splitmix64`,
/// mutated, and re-validated against the unchanged plan.
///
/// # Errors
///
/// Returns a [`CompileError`] for analysis/lowering failures.
pub fn reg_mutation_campaign(
    module: &Module,
    scheme: Scheme,
    opt: OptLevel,
    seeds: &[u64],
) -> Result<MutationReport, CompileError> {
    let info = analysis::analyze(module)?;
    let instrumented = instrument::instrument(module, &info, scheme);
    let (program, plan) = lower_with_plan_opt(&instrumented, scheme, opt)?;
    let sites = reg_mutation_sites(&program, &plan);
    let mut report = MutationReport {
        candidates: sites.total(),
        outcomes: Vec::new(),
    };
    for &seed in seeds {
        for (mi, &m) in RegMutation::ALL.iter().enumerate() {
            let list = sites.for_op(m);
            if list.is_empty() {
                continue;
            }
            let pick = splitmix64(seed ^ (mi as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let site = list[(pick % list.len() as u64) as usize];
            let mutant = reg_mutate(&program, site, m);
            let r = validate(
                &mutant,
                &plan,
                CompressionConfig::SPEC_DEFAULT,
                MemoryLayout::default(),
            );
            let pc = program.base() + site as u64 * 4;
            report.outcomes.push(MutantOutcome {
                mutation: m.name(),
                seed,
                site,
                pc,
                func: plan
                    .func_at_pc(pc)
                    .map_or_else(|| "<shim>".to_string(), |f| f.name.clone()),
                killed: !r.ok(),
                findings: r.findings.len(),
            });
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Witness-forging self-test
// ---------------------------------------------------------------------------

/// A seeded forgery of a bounds-optimised image's witness side-channel.
/// Unlike [`Mutation`] (which corrupts the *code*), these corrupt the
/// elimination evidence — a sound validator must reject every one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessMutation {
    /// Enlarge the claimed interval past the object (`hi = size + 8`) —
    /// caught by the arithmetic re-check (`WITNESS_INVALID`).
    EnlargeInterval,
    /// Claim a negative base offset (`lo = -8`) — caught by the
    /// arithmetic re-check (`WITNESS_INVALID`).
    NegativeBase,
    /// Point a resolved witness at a non-existent site — caught by the
    /// plan cross-check (`WITNESS_DANGLING`).
    DanglingSite,
    /// Drop the skip record for an uncovered site: the image still
    /// lacks the check, but nothing justifies it — caught by the
    /// coverage obligation (`TCHK_ELIDED`).
    RetargetSite,
    /// Nop a `tchk` that is the sole temporal cover of an unwitnessed
    /// checked access — caught by the coverage obligation
    /// (`TCHK_ELIDED`).
    DropProtectedTchk,
}

impl WitnessMutation {
    /// All witness-forging operators.
    pub const ALL: [WitnessMutation; 5] = [
        WitnessMutation::EnlargeInterval,
        WitnessMutation::NegativeBase,
        WitnessMutation::DanglingSite,
        WitnessMutation::RetargetSite,
        WitnessMutation::DropProtectedTchk,
    ];

    /// Stable name for reports.
    pub const fn name(self) -> &'static str {
        match self {
            WitnessMutation::EnlargeInterval => "enlarge-interval",
            WitnessMutation::NegativeBase => "negative-base",
            WitnessMutation::DanglingSite => "dangling-site",
            WitnessMutation::RetargetSite => "retarget-site",
            WitnessMutation::DropProtectedTchk => "drop-protected-tchk",
        }
    }
}

/// The result of a deterministic witness-forging campaign.
#[derive(Debug, Clone, Default)]
pub struct WitnessCampaignReport {
    /// Did the unforged image validate cleanly with its elimination
    /// plan? A dirty baseline fails [`WitnessCampaignReport::all_killed`]
    /// outright.
    pub baseline_ok: bool,
    /// Witnessed (successfully resolved) skips in the image.
    pub skips: usize,
    /// One entry per applied forgery.
    pub outcomes: Vec<MutantOutcome>,
}

impl WitnessCampaignReport {
    /// Forgeries the validator rejected.
    pub fn killed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.killed).count()
    }

    /// Total forgeries applied.
    pub fn total(&self) -> usize {
        self.outcomes.len()
    }

    /// The gate the A10 ablation enforces: a clean baseline and every
    /// forgery rejected.
    pub fn all_killed(&self) -> bool {
        self.baseline_ok && self.outcomes.iter().all(|o| o.killed)
    }
}

/// Runs the deterministic witness-forging campaign for `module` under
/// [`Scheme::Hwst128Tchk`]: the module is compiled with the bounds pass
/// and RCE, its elimination plan is built, and for every seed × operator
/// one forgery is applied and re-validated. Operators whose candidate
/// set is empty (e.g. no uncovered witnessed site to retarget) are
/// skipped for that seed rather than reported as survivors.
///
/// # Errors
///
/// Returns a [`CompileError`] for analysis/lowering failures.
pub fn witness_campaign(
    module: &Module,
    seeds: &[u64],
) -> Result<WitnessCampaignReport, CompileError> {
    let scheme = Scheme::Hwst128Tchk;
    let info = analysis::analyze(module)?;
    let outcome = bounds::analyze(module);
    let (mut instrumented, skips) =
        instrument::instrument_with_bounds(module, &info, scheme, Some(&outcome));
    rce::eliminate(&mut instrumented);
    let (program, plan) = lower_with_plan(&instrumented, scheme)?;
    let witnesses = outcome.witnesses;
    let elim = ElimPlan::new(&instrumented, &skips, &witnesses);
    let compression = CompressionConfig::SPEC_DEFAULT;
    let layout = MemoryLayout::default();
    let revalidate = |prog: &Program, e: &ElimPlan| {
        validate_impl(prog, &plan, compression, MemoryLayout::default(), Some(e))
    };
    let mut report = WitnessCampaignReport {
        baseline_ok: revalidate(&program, &elim).ok(),
        skips: elim.site_count(),
        outcomes: Vec::new(),
    };
    // Candidate discovery from the interpreter's coverage facts:
    // `uncovered` = indices into `skips` whose site genuinely depends on
    // its witness; `protected` = machine indices of tchks that are the
    // sole cover of some unwitnessed check site.
    let codec = ShadowCodec::new(compression, layout.lock_region_base);
    let mut uncovered: Vec<usize> = Vec::new();
    let mut protected: Vec<usize> = Vec::new();
    for fp in &plan.funcs {
        let mut interp = FnInterp::new(program.instrs(), program.base(), fp, scheme, codec);
        let _ = interp.run();
        if interp.tchk_unknown {
            continue;
        }
        let slots: Vec<i64> = interp.tchk_sites.iter().map(|&(_, s)| s).collect();
        let set: BTreeSet<i64> = slots.iter().copied().collect();
        let fsites = elim.sites.get(&fp.name);
        for (k, s) in skips.iter().enumerate() {
            if s.func != fp.name {
                continue;
            }
            let Ok((coord, _)) = resolve_skip(&instrumented, s, &witnesses) else {
                continue;
            };
            let covered = fp
                .checks
                .iter()
                .find(|c| (c.block, c.inst) == coord)
                .is_none_or(|c| slot_covered(c.slot, &set, &interp.copy_edges));
            if !covered {
                uncovered.push(k);
            }
        }
        for &(at, slot) in &interp.tchk_sites {
            if slots.iter().filter(|&&s| s == slot).count() != 1 {
                continue;
            }
            let mut without = set.clone();
            without.remove(&slot);
            let exposes = fp.checks.iter().any(|c| {
                !fsites.is_some_and(|m| m.contains_key(&(c.block, c.inst)))
                    && slot_covered(c.slot, &set, &interp.copy_edges)
                    && !slot_covered(c.slot, &without, &interp.copy_edges)
            });
            if exposes {
                protected.push(at);
            }
        }
    }
    let dangling: Vec<(String, (u32, u32))> = elim
        .sites
        .iter()
        .flat_map(|(f, m)| m.keys().map(move |&k| (f.clone(), k)))
        .collect();
    for &seed in seeds {
        for (mi, &m) in WitnessMutation::ALL.iter().enumerate() {
            let pick = splitmix64(seed ^ (mi as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            let choose = |n: usize| (pick % n as u64) as usize;
            let (site, func, r) = match m {
                WitnessMutation::EnlargeInterval | WitnessMutation::NegativeBase => {
                    if skips.is_empty() {
                        continue;
                    }
                    let k = choose(skips.len());
                    let mut forged = witnesses.clone();
                    let w = &mut forged[skips[k].witness];
                    if m == WitnessMutation::EnlargeInterval {
                        w.hi = (w.size as i64).saturating_add(8);
                    } else {
                        w.lo = -8;
                    }
                    let e = ElimPlan::new(&instrumented, &skips, &forged);
                    (k, skips[k].func.clone(), revalidate(&program, &e))
                }
                WitnessMutation::DanglingSite => {
                    if dangling.is_empty() {
                        continue;
                    }
                    let (fname, (b, i)) = dangling[choose(dangling.len())].clone();
                    let mut e = elim.clone();
                    if let Some(sites) = e.sites.get_mut(&fname) {
                        if let Some(v) = sites.remove(&(b, i)) {
                            sites.insert((b + 1000, i), v);
                        }
                    }
                    (b as usize, fname, revalidate(&program, &e))
                }
                WitnessMutation::RetargetSite => {
                    if uncovered.is_empty() {
                        continue;
                    }
                    let k = uncovered[choose(uncovered.len())];
                    let mut pruned = skips.clone();
                    let func = pruned.remove(k).func;
                    let e = ElimPlan::new(&instrumented, &pruned, &witnesses);
                    (k, func, revalidate(&program, &e))
                }
                WitnessMutation::DropProtectedTchk => {
                    if protected.is_empty() {
                        continue;
                    }
                    let at = protected[choose(protected.len())];
                    let mut instrs = program.instrs().to_vec();
                    instrs[at] = Instr::AluImm {
                        op: AluImmOp::Addi,
                        rd: Reg::Zero,
                        rs1: Reg::Zero,
                        imm: 0,
                    };
                    let mutant = Program::from_instrs(program.base(), instrs);
                    let pc = program.base() + at as u64 * 4;
                    let func = plan
                        .func_at_pc(pc)
                        .map_or_else(|| "<shim>".to_string(), |f| f.name.clone());
                    (at, func, revalidate(&mutant, &elim))
                }
            };
            report.outcomes.push(MutantOutcome {
                mutation: m.name(),
                seed,
                site,
                pc: program.base() + site as u64 * 4,
                func,
                killed: !r.ok(),
                findings: r.findings.len(),
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Width;
    use crate::ModuleBuilder;

    /// Heap, stack, global and cross-function pointer traffic — enough
    /// to exercise every lowering arm the validator models.
    fn sample_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let g = mb.global("table", 32);
        let mut f = mb.func("sink");
        let q = f.param(true);
        let v = f.konst(1);
        f.store(v, q, 0, Width::U8);
        f.ret(None);
        f.finish();
        let mut f = mb.func("main");
        let p = f.malloc_bytes(64);
        let v = f.konst(5);
        f.store(v, p, 0, Width::U64);
        let _ = f.load(p, 8, Width::U32);
        let s = f.stack_alloc(16);
        let ga = f.addr_of_global(g);
        f.store(v, s, 8, Width::U64);
        f.store(v, ga, 0, Width::U64);
        f.call_void("sink", &[s]);
        let cell = f.malloc_bytes(8);
        f.store_ptr(s, cell, 0);
        let r = f.load_ptr(cell, 0);
        let _ = f.load(r, 0, Width::U8);
        f.free(p);
        f.free(cell);
        f.ret(None);
        f.finish();
        mb.finish()
    }

    fn lower(scheme: Scheme) -> (Program, LowerPlan) {
        let m = sample_module();
        let info = analysis::analyze(&m).unwrap();
        let inst = instrument::instrument(&m, &info, scheme);
        lower_with_plan(&inst, scheme).unwrap()
    }

    #[test]
    fn clean_lowering_validates_under_every_scheme() {
        for scheme in Scheme::ALL {
            let m = sample_module();
            let r = validate_module(&m, scheme).unwrap();
            assert!(
                r.ok(),
                "{scheme:?}: {:?}",
                r.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn translation_validation_agrees_on_clean_input() {
        for scheme in Scheme::ALL {
            let m = sample_module();
            for rce in [false, true] {
                let tv = translation_validate_with(&m, scheme, rce).unwrap();
                assert!(!tv.diverged(), "{scheme:?} rce={rce}: {:?}", tv.ir_error);
                assert!(tv.ok());
            }
        }
    }

    #[test]
    fn hardware_schemes_have_mutation_candidates() {
        for scheme in [Scheme::Hwst128, Scheme::Hwst128Tchk, Scheme::Shore] {
            let (program, _) = lower(scheme);
            assert!(
                !mutation_sites(&program).is_empty(),
                "{scheme:?}: no candidate sites"
            );
        }
        let (program, _) = lower(Scheme::Sbcets);
        assert!(mutation_sites(&program).is_empty());
    }

    #[test]
    fn every_mutation_operator_is_killed() {
        let (program, plan) = lower(Scheme::Hwst128Tchk);
        for &site in &mutation_sites(&program) {
            for m in Mutation::ALL {
                let mutant = mutate(&program, site, m);
                let r = validate(
                    &mutant,
                    &plan,
                    CompressionConfig::SPEC_DEFAULT,
                    MemoryLayout::default(),
                );
                assert!(!r.ok(), "{} at site {site} survived validation", m.name());
            }
        }
    }

    #[test]
    fn dropped_meta_load_is_an_srf_emptiness_finding() {
        let (program, plan) = lower(Scheme::Hwst128);
        let sites = mutation_sites(&program);
        let mutant = mutate(&program, sites[0], Mutation::DropMetaLoad);
        let r = validate(
            &mutant,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(
            r.findings.iter().any(|f| f.code == "CHECK_SRF_EMPTY"),
            "{:?}",
            r.findings.iter().map(|f| f.code).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unchecking_a_planned_access_is_flagged() {
        let (program, plan) = lower(Scheme::Hwst128);
        let at = plan.funcs.iter().flat_map(|f| &f.checks).next().unwrap().at;
        let mut instrs = program.instrs().to_vec();
        match &mut instrs[at] {
            Instr::Load { checked, .. } | Instr::Store { checked, .. } => *checked = false,
            other => panic!("plan site is not an access: {other:?}"),
        }
        let stripped = Program::from_instrs(program.base(), instrs);
        let r = validate(
            &stripped,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(r.findings.iter().any(|f| f.code == "PLAN_DANGLING"));
    }

    #[test]
    fn undersized_lock_field_is_a_config_finding() {
        // EMBEDDED has a 16-bit lock field; the default layout carries
        // 2^20 lock slots.
        let (program, plan) = lower(Scheme::Hwst128Tchk);
        let r = validate(
            &program,
            &plan,
            CompressionConfig::EMBEDDED,
            MemoryLayout::default(),
        );
        assert!(r.findings.iter().any(|f| f.code == "CONFIG_LOCK_RANGE"));
    }

    #[test]
    fn hardware_instructions_under_software_scheme_are_flagged() {
        let (program, mut plan) = lower(Scheme::Hwst128);
        plan.scheme = Scheme::Sbcets;
        let r = validate(
            &program,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(r.findings.iter().any(|f| f.code == "SCHEME_VIOLATION"));
    }

    #[test]
    fn campaign_is_deterministic() {
        let m = sample_module();
        let a = mutation_campaign(&m, Scheme::Hwst128, &[7, 11]).unwrap();
        let b = mutation_campaign(&m, Scheme::Hwst128, &[7, 11]).unwrap();
        assert_eq!(a.total(), b.total());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!((x.site, x.killed, x.seed), (y.site, y.killed, y.seed));
        }
        assert!(a.all_killed());
    }

    /// Proven const-offset accesses (alloca + const malloc) alongside a
    /// pointer reloaded from memory whose provenance the bounds pass
    /// cannot prove — its deref keeps the image's only `tchk`.
    fn bounds_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        let a = f.stack_alloc(16);
        let v = f.konst(7);
        f.store(v, a, 8, Width::U64);
        let p = f.malloc_bytes(64);
        f.store(v, p, 0, Width::U64);
        let _ = f.load(p, 8, Width::U32);
        let cell = f.malloc_bytes(8);
        f.store_ptr(p, cell, 0);
        let q = f.load_ptr(cell, 0);
        let r = f.load(q, 0, Width::U64);
        f.ret(Some(r));
        f.finish();
        mb.finish()
    }

    /// The full bounds pipeline: analyze → instrument-with-skips → RCE →
    /// lower, returning everything the elimination obligation needs.
    fn bounds_pipeline(m: &Module) -> (Program, LowerPlan, ElimPlan) {
        let info = analysis::analyze(m).unwrap();
        let outcome = bounds::analyze(m);
        let (mut inst, skips) =
            instrument::instrument_with_bounds(m, &info, Scheme::Hwst128Tchk, Some(&outcome));
        rce::eliminate(&mut inst);
        let (program, plan) = lower_with_plan(&inst, Scheme::Hwst128Tchk).unwrap();
        let elim = ElimPlan::new(&inst, &skips, &outcome.witnesses);
        (program, plan, elim)
    }

    #[test]
    fn bounds_optimised_image_validates_with_its_elim_plan() {
        let (program, plan, elim) = bounds_pipeline(&bounds_module());
        assert!(elim.site_count() >= 3, "expected several witnessed skips");
        assert_eq!(elim.invalid(), 0);
        let r = validate_with_elim(
            &program,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
            &elim,
        );
        assert!(r.ok(), "clean bounds image rejected: {:?}", r.findings);
        assert!(
            r.funcs.iter().map(|f| f.tchk_witnessed).sum::<usize>() >= 3,
            "witnessed sites should be accounted"
        );
        // Without the elim plan the obligation is inactive and the image
        // still validates (spatial checks are all present).
        let r = validate(
            &program,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
        );
        assert!(r.ok());
    }

    #[test]
    fn unwitnessed_tchk_elision_fails_validation() {
        let (program, plan, elim) = bounds_pipeline(&bounds_module());
        let tchk_at = program
            .instrs()
            .iter()
            .position(|i| matches!(i, Instr::Tchk { .. }))
            .expect("image should keep a tchk for the unproven deref");
        let mut instrs = program.instrs().to_vec();
        instrs[tchk_at] = Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::Zero,
            rs1: Reg::Zero,
            imm: 0,
        };
        let mutant = Program::from_instrs(program.base(), instrs);
        let r = validate_with_elim(
            &mutant,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
            &elim,
        );
        assert!(!r.ok());
        assert!(r.findings.iter().any(|f| f.code == "TCHK_ELIDED"));
    }

    #[test]
    fn forged_witness_arithmetic_is_rejected() {
        let m = bounds_module();
        let info = analysis::analyze(&m).unwrap();
        let outcome = bounds::analyze(&m);
        let (mut inst, skips) =
            instrument::instrument_with_bounds(&m, &info, Scheme::Hwst128Tchk, Some(&outcome));
        rce::eliminate(&mut inst);
        let (program, plan) = lower_with_plan(&inst, Scheme::Hwst128Tchk).unwrap();
        let mut forged = outcome.witnesses.clone();
        forged[skips[0].witness].hi = forged[skips[0].witness].size as i64 + 8;
        let elim = ElimPlan::new(&inst, &skips, &forged);
        assert!(elim.invalid() >= 1);
        let r = validate_with_elim(
            &program,
            &plan,
            CompressionConfig::SPEC_DEFAULT,
            MemoryLayout::default(),
            &elim,
        );
        assert!(r.findings.iter().any(|f| f.code == "WITNESS_INVALID"));
        assert!(!r.ok());
    }

    #[test]
    fn witness_campaign_kills_every_forgery() {
        let r = witness_campaign(&bounds_module(), &[3, 5, 9]).unwrap();
        assert!(r.baseline_ok);
        assert!(r.skips >= 3);
        for m in WitnessMutation::ALL {
            assert!(
                r.outcomes.iter().any(|o| o.mutation == m.name()),
                "operator {} never ran",
                m.name()
            );
        }
        assert_eq!(r.killed(), r.total());
        assert!(r.all_killed());
    }

    #[test]
    fn witness_campaign_is_deterministic() {
        let m = bounds_module();
        let a = witness_campaign(&m, &[7, 11]).unwrap();
        let b = witness_campaign(&m, &[7, 11]).unwrap();
        assert_eq!(a.total(), b.total());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(
                (x.mutation, x.site, x.killed, x.seed),
                (y.mutation, y.site, y.killed, y.seed)
            );
        }
    }

    #[test]
    fn finding_display_is_stable() {
        let f = Finding {
            class: FindingClass::Lowering,
            code: "CHECK_SRF_EMPTY",
            func: "main".into(),
            at: 3,
            pc: 0x1000c,
            cwe: None,
            message: "x".into(),
        };
        assert_eq!(
            f.to_string(),
            "lowering: [CHECK_SRF_EMPTY] main+3 (pc 0x1000c): x"
        );
    }
}
