//! Detector models.

use crate::{Case, Cwe};

/// The four protection/detection systems of Fig. 6, plus the four
/// related-work designs modeled by the comparative zoo (experiment Z1;
/// DESIGN.md §4l). The zoo entries stay out of [`Detector::ALL`] so the
/// Fig. 6 artifact keeps its published shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Detector {
    /// Default GCC 8.2 (stack protector + glibc heap consistency checks).
    Gcc,
    /// AddressSanitizer.
    Asan,
    /// SoftBoundCETS.
    Sbcets,
    /// HWST128 (this work).
    Hwst128,
    /// RV-CURE capability tags (arXiv:2308.02945): full spatial+temporal
    /// coverage at word granularity; tags do not survive provenance
    /// laundering through integer round-trips.
    RvCure,
    /// L4 Pointer software wide pointers (arXiv:2302.06819): byte-exact
    /// software bounds + key/lock, SoftBoundCETS-class coverage.
    L4Pointer,
    /// CryptSan PAC-style pointer signing (arXiv:2202.08669): temporal
    /// bugs authenticate-fail deterministically; spatial bugs are caught
    /// only when the overflow clobbers a signed pointer that is later
    /// used (modeled as a fixed 1-in-8 reachable slice).
    CryptSan,
    /// HeapSafe heap-only tagging (arXiv:2105.08712): stack CWEs are
    /// unreachable by construction; heap coverage matches the hardware
    /// schemes at word granularity.
    HeapSafe,
}

impl Detector {
    /// All detectors in Fig. 6 order.
    pub const ALL: [Detector; 4] = [
        Detector::Gcc,
        Detector::Sbcets,
        Detector::Asan,
        Detector::Hwst128,
    ];

    /// The four zoo detectors, in Z1 row order.
    pub const ZOO: [Detector; 4] = [
        Detector::RvCure,
        Detector::L4Pointer,
        Detector::CryptSan,
        Detector::HeapSafe,
    ];

    /// Display label.
    pub const fn label(self) -> &'static str {
        match self {
            Detector::Gcc => "GCC",
            Detector::Asan => "ASAN",
            Detector::Sbcets => "SBCETS",
            Detector::Hwst128 => "HWST128",
            Detector::RvCure => "RV-CURE",
            Detector::L4Pointer => "L4Pointer",
            Detector::CryptSan => "CryptSan",
            Detector::HeapSafe => "HeapSafe",
        }
    }
}

impl std::fmt::Display for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cases (per CWE) the *modelled* detectors catch. The tables encode
/// the published detection profiles:
///
/// * **GCC**: the stack canary only trips on contiguous stack overflows
///   that reach the guard; glibc aborts on heap-chunk corruption, some
///   double frees and invalid (interior) frees. Nothing for reads or
///   null derefs. Totals 937 = 11.20% (paper).
/// * **ASAN**: strong on redzone-adjacent overflows and quarantined
///   temporal bugs; blind to far out-of-bounds jumps past the redzone,
///   intra-object overflows — and **all of CWE690** ("ASAN cannot detect
///   any of the cases in this category", §5.2). Totals 4859 = 58.08%.
const fn model_count(det: Detector, cwe: Cwe) -> u32 {
    match det {
        Detector::Gcc => match cwe {
            Cwe::Cwe121 => 600,
            Cwe::Cwe122 => 180,
            Cwe::Cwe124 => 40,
            Cwe::Cwe415 => 100,
            Cwe::Cwe761 => 17,
            _ => 0,
        },
        Detector::Asan => match cwe {
            Cwe::Cwe121 => 1300,
            Cwe::Cwe122 => 1350,
            Cwe::Cwe124 => 620,
            Cwe::Cwe126 => 420,
            Cwe::Cwe127 => 460,
            Cwe::Cwe415 => 180,
            Cwe::Cwe416 => 400,
            Cwe::Cwe476 => 80,
            Cwe::Cwe690 => 0,
            Cwe::Cwe761 => 49,
        },
        // The pointer-based schemes are *measured*, not modelled; these
        // values are the expected outcome of executing the suite
        // (reachable cases, minus the sub-granule slice for HWST128)
        // and serve as the cross-check oracle.
        Detector::Sbcets => cwe.reachable_count(),
        Detector::Hwst128 => cwe.reachable_count() - cwe.sub_granule_count(),
        // Zoo designs (DESIGN.md §4l). RV-CURE mirrors the hardware
        // envelope; L4 Pointer the byte-exact software one; HeapSafe
        // drops the stack category entirely; CryptSan keeps the
        // temporal CWEs deterministic, never sees the unsigned NULL
        // derefs (476/690), and catches the fixed 1-in-8
        // pointer-clobber slice of the reachable spatial cases.
        Detector::RvCure => cwe.reachable_count() - cwe.sub_granule_count(),
        Detector::L4Pointer => cwe.reachable_count(),
        Detector::HeapSafe => match cwe {
            Cwe::Cwe121 => 0,
            _ => cwe.reachable_count() - cwe.sub_granule_count(),
        },
        Detector::CryptSan => match cwe {
            Cwe::Cwe415 | Cwe::Cwe416 | Cwe::Cwe761 => cwe.reachable_count(),
            Cwe::Cwe476 | Cwe::Cwe690 => 0,
            _ => cwe.reachable_count().div_ceil(8),
        },
    }
}

/// Whether the modelled detector catches this case.
///
/// Detectable cases are assigned deterministically: the first
/// `model_count` indices of each category, spread across the
/// reachable/laundered split in proportion (external detectors do not
/// care about pointer-provenance laundering).
pub fn model_detects(det: Detector, case: &Case) -> bool {
    let n = model_count(det, case.cwe);
    match det {
        Detector::Sbcets => !case.laundered,
        Detector::Hwst128 => !case.laundered && !case.sub_granule,
        Detector::RvCure => !case.laundered && !case.sub_granule,
        Detector::L4Pointer => !case.laundered,
        Detector::HeapSafe => case.cwe != Cwe::Cwe121 && !case.laundered && !case.sub_granule,
        Detector::CryptSan => match case.cwe {
            Cwe::Cwe415 | Cwe::Cwe416 | Cwe::Cwe761 => !case.laundered,
            Cwe::Cwe476 | Cwe::Cwe690 => false,
            // Pointer-clobber slice: deterministic 1-in-8 stride over
            // the reachable indices (laundered cases start at
            // `reachable_count`, so the stride count is exact).
            _ => !case.laundered && case.index.is_multiple_of(8),
        },
        _ => {
            // Stripe the detectable cases uniformly over the category so
            // per-index attributes do not correlate with detection.
            let total = case.cwe.case_count() as u64;
            let hit = (case.index as u64 * n as u64) % total;
            hit < n as u64 && n > 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn modelled_totals_match_paper_fig6() {
        let cases = suite();
        let count = |d: Detector| cases.iter().filter(|c| model_detects(d, c)).count();
        assert_eq!(count(Detector::Gcc), 937, "GCC = 11.20% of 8366");
        assert_eq!(count(Detector::Sbcets), 5395, "SBCETS = 64.49%");
        assert_eq!(count(Detector::Hwst128), 5323, "HWST128 = 63.63%");
        let asan = count(Detector::Asan);
        assert!(
            (4850..=4868).contains(&asan),
            "ASAN ≈ 4859 (58.08%), got {asan}"
        );
    }

    #[test]
    fn asan_detects_nothing_in_cwe690() {
        let cases = suite();
        let hits = cases
            .iter()
            .filter(|c| c.cwe == Cwe::Cwe690)
            .filter(|c| model_detects(Detector::Asan, c))
            .count();
        assert_eq!(hits, 0, "paper §5.2: ASAN misses all of CWE690");
    }

    #[test]
    fn zoo_model_counts_agree_with_striping() {
        // The per-CWE tables and the per-case verdicts are two views of
        // the same model; they must agree exactly for every zoo design.
        let cases = suite();
        for det in Detector::ZOO {
            for cwe in Cwe::ALL {
                let detected = cases
                    .iter()
                    .filter(|c| c.cwe == cwe)
                    .filter(|c| model_detects(det, c))
                    .count() as u32;
                assert_eq!(
                    detected,
                    model_count(det, cwe),
                    "{det} disagrees with its table on {cwe}"
                );
            }
        }
    }

    #[test]
    fn zoo_coverage_structure() {
        let cases = suite();
        let count = |d: Detector| cases.iter().filter(|c| model_detects(d, c)).count();
        // RV-CURE matches the hardware envelope, L4 Pointer the
        // byte-exact software one.
        assert_eq!(count(Detector::RvCure), count(Detector::Hwst128));
        assert_eq!(count(Detector::L4Pointer), count(Detector::Sbcets));
        // HeapSafe = hardware envelope minus the whole stack category.
        let stack = cases
            .iter()
            .filter(|c| c.cwe == Cwe::Cwe121)
            .filter(|c| model_detects(Detector::Hwst128, c))
            .count();
        assert_eq!(count(Detector::HeapSafe), count(Detector::Hwst128) - stack);
        assert!(
            !cases
                .iter()
                .filter(|c| c.cwe == Cwe::Cwe121)
                .any(|c| model_detects(Detector::HeapSafe, c)),
            "HeapSafe misses stack CWEs by construction"
        );
        // CryptSan: deterministic on temporal CWEs, probabilistic slice
        // on spatial ones, nothing on the NULL-deref categories.
        for cwe in [Cwe::Cwe476, Cwe::Cwe690] {
            assert!(!cases
                .iter()
                .filter(|c| c.cwe == cwe)
                .any(|c| model_detects(Detector::CryptSan, c)));
        }
        let cryptsan_spatial = cases
            .iter()
            .filter(|c| c.cwe.is_spatial() && model_detects(Detector::CryptSan, c))
            .count();
        let sbcets_spatial = cases
            .iter()
            .filter(|c| c.cwe.is_spatial() && model_detects(Detector::Sbcets, c))
            .count();
        assert!(
            cryptsan_spatial * 4 < sbcets_spatial,
            "the pointer-clobber slice must stay a small minority: {cryptsan_spatial} vs {sbcets_spatial}"
        );
    }

    #[test]
    fn hwst_trails_sbcets_only_in_cwe122() {
        let cases = suite();
        for cwe in Cwe::ALL {
            let sb = cases
                .iter()
                .filter(|c| c.cwe == cwe)
                .filter(|c| model_detects(Detector::Sbcets, c))
                .count();
            let hw = cases
                .iter()
                .filter(|c| c.cwe == cwe)
                .filter(|c| model_detects(Detector::Hwst128, c))
                .count();
            if cwe == Cwe::Cwe122 {
                assert_eq!(sb - hw, 72);
            } else {
                assert_eq!(sb, hw, "{cwe} must not differ");
            }
        }
    }
}
