//! Case taxonomy and suite generation.

use std::fmt;

/// The ten CWE sub-categories of the paper's Juliet evaluation (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cwe {
    /// Stack-based buffer overflow.
    Cwe121,
    /// Heap-based buffer overflow.
    Cwe122,
    /// Buffer underwrite.
    Cwe124,
    /// Buffer over-read.
    Cwe126,
    /// Buffer under-read.
    Cwe127,
    /// Double free.
    Cwe415,
    /// Use after free.
    Cwe416,
    /// NULL pointer dereference.
    Cwe476,
    /// Unchecked return value leading to NULL dereference.
    Cwe690,
    /// Free of pointer not at start of buffer.
    Cwe761,
}

impl Cwe {
    /// All categories in Fig. 6 legend order.
    pub const ALL: [Cwe; 10] = [
        Cwe::Cwe121,
        Cwe::Cwe122,
        Cwe::Cwe124,
        Cwe::Cwe126,
        Cwe::Cwe127,
        Cwe::Cwe415,
        Cwe::Cwe416,
        Cwe::Cwe476,
        Cwe::Cwe690,
        Cwe::Cwe761,
    ];

    /// The numeric CWE identifier.
    pub const fn code(self) -> u32 {
        match self {
            Cwe::Cwe121 => 121,
            Cwe::Cwe122 => 122,
            Cwe::Cwe124 => 124,
            Cwe::Cwe126 => 126,
            Cwe::Cwe127 => 127,
            Cwe::Cwe415 => 415,
            Cwe::Cwe416 => 416,
            Cwe::Cwe476 => 476,
            Cwe::Cwe690 => 690,
            Cwe::Cwe761 => 761,
        }
    }

    /// The attack-class name used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            Cwe::Cwe121 => "Stack_Based_Buffer_Overflow",
            Cwe::Cwe122 => "Heap_Based_Buffer_Overflow",
            Cwe::Cwe124 => "Buffer_Underwrite",
            Cwe::Cwe126 => "Buffer_Overread",
            Cwe::Cwe127 => "Buffer_Underread",
            Cwe::Cwe415 => "Double_Free",
            Cwe::Cwe416 => "Use_After_Free",
            Cwe::Cwe476 => "NULL_Pointer_Dereference",
            Cwe::Cwe690 => "NULL_Deref_From_Return",
            Cwe::Cwe761 => "Free_Pointer_Not_At_Start",
        }
    }

    /// Spatial (true) vs temporal (false) attack class.
    pub const fn is_spatial(self) -> bool {
        matches!(
            self,
            Cwe::Cwe121 | Cwe::Cwe122 | Cwe::Cwe124 | Cwe::Cwe126 | Cwe::Cwe127
        )
    }

    /// Number of suite cases in this category (sums: 7074 spatial +
    /// 1292 temporal = 8366, the paper's totals; the per-category split
    /// is a synthetic distribution in Juliet-like proportions).
    pub const fn case_count(self) -> u32 {
        match self {
            Cwe::Cwe121 => 2280,
            Cwe::Cwe122 => 1998,
            Cwe::Cwe124 => 1228,
            Cwe::Cwe126 => 684,
            Cwe::Cwe127 => 884,
            Cwe::Cwe415 => 190,
            Cwe::Cwe416 => 459,
            Cwe::Cwe476 => 398,
            Cwe::Cwe690 => 162,
            Cwe::Cwe761 => 83,
        }
    }

    /// Cases whose violating flow stays within instrumentation reach
    /// (pointer-based schemes can only detect these). The complement
    /// models Juliet's flow variants that launder provenance through
    /// un-instrumented code — the reason SBCETS tops out at 64.49%.
    pub(crate) const fn reachable_count(self) -> u32 {
        match self {
            Cwe::Cwe121 => 1490,
            Cwe::Cwe122 => 1310,
            Cwe::Cwe124 => 800,
            Cwe::Cwe126 => 440,
            Cwe::Cwe127 => 570,
            Cwe::Cwe415 => 150,
            Cwe::Cwe416 => 350,
            Cwe::Cwe476 => 170,
            Cwe::Cwe690 => 70,
            Cwe::Cwe761 => 45,
        }
    }

    /// Reachable CWE122 cases whose overflow stays inside the 8-byte
    /// compression granule — detected by SBCETS (exact bounds) but
    /// invisible to HWST128 (paper §5.2: 0.86% less coverage, ≈72 cases).
    pub(crate) const fn sub_granule_count(self) -> u32 {
        match self {
            Cwe::Cwe122 => 72,
            _ => 0,
        }
    }
}

impl fmt::Display for Cwe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CWE{}", self.code())
    }
}

/// Control-flow shape of a case (Juliet's flow variants: the same bug
/// expressed through different control and data flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// The violation executes in straight-line code.
    Straight,
    /// The violation sits behind a data-dependent (always-true) branch.
    Branched,
    /// The pointer crosses a function boundary and the callee violates.
    CrossFunction,
}

/// One generated test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Case {
    /// Category.
    pub cwe: Cwe,
    /// Index within the category (`0..case_count`).
    pub index: u32,
    /// The violating pointer's provenance is laundered through an
    /// un-instrumented flow (pointer-based schemes cannot see it).
    pub laundered: bool,
    /// The overflow stays within the 8-byte compression granule
    /// (CWE122 only; defeats compressed bounds but not exact bounds).
    pub sub_granule: bool,
    /// Bytes past (or before) the valid region the violation reaches.
    pub magnitude: u32,
    /// The buffer size the case allocates.
    pub buffer_size: u32,
    /// Control-flow shape.
    pub flow: Flow,
}

impl Case {
    /// Stable unique id across the suite.
    pub fn id(&self) -> u32 {
        self.cwe.code() * 100_000 + self.index
    }
}

/// Generates the full 8366-case suite deterministically.
pub fn suite() -> Vec<Case> {
    let mut v = Vec::with_capacity(8366);
    for cwe in Cwe::ALL {
        for index in 0..cwe.case_count() {
            v.push(make_case(cwe, index));
        }
    }
    v
}

/// Deterministically samples `per_cwe` *reachable* cases from every CWE
/// (fewer when a CWE has fewer reachable cases), spread evenly across
/// each CWE's index range. Used by the resilience campaigns (R1), which
/// need a small, representative, reproducible slice of the suite rather
/// than all 8366 cases.
pub fn sample_reachable(per_cwe: u32) -> Vec<Case> {
    let mut v = Vec::new();
    for cwe in Cwe::ALL {
        let reachable = cwe.reachable_count();
        let n = per_cwe.min(reachable);
        for i in 0..n {
            // Even stride over [0, reachable): stable under any per_cwe.
            let index = (i * reachable) / n.max(1);
            v.push(make_case(cwe, index));
        }
    }
    v
}

pub(crate) fn make_case(cwe: Cwe, index: u32) -> Case {
    let reachable = cwe.reachable_count();
    // Reachable cases first, laundered variants after — a fixed, easily
    // auditable layout (ordering carries no semantics).
    let laundered = index >= reachable;
    // The first `sub_granule_count` reachable CWE122 cases use an
    // unaligned buffer with an off-by-few overflow inside the granule.
    let sub_granule = !laundered && index < cwe.sub_granule_count();
    // Deterministic size/magnitude mix (Juliet uses assorted sizes).
    let buffer_size = if sub_granule {
        12 // not a multiple of 8: granule slack exists
    } else {
        16 + (index % 8) * 8
    };
    let magnitude = if sub_granule {
        1 + index % 3
    } else {
        8 + (index % 4) * 8
    };
    let flow = match index % 3 {
        0 => Flow::Straight,
        1 => Flow::Branched,
        _ => Flow::CrossFunction,
    };
    Case {
        cwe,
        index,
        laundered,
        sub_granule,
        magnitude,
        buffer_size,
        flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_reachable_is_deterministic_and_reachable_only() {
        let a = sample_reachable(3);
        assert_eq!(a, sample_reachable(3), "sampling is reproducible");
        assert_eq!(a.len(), 3 * Cwe::ALL.len());
        assert!(a.iter().all(|c| !c.laundered));
        // Oversampling clamps to what exists.
        let big = sample_reachable(u32::MAX);
        assert_eq!(
            big.len() as u32,
            Cwe::ALL.iter().map(|c| c.reachable_count()).sum::<u32>()
        );
    }

    #[test]
    fn totals_match_paper_section4() {
        let s = suite();
        assert_eq!(s.len(), 8366);
        let spatial = s.iter().filter(|c| c.cwe.is_spatial()).count();
        let temporal = s.iter().filter(|c| !c.cwe.is_spatial()).count();
        assert_eq!(spatial, 7074);
        assert_eq!(temporal, 1292);
    }

    #[test]
    fn reachable_counts_sum_to_sbcets_coverage() {
        let total: u32 = Cwe::ALL.iter().map(|c| c.reachable_count()).sum();
        assert_eq!(total, 5395, "paper: SBCETS covers 5395 cases (64.49%)");
        // HWST128 = SBCETS minus the sub-granule CWE122 slice.
        let sub: u32 = Cwe::ALL.iter().map(|c| c.sub_granule_count()).sum();
        assert_eq!(total - sub, 5323, "paper: HWST128 covers 5323 (63.63%)");
    }

    #[test]
    fn sub_granule_cases_are_shaped_right() {
        let s = suite();
        for c in s.iter().filter(|c| c.sub_granule) {
            assert_eq!(c.cwe, Cwe::Cwe122);
            assert!(!c.laundered);
            assert_eq!(c.buffer_size % 8, 4, "size must leave granule slack");
            assert!(!(c.buffer_size as u64).is_multiple_of(8));
            assert!((c.magnitude as u64) < 8 - (c.buffer_size as u64 % 8) + 8);
        }
        assert_eq!(s.iter().filter(|c| c.sub_granule).count(), 72);
    }

    #[test]
    fn flow_variants_are_distributed() {
        let s = suite();
        for flow in [Flow::Straight, Flow::Branched, Flow::CrossFunction] {
            let n = s.iter().filter(|c| c.flow == flow).count();
            assert!(n > 2000, "flow variant {flow:?} underrepresented: {n}");
        }
    }

    #[test]
    fn ids_are_unique() {
        let s = suite();
        let mut seen = std::collections::HashSet::new();
        for c in &s {
            assert!(seen.insert(c.id()));
        }
    }

    #[test]
    fn cwe_metadata() {
        assert_eq!(Cwe::Cwe121.code(), 121);
        assert!(Cwe::Cwe121.is_spatial());
        assert!(!Cwe::Cwe416.is_spatial());
        assert_eq!(Cwe::Cwe690.to_string(), "CWE690");
        assert!(Cwe::Cwe122.name().contains("Heap"));
    }
}
