//! Expanding cases into runnable IR programs.

use crate::{Case, Cwe};
use hwst_compiler::ir::{BinOp, Module, Width};
use hwst_compiler::{
    compile, compile_with_options, CompileOptions, FuncBuilder, ModuleBuilder, Scheme,
};
use hwst_sim::{Machine, SafetyConfig};

/// Builds the IR program for a case: allocate, exercise the buffer
/// legitimately, then perform the CWE's characteristic violation (in the
/// case's control-flow shape) and exit 0 if nothing trapped.
pub fn build_program(case: &Case) -> Module {
    use crate::Flow;
    let mut mb = ModuleBuilder::new();

    if case.cwe == Cwe::Cwe690 {
        // Helper whose unchecked return value is dereferenced by main.
        let mut f = mb.func("source");
        // An impossible allocation: the wrapper returns NULL bound to the
        // empty region.
        let huge = f.konst(1 << 40);
        let p = f.malloc(huge);
        f.ret(Some(p));
        f.finish();
    }

    // The violating action, shared between the flow shapes.
    #[derive(Clone, Copy)]
    enum Action {
        Read { off: i64, wide: bool },
        Write { off: i64, wide: bool },
        Free { interior: bool },
    }
    let size = case.buffer_size as i64;
    let magnitude = case.magnitude as i64;
    let action = match case.cwe {
        Cwe::Cwe121 | Cwe::Cwe122 => Action::Write {
            off: size + magnitude - 1,
            wide: false,
        },
        Cwe::Cwe124 => Action::Write {
            off: -magnitude,
            wide: false,
        },
        Cwe::Cwe126 => Action::Read {
            off: size + magnitude - 1,
            wide: false,
        },
        Cwe::Cwe127 => Action::Read {
            off: -magnitude,
            wide: false,
        },
        Cwe::Cwe415 => Action::Free { interior: false },
        Cwe::Cwe416 => Action::Read { off: 0, wide: true },
        Cwe::Cwe476 | Cwe::Cwe690 => Action::Write { off: 0, wide: true },
        Cwe::Cwe761 => Action::Free { interior: true },
    };

    // Cross-function variants route the final access through a sink
    // (pointer-argument metadata must survive the call for detection).
    if case.flow == Flow::CrossFunction {
        match action {
            Action::Read { wide, .. } => {
                let mut f = mb.func("sink_read");
                let p = f.param(true);
                let off = f.param(false);
                let slot = f.gep(p, off);
                let w = if wide { Width::U64 } else { Width::U8 };
                let _ = f.load(slot, 0, w);
                f.ret(None);
                f.finish();
            }
            Action::Write { wide, .. } => {
                let mut f = mb.func("sink_write");
                let p = f.param(true);
                let off = f.param(false);
                let slot = f.gep(p, off);
                let v = f.konst(0x41);
                let w = if wide { Width::U64 } else { Width::U8 };
                f.store(v, slot, 0, w);
                f.ret(None);
                f.finish();
            }
            Action::Free { .. } => {
                let mut f = mb.func("sink_free");
                let p = f.param(true);
                f.free(p);
                f.ret(None);
                f.finish();
            }
        }
    }

    let mut f = mb.func("main");

    // The victim pointer, by region/provenance.
    let victim = match case.cwe {
        Cwe::Cwe121 => f.stack_alloc(size as u64),
        Cwe::Cwe476 => {
            let huge = f.konst(1 << 40);
            f.malloc(huge) // NULL
        }
        Cwe::Cwe690 => f.call("source", &[]),
        _ => f.malloc_bytes(size as u64),
    };

    // Legitimate use first (Juliet cases run a good path too).
    if !matches!(case.cwe, Cwe::Cwe476 | Cwe::Cwe690) {
        let v = f.konst(0x5a);
        f.store(v, victim, 0, Width::U8);
        let _ = f.load(victim, 0, Width::U8);
    }

    // The violating pointer: direct, or laundered through a scalar
    // round-trip that strips provenance (the un-instrumented-flow
    // variants of Juliet).
    let bad_ptr = if case.laundered {
        launder(&mut f, victim)
    } else {
        victim
    };

    // Temporal setup shared by the shapes: the first (legal) free.
    if matches!(case.cwe, Cwe::Cwe415 | Cwe::Cwe416) {
        f.free(victim);
    }

    // Emit the violation in the case's control-flow shape.
    let emit = |f: &mut FuncBuilder<'_>| match action {
        Action::Read { off, wide } => {
            let o = f.konst(off);
            let slot = f.gep(bad_ptr, o);
            let w = if wide { Width::U64 } else { Width::U8 };
            let _ = f.load(slot, 0, w);
        }
        Action::Write { off, wide } => {
            let o = f.konst(off);
            let slot = f.gep(bad_ptr, o);
            let v = f.konst(0x41);
            let w = if wide { Width::U64 } else { Width::U8 };
            f.store(v, slot, 0, w);
        }
        Action::Free { interior } => {
            let target = if interior {
                f.gep_imm(bad_ptr, 8)
            } else {
                bad_ptr
            };
            f.free(target);
        }
    };
    match case.flow {
        Flow::Straight => emit(&mut f),
        Flow::Branched => {
            // Data-dependent always-true guard around the violation.
            let one = f.konst(1);
            let hit = f.new_block();
            let done = f.new_block();
            f.br(one, hit, done);
            f.switch_to(hit);
            emit(&mut f);
            f.jmp(done);
            f.switch_to(done);
        }
        Flow::CrossFunction => match action {
            Action::Read { off, .. } => {
                let o = f.konst(off);
                f.call_void("sink_read", &[bad_ptr, o]);
            }
            Action::Write { off, .. } => {
                let o = f.konst(off);
                f.call_void("sink_write", &[bad_ptr, o]);
            }
            Action::Free { interior } => {
                let target = if interior {
                    f.gep_imm(bad_ptr, 8)
                } else {
                    bad_ptr
                };
                f.call_void("sink_free", &[target]);
            }
        },
    }

    let z = f.konst(0);
    f.ret(Some(z));
    f.finish();
    mb.finish()
}

/// Builds the *benign twin* of a category: the same control/data shape
/// as [`build_program`] but with every access in bounds and every free
/// legal — Juliet's "good" functions. No scheme may trap on these
/// (false-positive check).
pub fn build_benign_program(cwe: Cwe) -> Module {
    let mut mb = ModuleBuilder::new();
    if cwe == Cwe::Cwe690 {
        let mut f = mb.func("source");
        let sz = f.konst(64);
        let p = f.malloc(sz);
        f.ret(Some(p));
        f.finish();
    }
    let mut f = mb.func("main");
    let size = 64i64;
    let victim = match cwe {
        Cwe::Cwe121 => f.stack_alloc(size as u64),
        Cwe::Cwe690 => f.call("source", &[]),
        _ => f.malloc_bytes(size as u64),
    };
    let v = f.konst(0x5a);
    f.store(v, victim, 0, Width::U8);
    match cwe {
        Cwe::Cwe121 | Cwe::Cwe122 => {
            let v = f.konst(0x41);
            f.store(v, victim, size - 1, Width::U8);
        }
        Cwe::Cwe124 => {
            let v = f.konst(0x42);
            f.store(v, victim, 0, Width::U8);
        }
        Cwe::Cwe126 => {
            let _ = f.load(victim, size - 1, Width::U8);
        }
        Cwe::Cwe127 => {
            let _ = f.load(victim, 0, Width::U8);
        }
        Cwe::Cwe415 | Cwe::Cwe761 => {
            if cwe != Cwe::Cwe121 {
                f.free(victim);
            }
        }
        Cwe::Cwe416 => {
            let _ = f.load(victim, 0, Width::U64);
            f.free(victim);
        }
        Cwe::Cwe476 | Cwe::Cwe690 => {
            // The allocation succeeded; dereference is legal.
            let v = f.konst(0x43);
            f.store(v, victim, 0, Width::U64);
        }
    }
    let z = f.konst(0);
    f.ret(Some(z));
    f.finish();
    mb.finish()
}

/// Strips provenance: the pointer value round-trips through a scalar
/// store/load, so the reloaded pointer carries no metadata.
fn launder(f: &mut FuncBuilder<'_>, p: hwst_compiler::ir::VarId) -> hwst_compiler::ir::VarId {
    let cell = f.malloc_bytes(8);
    // Scalar store: value only, no metadata.
    f.store(p, cell, 0, Width::U64);
    // Defeat any value tracking with a masked round-trip.
    let raw = f.load(cell, 0, Width::U64);
    let raw2 = f.bin_imm(BinOp::Xor, raw, 0);
    f.store(raw2, cell, 0, Width::U64);
    // Pointer load: the container's shadow was never written, so the
    // metadata comes back all-zero = unbound.
    f.load_ptr(cell, 0)
}

fn hwst128_config_for(scheme: Scheme) -> SafetyConfig {
    match scheme {
        Scheme::None | Scheme::Sbcets => SafetyConfig::baseline(),
        Scheme::Hwst128 => SafetyConfig::hwst128_no_tchk(),
        Scheme::Hwst128Tchk => SafetyConfig::default(),
        Scheme::Shore => SafetyConfig {
            temporal: false,
            keybuffer: false,
            ..SafetyConfig::default()
        },
        // Zoo designs — mirrors `hwst128::config_for` (this crate sits
        // below the facade): RV-CURE checks tags with no lock cache,
        // HeapSafe keeps the cached fast path, the software designs run
        // on the baseline core.
        Scheme::RvCure => SafetyConfig::hwst128_no_tchk(),
        Scheme::HeapSafe => SafetyConfig::default(),
        Scheme::L4Pointer | Scheme::CryptSan => SafetyConfig::baseline(),
    }
}

/// Compiles and runs a case under `scheme`; returns `true` iff a
/// spatial/temporal violation trap fired (the paper's detection
/// criterion).
pub fn execute_detects(case: &Case, scheme: Scheme) -> bool {
    let module = build_program(case);
    let cfg = hwst128_config_for(scheme);
    let prog = match compile(&module, scheme) {
        Ok(p) => p,
        Err(_) => return false,
    };
    match Machine::new(prog, cfg).run(5_000_000) {
        Err(t) => t.is_violation(),
        Ok(_) => false,
    }
}

/// Like [`execute_detects`], but with redundant-check elimination
/// switched on or off, and the metadata-completeness verifier always
/// armed: compilation fails (counting as "not detected") if RCE ever
/// deletes a check the scheme's contract still needs.
pub fn execute_detects_with(case: &Case, scheme: Scheme, rce: bool) -> bool {
    let mut opts = CompileOptions::new(scheme).with_verify();
    opts.rce = rce;
    execute_detects_opts(case, opts)
}

/// Like [`execute_detects_with`], but with full control over the pass
/// pipeline — this is what the bounds-elimination detection gate uses
/// to compare RCE-alone against RCE + the static bounds-proof pass on
/// the same case.
pub fn execute_detects_opts(case: &Case, opts: CompileOptions) -> bool {
    let module = build_program(case);
    let cfg = hwst128_config_for(opts.scheme);
    let compiled = match compile_with_options(&module, opts) {
        Ok(c) => c,
        Err(_) => return false,
    };
    match Machine::new(compiled.program, cfg).run(5_000_000) {
        Err(t) => t.is_violation(),
        Ok(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::make_case;

    fn reachable(cwe: Cwe) -> Case {
        // Index past the sub-granule slice but inside the reachable zone.
        make_case(cwe, cwe.sub_granule_count())
    }

    fn laundered(cwe: Cwe) -> Case {
        make_case(cwe, cwe.case_count() - 1)
    }

    #[test]
    fn baseline_never_detects() {
        for cwe in Cwe::ALL {
            let c = reachable(cwe);
            assert!(
                !execute_detects(&c, Scheme::None),
                "{cwe}: baseline must not trap"
            );
        }
    }

    #[test]
    fn reachable_cases_detected_by_both_pointer_schemes() {
        for cwe in Cwe::ALL {
            let c = reachable(cwe);
            assert!(
                execute_detects(&c, Scheme::Sbcets),
                "{cwe}: SBCETS must detect the reachable case"
            );
            assert!(
                execute_detects(&c, Scheme::Hwst128Tchk),
                "{cwe}: HWST128 must detect the reachable case"
            );
        }
    }

    #[test]
    fn laundered_cases_evade_pointer_schemes() {
        for cwe in Cwe::ALL {
            let c = laundered(cwe);
            assert!(c.laundered);
            assert!(
                !execute_detects(&c, Scheme::Sbcets),
                "{cwe}: laundered case must evade SBCETS"
            );
            assert!(
                !execute_detects(&c, Scheme::Hwst128Tchk),
                "{cwe}: laundered case must evade HWST128"
            );
        }
    }

    #[test]
    fn benign_twins_never_false_positive() {
        for cwe in Cwe::ALL {
            let module = build_benign_program(cwe);
            for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
                let prog = compile(&module, scheme).unwrap_or_else(|e| panic!("{cwe}: {e}"));
                let cfg = hwst128_config_for(scheme);
                let r = Machine::new(prog, cfg).run(5_000_000);
                assert!(
                    r.is_ok(),
                    "{cwe} benign twin false-positived under {scheme}: {:?}",
                    r.err()
                );
            }
        }
    }

    /// A representative slice per category: the three flow shapes of
    /// the reachable zone, the sub-granule edge (CWE122), and a
    /// laundered case.
    fn differential_sample(cwe: Cwe) -> Vec<Case> {
        let mut v: Vec<Case> = (0..cwe.reachable_count())
            .map(|i| make_case(cwe, i))
            .scan((false, false, false), |(s, b, x), c| {
                use crate::Flow;
                let pick = match c.flow {
                    Flow::Straight if !*s => {
                        *s = true;
                        true
                    }
                    Flow::Branched if !*b => {
                        *b = true;
                        true
                    }
                    Flow::CrossFunction if !*x => {
                        *x = true;
                        true
                    }
                    _ => false,
                };
                Some((c, pick))
            })
            .filter_map(|(c, pick)| pick.then_some(c))
            .collect();
        if cwe.sub_granule_count() > 0 {
            v.push(make_case(cwe, 0));
        }
        v.push(laundered(cwe));
        v
    }

    #[test]
    fn rce_never_loses_a_detection() {
        // Differential gate: for every sampled case and scheme, the
        // RCE-compiled binary detects exactly what the plain one does
        // (and the completeness verifier accepts the RCE output, since
        // execute_detects_with always arms it).
        for cwe in Cwe::ALL {
            for case in differential_sample(cwe) {
                for scheme in Scheme::ALL {
                    let plain = execute_detects_with(&case, scheme, false);
                    let rce = execute_detects_with(&case, scheme, true);
                    assert_eq!(
                        plain, rce,
                        "{cwe} case {} under {scheme}: detection changed with RCE",
                        case.index
                    );
                }
            }
        }
    }

    #[test]
    fn rce_keeps_benign_outputs_bit_identical() {
        for cwe in Cwe::ALL {
            let module = build_benign_program(cwe);
            for scheme in Scheme::ALL {
                let cfg = hwst128_config_for(scheme);
                let run = |rce: bool| {
                    let opts = if rce {
                        CompileOptions::new(scheme).with_rce().with_verify()
                    } else {
                        CompileOptions::new(scheme).with_verify()
                    };
                    let c = compile_with_options(&module, opts)
                        .unwrap_or_else(|e| panic!("{cwe} {scheme}: {e}"));
                    Machine::new(c.program, cfg)
                        .run(5_000_000)
                        .unwrap_or_else(|t| panic!("{cwe} {scheme} trapped: {t:?}"))
                };
                let plain = run(false);
                let opt = run(true);
                assert_eq!(plain.code, opt.code, "{cwe} {scheme}: exit code changed");
                assert_eq!(plain.output, opt.output, "{cwe} {scheme}: output changed");
            }
        }
    }

    #[test]
    fn sub_granule_heap_overflow_splits_the_schemes() {
        // The paper's CWE122 delta: exact software bounds catch what the
        // 8-byte-granule compressed bounds cannot.
        let c = make_case(Cwe::Cwe122, 0);
        assert!(c.sub_granule);
        assert!(
            execute_detects(&c, Scheme::Sbcets),
            "SBCETS keeps exact bounds and must detect"
        );
        assert!(
            !execute_detects(&c, Scheme::Hwst128Tchk),
            "HWST128's compressed bounds round up past the overflow"
        );
    }
}
