//! Static-detection table: `hwst-lint` coverage over the Juliet suite.
//!
//! The dynamic detectors of this crate (SBCETS/HWST128) *execute* each
//! case and count traps; this module instead runs the compiler's
//! [`lint`] pass over the same generated programs and counts cases
//! whose diagnostic set contains the case's CWE — the "what could the
//! compiler have told you before running anything" column.
//!
//! A case counts as statically detected only when a diagnostic with the
//! **matching** CWE identifier fires; incidental findings of other
//! classes do not count. Benign twins must produce zero diagnostics of
//! any kind (verified by `benign_twins_are_lint_clean`): the linter is
//! must-style and never flags code that could be correct.

use crate::{build_program, suite, Case, Cwe};
use hwst_compiler::binval;
use hwst_compiler::lint::lint;
use hwst_compiler::Scheme;

/// Whether `hwst-lint` statically detects a case: some diagnostic on
/// the case's program carries the case's own CWE code.
pub fn static_detects(case: &Case) -> bool {
    lint(&build_program(case))
        .iter()
        .any(|d| d.cwe == case.cwe.code())
}

/// Whether the binary-level validator statically detects a case: the
/// lowered HWST128_tchk image carries a proven-out-of-bounds finding
/// ([`binval::FindingClass::StaticBug`]) with the case's own CWE code.
///
/// This column is strictly more conservative than `hwst-lint`: it only
/// fires when the machine-level abstract interpreter can evaluate both
/// the access address *and* the bound metadata (globals and stack
/// allocations with constant offsets), whereas the IR linter reasons
/// symbolically over regions.
pub fn binval_detects(case: &Case) -> bool {
    match binval::validate_module(&build_program(case), Scheme::Hwst128Tchk) {
        Ok(report) => report.findings.iter().any(|f| {
            f.class == binval::FindingClass::StaticBug && f.cwe == Some(case.cwe.code() as u16)
        }),
        Err(_) => false,
    }
}

/// One row of the static-detection table.
#[derive(Debug, Clone, Copy)]
pub struct StaticRow {
    /// Category.
    pub cwe: Cwe,
    /// Cases the IR linter flags with the matching CWE.
    pub detected: u32,
    /// Cases the binary-level validator flags with the matching CWE.
    pub binval_detected: u32,
    /// Cases in the category.
    pub total: u32,
}

impl StaticRow {
    /// IR-lint detection rate in percent.
    pub fn rate(&self) -> f64 {
        100.0 * self.detected as f64 / self.total as f64
    }

    /// Binary-level detection rate in percent.
    pub fn binval_rate(&self) -> f64 {
        100.0 * self.binval_detected as f64 / self.total as f64
    }
}

/// Computes the full-suite static-detection table (one lint run and
/// one binary validation per case; no program is executed).
pub fn static_coverage() -> Vec<StaticRow> {
    static_coverage_strided(1)
}

/// [`static_coverage`] over every `stride`-th case — the same
/// subsampling knob the Fig. 6 sweep uses, for CI-budget runs. Totals
/// count the sampled cases, so rates stay comparable.
pub fn static_coverage_strided(stride: usize) -> Vec<StaticRow> {
    let mut rows: Vec<StaticRow> = Cwe::ALL
        .iter()
        .map(|&cwe| StaticRow {
            cwe,
            detected: 0,
            binval_detected: 0,
            total: 0,
        })
        .collect();
    for case in suite().into_iter().step_by(stride.max(1)) {
        // Cwe::ALL seeds one row per category, so the find cannot miss.
        let Some(row) = rows.iter_mut().find(|r| r.cwe == case.cwe) else {
            continue;
        };
        row.total += 1;
        if static_detects(&case) {
            row.detected += 1;
        }
        if binval_detects(&case) {
            row.binval_detected += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::make_case;
    use crate::{build_benign_program, Flow};

    fn straight_reachable(cwe: Cwe) -> Case {
        (0..cwe.reachable_count())
            .map(|i| make_case(cwe, i))
            .find(|c| c.flow == Flow::Straight && !c.sub_granule)
            .expect("every category has a straight reachable case")
    }

    #[test]
    fn straight_cases_are_flagged_with_their_own_cwe() {
        // The acceptance bar is ≥3 distinct CWE classes; the linter
        // covers all in-function classes.
        for cwe in [
            Cwe::Cwe121,
            Cwe::Cwe122,
            Cwe::Cwe124,
            Cwe::Cwe126,
            Cwe::Cwe127,
            Cwe::Cwe415,
            Cwe::Cwe416,
            Cwe::Cwe476,
            Cwe::Cwe761,
        ] {
            let c = straight_reachable(cwe);
            assert!(static_detects(&c), "{cwe} straight case must be flagged");
        }
    }

    #[test]
    fn cross_function_and_laundered_flows_stay_silent() {
        // The violation happens beyond the intraprocedural reach (or
        // the root is laundered): must-style analysis cannot flag it.
        for cwe in [Cwe::Cwe121, Cwe::Cwe122, Cwe::Cwe416, Cwe::Cwe476] {
            let cross = (0..cwe.reachable_count())
                .map(|i| make_case(cwe, i))
                .find(|c| c.flow == Flow::CrossFunction)
                .unwrap();
            assert!(!static_detects(&cross), "{cwe} cross-function flagged");
            let laundered = make_case(cwe, cwe.case_count() - 1);
            assert!(laundered.laundered);
            assert!(!static_detects(&laundered), "{cwe} laundered flagged");
        }
    }

    #[test]
    fn benign_twins_are_lint_clean() {
        for cwe in Cwe::ALL {
            let diags = lint(&build_benign_program(cwe));
            assert!(diags.is_empty(), "{cwe} benign twin: {:?}", diags);
        }
    }

    #[test]
    fn benign_twins_are_binval_clean() {
        // Neither lowering findings (the programs are correctly
        // lowered) nor static bugs (the twins are safe).
        for cwe in Cwe::ALL {
            let r = binval::validate_module(&build_benign_program(cwe), Scheme::Hwst128Tchk)
                .expect("benign twin compiles");
            assert!(
                r.findings.is_empty(),
                "{cwe} benign twin: {:?}",
                r.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn binval_flags_stack_overflow_cases() {
        // The binary-level interpreter proves bounds only where both
        // address and metadata are statically evaluable — stack buffers
        // with constant offsets (CWE121) are its home turf.
        let c = straight_reachable(Cwe::Cwe121);
        assert!(binval_detects(&c), "CWE121 straight case must be flagged");
    }

    #[test]
    fn binval_never_reports_lowering_findings_on_juliet() {
        // Buggy-but-correctly-lowered programs must never trip the
        // translation validator itself (sampled for test budget).
        for case in suite().into_iter().step_by(97) {
            let r = binval::validate_module(&build_program(&case), Scheme::Hwst128Tchk)
                .expect("case compiles");
            assert!(
                r.ok(),
                "CWE{} #{}: {:?}",
                case.cwe.code(),
                case.index,
                r.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn coverage_table_is_consistent() {
        let rows = static_coverage();
        assert_eq!(rows.len(), 10);
        let flagged_classes = rows.iter().filter(|r| r.detected > 0).count();
        assert!(
            flagged_classes >= 3,
            "static table must cover ≥3 CWE classes, got {flagged_classes}"
        );
        for r in &rows {
            assert!(r.detected <= r.total, "{}: {:?}", r.cwe, r);
            // Static analysis sees strictly less than the dynamic
            // schemes' reachable slice, except CWE761 where the
            // interior-free shape is visible even laundered.
            if r.cwe != Cwe::Cwe761 {
                assert!(
                    r.detected <= r.cwe.case_count(),
                    "{}: detected beyond total",
                    r.cwe
                );
            }
        }
        // CWE690 launders through a call boundary by construction.
        let cwe690 = rows.iter().find(|r| r.cwe == Cwe::Cwe690).unwrap();
        assert_eq!(cwe690.detected, 0);
    }
}
