//! Static-detection table: `hwst-lint` coverage over the Juliet suite.
//!
//! The dynamic detectors of this crate (SBCETS/HWST128) *execute* each
//! case and count traps; this module instead runs the compiler's
//! [`lint`] pass over the same generated programs and counts cases
//! whose diagnostic set contains the case's CWE — the "what could the
//! compiler have told you before running anything" column.
//!
//! A case counts as statically detected only when a diagnostic with the
//! **matching** CWE identifier fires; incidental findings of other
//! classes do not count. Benign twins must produce zero diagnostics of
//! any kind (verified by `benign_twins_are_lint_clean`): the linter is
//! must-style and never flags code that could be correct.

use crate::{build_program, suite, Case, Cwe};
use hwst_compiler::lint::lint;

/// Whether `hwst-lint` statically detects a case: some diagnostic on
/// the case's program carries the case's own CWE code.
pub fn static_detects(case: &Case) -> bool {
    lint(&build_program(case))
        .iter()
        .any(|d| d.cwe == case.cwe.code())
}

/// One row of the static-detection table.
#[derive(Debug, Clone, Copy)]
pub struct StaticRow {
    /// Category.
    pub cwe: Cwe,
    /// Cases the linter flags with the matching CWE.
    pub detected: u32,
    /// Cases in the category.
    pub total: u32,
}

impl StaticRow {
    /// Detection rate in percent.
    pub fn rate(&self) -> f64 {
        100.0 * self.detected as f64 / self.total as f64
    }
}

/// Computes the full-suite static-detection table (8366 lint runs; no
/// program is executed).
pub fn static_coverage() -> Vec<StaticRow> {
    let mut rows: Vec<StaticRow> = Cwe::ALL
        .iter()
        .map(|&cwe| StaticRow {
            cwe,
            detected: 0,
            total: cwe.case_count(),
        })
        .collect();
    for case in suite() {
        if static_detects(&case) {
            let row = rows
                .iter_mut()
                .find(|r| r.cwe == case.cwe)
                .expect("every case category has a row");
            row.detected += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::make_case;
    use crate::{build_benign_program, Flow};

    fn straight_reachable(cwe: Cwe) -> Case {
        (0..cwe.reachable_count())
            .map(|i| make_case(cwe, i))
            .find(|c| c.flow == Flow::Straight && !c.sub_granule)
            .expect("every category has a straight reachable case")
    }

    #[test]
    fn straight_cases_are_flagged_with_their_own_cwe() {
        // The acceptance bar is ≥3 distinct CWE classes; the linter
        // covers all in-function classes.
        for cwe in [
            Cwe::Cwe121,
            Cwe::Cwe122,
            Cwe::Cwe124,
            Cwe::Cwe126,
            Cwe::Cwe127,
            Cwe::Cwe415,
            Cwe::Cwe416,
            Cwe::Cwe476,
            Cwe::Cwe761,
        ] {
            let c = straight_reachable(cwe);
            assert!(static_detects(&c), "{cwe} straight case must be flagged");
        }
    }

    #[test]
    fn cross_function_and_laundered_flows_stay_silent() {
        // The violation happens beyond the intraprocedural reach (or
        // the root is laundered): must-style analysis cannot flag it.
        for cwe in [Cwe::Cwe121, Cwe::Cwe122, Cwe::Cwe416, Cwe::Cwe476] {
            let cross = (0..cwe.reachable_count())
                .map(|i| make_case(cwe, i))
                .find(|c| c.flow == Flow::CrossFunction)
                .unwrap();
            assert!(!static_detects(&cross), "{cwe} cross-function flagged");
            let laundered = make_case(cwe, cwe.case_count() - 1);
            assert!(laundered.laundered);
            assert!(!static_detects(&laundered), "{cwe} laundered flagged");
        }
    }

    #[test]
    fn benign_twins_are_lint_clean() {
        for cwe in Cwe::ALL {
            let diags = lint(&build_benign_program(cwe));
            assert!(diags.is_empty(), "{cwe} benign twin: {:?}", diags);
        }
    }

    #[test]
    fn coverage_table_is_consistent() {
        let rows = static_coverage();
        assert_eq!(rows.len(), 10);
        let flagged_classes = rows.iter().filter(|r| r.detected > 0).count();
        assert!(
            flagged_classes >= 3,
            "static table must cover ≥3 CWE classes, got {flagged_classes}"
        );
        for r in &rows {
            assert!(r.detected <= r.total, "{}: {:?}", r.cwe, r);
            // Static analysis sees strictly less than the dynamic
            // schemes' reachable slice, except CWE761 where the
            // interior-free shape is visible even laundered.
            if r.cwe != Cwe::Cwe761 {
                assert!(
                    r.detected <= r.cwe.case_count(),
                    "{}: detected beyond total",
                    r.cwe
                );
            }
        }
        // CWE690 launders through a call boundary by construction.
        let cwe690 = rows.iter().find(|r| r.cwe == Cwe::Cwe690).unwrap();
        assert_eq!(cwe690.detected, 0);
    }
}
