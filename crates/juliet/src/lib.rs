//! # hwst-juliet
//!
//! A NIST-Juliet-style memory-safety test suite (paper §4/§5.2, Fig. 6):
//! 8366 cases across the paper's ten CWE sub-categories, evaluated
//! against four detectors.
//!
//! The real Juliet 1.x C sources cannot be compiled here, so the suite is
//! *regenerated*: each [`Case`] carries the attributes that decide
//! detectability (overflow magnitude, 8-byte-granule slack, provenance
//! laundering — Juliet's many flow variants where the violation happens
//! outside the instrumentation's reach) and expands into a real IR
//! program via [`build_program`].
//!
//! * **SBCETS** and **HWST128** coverage is *measured*: every case is
//!   compiled with the corresponding instrumentation and executed on the
//!   simulator; a spatial/temporal trap counts as detection — exactly the
//!   paper's methodology ("The memory violation detection is done by
//!   parsing the output of the test case").
//! * **GCC** and **ASAN** coverage is *modelled* per-CWE (documented
//!   substitution: those toolchains are outside this substrate), with
//!   rates reproducing the published Fig. 6 profile — notably ASAN's
//!   total blindness to CWE690.
//!
//! ## Example
//!
//! ```
//! use hwst_juliet::{suite, Cwe};
//!
//! let cases = suite();
//! assert_eq!(cases.len(), 8366);
//! let spatial = cases.iter().filter(|c| c.cwe.is_spatial()).count();
//! assert_eq!(spatial, 7074); // paper §4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod case;
mod detector;
mod program;
mod report;
mod static_detect;

pub use case::{sample_reachable, suite, Case, Cwe, Flow};
pub use detector::{model_detects, Detector};
pub use program::{
    build_benign_program, build_program, execute_detects, execute_detects_opts,
    execute_detects_with,
};
pub use report::{measure_case, measure_coverage, model_coverage, CaseDetections, CoverageReport};
pub use static_detect::{
    binval_detects, static_coverage, static_coverage_strided, static_detects, StaticRow,
};
