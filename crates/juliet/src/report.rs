//! Coverage aggregation (the Fig. 6 data).

use crate::{execute_detects, model_detects, suite, Case, Cwe, Detector};
use hwst_compiler::Scheme;
use std::collections::BTreeMap;
use std::fmt;

/// Per-detector, per-CWE detection counts over the suite.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageReport {
    /// `(detector label, cwe) -> detected count`.
    counts: BTreeMap<(String, u32), u32>,
    /// Total suite size.
    pub total_cases: u32,
}

impl CoverageReport {
    /// Records one detection.
    pub fn record(&mut self, det: &str, cwe: Cwe) {
        *self
            .counts
            .entry((det.to_string(), cwe.code()))
            .or_insert(0) += 1;
    }

    /// Detections of `det` in `cwe`.
    pub fn count(&self, det: &str, cwe: Cwe) -> u32 {
        self.counts
            .get(&(det.to_string(), cwe.code()))
            .copied()
            .unwrap_or(0)
    }

    /// Total detections of `det`.
    pub fn total(&self, det: &str) -> u32 {
        Cwe::ALL.iter().map(|&c| self.count(det, c)).sum()
    }

    /// Coverage of `det` as a fraction of the suite.
    pub fn coverage(&self, det: &str) -> f64 {
        if self.total_cases == 0 {
            0.0
        } else {
            self.total(det) as f64 / self.total_cases as f64
        }
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dets: Vec<String> = {
            let mut v: Vec<String> = self.counts.keys().map(|(d, _)| d.clone()).collect();
            v.sort();
            v.dedup();
            v
        };
        write!(f, "{:<10}", "CWE")?;
        for d in &dets {
            write!(f, "{d:>10}")?;
        }
        writeln!(f)?;
        for cwe in Cwe::ALL {
            write!(f, "{:<10}", cwe.to_string())?;
            for d in &dets {
                write!(f, "{:>10}", self.count(d, cwe))?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<10}", "TOTAL")?;
        for d in &dets {
            write!(f, "{:>10}", self.total(d))?;
        }
        writeln!(f)?;
        write!(f, "{:<10}", "coverage")?;
        for d in &dets {
            write!(f, "{:>9.2}%", self.coverage(d) * 100.0)?;
        }
        Ok(())
    }
}

/// Coverage of the two modelled detectors (GCC, ASAN) plus the modelled
/// expectations for the pointer schemes — cheap, no simulation.
pub fn model_coverage() -> CoverageReport {
    let cases = suite();
    let mut r = CoverageReport {
        total_cases: cases.len() as u32,
        ..Default::default()
    };
    for c in &cases {
        for det in Detector::ALL {
            if model_detects(det, c) {
                r.record(det.label(), c.cwe);
            }
        }
    }
    r
}

/// One case's verdict under all four detectors — the unit of work a
/// parallel Fig. 6 sweep farms out (GCC/ASAN modelled, SBCETS/HWST128
/// executed on the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseDetections {
    /// The case's category.
    pub cwe: Cwe,
    /// Per-detector verdicts, in [`Detector::ALL`] order.
    pub detected: [(Detector, bool); 4],
}

/// Measures one case under every detector.
pub fn measure_case(c: &Case) -> CaseDetections {
    CaseDetections {
        cwe: c.cwe,
        detected: [
            (Detector::Gcc, model_detects(Detector::Gcc, c)),
            (Detector::Asan, model_detects(Detector::Asan, c)),
            (Detector::Sbcets, execute_detects(c, Scheme::Sbcets)),
            (Detector::Hwst128, execute_detects(c, Scheme::Hwst128Tchk)),
        ],
    }
}

impl CoverageReport {
    /// Folds one measured case into the report (counts the case and
    /// records every positive verdict). Merging is commutative, so a
    /// parallel sweep can absorb in any order — the harness absorbs in
    /// job-ID order regardless.
    pub fn absorb(&mut self, d: &CaseDetections) {
        self.total_cases += 1;
        for (det, hit) in d.detected {
            if hit {
                self.record(det.label(), d.cwe);
            }
        }
    }
}

/// *Measured* coverage: executes `1/stride` of the suite per pointer
/// scheme on the simulator (stride 1 = the full 8366 cases, as the fig6
/// harness runs it), with GCC/ASAN still modelled.
pub fn measure_coverage(stride: usize) -> CoverageReport {
    let stride = stride.max(1);
    let mut r = CoverageReport::default();
    for c in suite().into_iter().step_by(stride) {
        r.absorb(&measure_case(&c));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_report_reproduces_fig6_profile() {
        let r = model_coverage();
        assert_eq!(r.total("GCC"), 937);
        assert_eq!(r.total("SBCETS"), 5395);
        assert_eq!(r.total("HWST128"), 5323);
        assert!((r.coverage("ASAN") - 0.5808).abs() < 0.002);
        assert!((r.coverage("SBCETS") - 0.6449).abs() < 0.001);
        assert!((r.coverage("HWST128") - 0.6363).abs() < 0.001);
        assert!((r.coverage("GCC") - 0.1120).abs() < 0.001);
    }

    #[test]
    fn measured_sample_matches_model() {
        // Execute every 97th case (87 programs x 2 schemes) and check the
        // measured detections agree exactly with the per-case model.
        let cases: Vec<Case> = suite().into_iter().step_by(97).collect();
        for c in &cases {
            assert_eq!(
                execute_detects(c, Scheme::Sbcets),
                model_detects(Detector::Sbcets, c),
                "SBCETS mismatch on {:?}",
                c
            );
            assert_eq!(
                execute_detects(c, Scheme::Hwst128Tchk),
                model_detects(Detector::Hwst128, c),
                "HWST128 mismatch on {:?}",
                c
            );
        }
    }

    #[test]
    fn report_display_renders_all_rows() {
        let r = model_coverage();
        let s = r.to_string();
        assert!(s.contains("CWE121") && s.contains("CWE761"));
        assert!(s.contains("TOTAL") && s.contains("coverage"));
    }
}
