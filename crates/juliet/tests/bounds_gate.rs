//! Detection gate for the static bounds-proof pass: deleting a check is
//! only acceptable when the access is *proven* in-bounds, so the pass
//! must cost **zero** true-positive detections on the Juliet suite. A
//! stable per-CWE sample of reachable cases is compiled twice — RCE
//! alone vs RCE + bounds, verifier armed both times — and every case
//! the RCE build detects must still be detected by the bounds build.

use hwst_compiler::{CompileOptions, Scheme};
use hwst_juliet::{execute_detects_opts, sample_reachable};

#[test]
fn bounds_pass_costs_zero_true_positive_detections() {
    let cases = sample_reachable(10);
    assert!(!cases.is_empty());
    let mut detected = 0usize;
    for scheme in [Scheme::Sbcets, Scheme::Hwst128Tchk] {
        for case in &cases {
            let rce_only = CompileOptions::new(scheme).with_rce().with_verify();
            let with_bounds = rce_only.with_bounds();
            let before = execute_detects_opts(case, rce_only);
            let after = execute_detects_opts(case, with_bounds);
            if before {
                detected += 1;
                assert!(
                    after,
                    "{case:?}: detected under {scheme} with RCE alone but \
                     missed once the bounds pass removed checks"
                );
            }
            // The pass must not conjure detections either: a skip never
            // adds a trap, so any new detection is a miscompile.
            assert_eq!(
                before, after,
                "{case:?}: detection flipped under {scheme} with bounds on"
            );
        }
    }
    // The gate is vacuous if the sample contains no true positives.
    assert!(
        detected > 50,
        "sample must contain a healthy number of detected cases, got {detected}"
    );
}
