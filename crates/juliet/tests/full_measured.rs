//! The full measured Fig. 6 run: every one of the 8366 cases compiled
//! and executed under both pointer-based schemes. Takes a couple of
//! minutes in release mode, so it is `#[ignore]`d by default:
//!
//! ```sh
//! cargo test -p hwst-juliet --release -- --ignored
//! ```

use hwst_juliet::measure_coverage;

#[test]
#[ignore = "full 8366-case execution; run with --ignored in release mode"]
fn full_suite_measured_coverage_matches_paper_exactly() {
    let r = measure_coverage(1);
    assert_eq!(r.total_cases, 8366);
    assert_eq!(r.total("SBCETS"), 5395, "paper: 64.49%");
    assert_eq!(r.total("HWST128"), 5323, "paper: 63.63%");
    assert_eq!(r.total("GCC"), 937, "paper: 11.20%");
    assert!((r.coverage("ASAN") - 0.5808).abs() < 0.002);
}
