//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses.
//!
//! The real `proptest` crate cannot be fetched in the air-gapped build
//! environment, so this shim reimplements the pieces the test suites
//! rely on: `Strategy` with `prop_map`, range/tuple/`Just`/union
//! strategies, `any::<T>()`, `prop::collection::vec`, and the
//! `proptest!` / `prop_compose!` / `prop_oneof!` / `prop_assert*!`
//! macros. Generation is deterministic (fixed-seed SplitMix64) so runs
//! are reproducible; there is no shrinking — a failing case panics with
//! the generated inputs printed via `Debug`.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Size specification for collection strategies.
    pub trait IntoSizeRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy::new(element, lo, hi)
    }
}

/// Mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(1u64), 2u64..5, (10u64..12).prop_map(|v| v * 10)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i64..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn unions_pick_only_arms(v in small()) {
            prop_assert!(v == 1 || (2..5).contains(&v) || v == 100 || v == 110);
        }

        #[test]
        fn vecs_respect_sizes(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "bad len {}", v.len());
        }

        #[test]
        fn tuples_compose((a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(a < 4);
            let _ = b;
        }
    }

    prop_compose! {
        fn even()(half in 0u32..100) -> u32 {
            half * 2
        }
    }

    proptest! {
        #[test]
        fn composed_strategies_apply_body(e in even()) {
            prop_assert_eq!(e % 2, 0);
            prop_assert_ne!(e, 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..1000, 5..10);
        let a: Vec<u64> = (0..20)
            .flat_map(|i| s.new_value(&mut TestRng::for_case(i)))
            .collect();
        let b: Vec<u64> = (0..20)
            .flat_map(|i| s.new_value(&mut TestRng::for_case(i)))
            .collect();
        assert_eq!(a, b);
    }
}
