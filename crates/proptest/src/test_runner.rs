//! Deterministic test runner: RNG, configuration, and the `proptest!` /
//! `prop_assert*!` macros.

use std::fmt;

/// Deterministic SplitMix64 generator. Every test case gets a seed
/// derived from a fixed golden constant and the case index, so runs are
/// reproducible across machines and invocations.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the `case`-th iteration of a property.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15u64 ^ case.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised inside a property body (via `prop_assert*!`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input was rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected input.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Declares property tests.
///
/// Each `fn name(binding in strategy, ...) { body }` item becomes a
/// plain `#[test]` that draws inputs from the strategies `config.cases`
/// times and runs the body; `prop_assert*!` failures panic with the
/// drawn inputs attached.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (
        @impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(__case as u64);
                    let __values = (
                        $($crate::strategy::Strategy::new_value(&($s), &mut __rng),)+
                    );
                    let __desc = format!("{:?}", __values);
                    let ($($p,)+) = __values;
                    let __result = (move ||
                        -> ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                        $body
                        #[allow(unreachable_code)]
                        return ::core::result::Result::Ok(());
                    })();
                    match __result {
                        ::core::result::Result::Ok(())
                        | ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "property {} failed at case {}: {}\n  inputs: {}",
                                stringify!($name),
                                __case,
                                __msg,
                                __desc,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (`{:?}` vs `{:?}`)",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// `assert_ne!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "{} (`{:?}` vs `{:?}`)",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}
