//! Value-generation strategies.

use crate::test_runner::TestRng;

/// Generates values of an associated type from a deterministic RNG.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a reproducible sampler.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: std::fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<V: std::fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    T: std::fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy backed by a sampling closure; used by `prop_compose!`.
pub struct FnStrategy<F>(F);

impl<F, T> FnStrategy<F>
where
    T: std::fmt::Debug,
    F: Fn(&mut TestRng) -> T,
{
    /// Wraps a sampling function.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<F, T> Strategy for FnStrategy<F>
where
    T: std::fmt::Debug,
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies; used by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Creates a union with no arms (arms are added via [`Union::push`]).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn push<S>(&mut self, s: S)
    where
        S: Strategy<Value = V> + 'static,
    {
        self.arms.push(Box::new(s));
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let pick = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[pick].new_value(rng)
    }
}

/// `Vec` strategy; see [`crate::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, lo: usize, hi: usize) -> Self {
        VecStrategy { element, lo, hi }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.hi - self.lo).max(1) as u64;
        let len = self.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn sample(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn sample(rng: &mut TestRng) -> char {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{0}')
    }
}

/// Full-domain strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Builds a [`Union`] over heterogeneous strategy arms that share a
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut u = $crate::strategy::Union::new();
        $(u.push($arm);)+
        u
    }};
}

/// Defines a function returning a composed strategy.
///
/// Supports the common form used in this workspace:
///
/// ```ignore
/// prop_compose! {
///     fn my_strategy()(a in 0u64..10, b in any::<bool>()) -> Thing {
///         Thing { a, b }
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($oarg:ident: $oty:ty),* $(,)?)
                              ($($p:pat in $s:expr),+ $(,)?) -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($oarg: $oty),*)
            -> impl $crate::strategy::Strategy<Value = $ret>
        {
            $crate::strategy::FnStrategy::new(
                move |rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $p = $crate::strategy::Strategy::new_value(&($s), rng);)+
                    $body
                },
            )
        }
    };
}
