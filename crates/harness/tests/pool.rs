//! The three harness guarantees: determinism, panic isolation, and the
//! watchdog (ISSUE 3 satellite coverage), plus the ISSUE 7 retry and
//! cancellation hooks: a poisoned job must not leak its slot — the
//! retry driver re-queues fresh attempts and the pool drains
//! byte-identically at any worker count.

use hwst_harness::{
    collect_ok, run, run_with_cancel, run_with_retry, CancelToken, Event, Job, JobOutcome,
    NullSink, OutcomeKind, PoolConfig, RetryJob, RetryPolicy, Sink,
};
use std::time::Duration;

fn mixed_jobs() -> Vec<Job<String>> {
    (0..24u64)
        .map(|i| {
            Job::new(format!("job/{i:02}"), move || {
                if i % 7 == 3 {
                    Err(format!("structured failure on {i}"))
                } else {
                    Ok(format!("value-{}", i * i))
                }
            })
        })
        .collect()
}

/// A 4-worker run produces results identical (ids, labels, outcomes,
/// ordering) to the 1-worker reference run.
#[test]
fn parallel_results_match_serial_byte_for_byte() {
    let render = |cfg: &PoolConfig| -> String {
        run(mixed_jobs(), cfg, &mut NullSink)
            .iter()
            .map(|r| format!("{:?} {} {:?}\n", r.id, r.label, r.outcome))
            .collect()
    };
    let serial = render(&PoolConfig::serial());
    for workers in [2, 4, 16] {
        assert_eq!(
            serial,
            render(&PoolConfig::parallel(workers)),
            "{workers}-worker run diverged from serial"
        );
    }
}

/// A panicking job is reported as `Panicked` with its message; every
/// sibling still completes.
#[test]
fn panicking_job_is_isolated() {
    let mut jobs: Vec<Job<u32>> = (0..8u32)
        .map(|i| Job::new(format!("ok/{i}"), move || Ok(i)))
        .collect();
    jobs.insert(
        3,
        Job::new("bad/panics", || -> Result<u32, String> {
            panic!("deliberate test panic")
        }),
    );
    let results = run(jobs, &PoolConfig::parallel(4), &mut NullSink);
    assert_eq!(results.len(), 9);
    assert_eq!(
        results[3].outcome,
        JobOutcome::Panicked("deliberate test panic".into())
    );
    let (ok, failed) = collect_ok(results);
    assert_eq!(ok, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].label, "bad/panics");
    assert!(
        failed[0].error.starts_with("panicked:"),
        "{}",
        failed[0].error
    );
}

/// A runaway job hits the watchdog and is reported `TimedOut` while
/// fast siblings complete normally.
#[test]
fn watchdog_times_out_runaway_job() {
    let jobs: Vec<Job<&'static str>> = vec![
        Job::new("fast/a", || Ok("a")),
        Job::new("slow/hangs", || {
            std::thread::sleep(Duration::from_secs(30));
            Ok("never")
        }),
        Job::new("fast/b", || Ok("b")),
    ];
    let cfg = PoolConfig::parallel(3).with_timeout(Duration::from_millis(100));
    let results = run(jobs, &cfg, &mut NullSink);
    assert_eq!(results[0].outcome, JobOutcome::Ok("a"));
    assert_eq!(
        results[1].outcome,
        JobOutcome::TimedOut(Duration::from_millis(100))
    );
    assert_eq!(results[2].outcome, JobOutcome::Ok("b"));
}

/// The sink sees one Started and one Finished per job, with a final
/// completion count equal to the table size.
#[test]
fn sink_observes_every_job() {
    struct Counter {
        started: usize,
        finished: usize,
        last_done: usize,
    }
    impl Sink for Counter {
        fn event(&mut self, event: Event<'_>) {
            match event {
                Event::Started { .. } => self.started += 1,
                Event::Finished { done, kind, .. } => {
                    self.finished += 1;
                    self.last_done = done;
                    assert!(matches!(kind, OutcomeKind::Ok | OutcomeKind::Failed));
                }
            }
        }
    }
    let mut sink = Counter {
        started: 0,
        finished: 0,
        last_done: 0,
    };
    let results = run(mixed_jobs(), &PoolConfig::parallel(4), &mut sink);
    assert_eq!(sink.started, 24);
    assert_eq!(sink.finished, 24);
    assert_eq!(sink.last_done, 24);
    assert_eq!(results.len(), 24);
}

/// Regression for the ISSUE 7 satellite: a pool with one poisoned job
/// (its first attempts always panic) still drains **byte-identically**
/// at any worker count — outcomes, histories and ordering all match
/// the serial reference, and the poisoned job is re-queued from a
/// fresh factory closure instead of losing its slot.
#[test]
fn poisoned_job_drains_byte_identically() {
    let table = |cfg: &PoolConfig| -> String {
        let jobs: Vec<RetryJob<String>> = (0..12u64)
            .map(|i| {
                if i == 5 {
                    // The poisoned slot: panics on attempts 1 and 2,
                    // succeeds on attempt 3.
                    RetryJob::new("poisoned/05", |attempt| {
                        Box::new(move || {
                            assert!(attempt >= 3, "poisoned attempt {attempt}");
                            Ok(format!("recovered-on-{attempt}"))
                        })
                    })
                } else {
                    RetryJob::from_fn(format!("job/{i:02}"), move || Ok(format!("value-{i}")))
                }
            })
            .collect();
        run_with_retry(jobs, cfg, &RetryPolicy::default(), &mut NullSink)
            .iter()
            .map(|r| {
                format!(
                    "{:?} {} attempts={} history={:?} outcome={:?}\n",
                    r.id,
                    r.label,
                    r.attempts(),
                    r.history,
                    r.outcome
                )
            })
            .collect()
    };
    let serial = table(&PoolConfig::serial());
    assert!(serial.contains("recovered-on-3"), "{serial}");
    assert!(
        serial.contains("history=[Panicked, Panicked, Ok]"),
        "{serial}"
    );
    for workers in [2, 4, 16] {
        assert_eq!(
            serial,
            table(&PoolConfig::parallel(workers)),
            "{workers}-worker poisoned drain diverged from serial"
        );
    }
}

/// A permanently poisoned job exhausts its attempt budget and settles
/// as `Panicked` without blocking siblings; a timed-out job is
/// re-queueable the same way (the watchdog no longer consumes the only
/// closure).
#[test]
fn timed_out_job_is_requeued_and_budgeted() {
    let jobs: Vec<RetryJob<&'static str>> = vec![
        RetryJob::from_fn("fast/a", || Ok("a")),
        RetryJob::new("slow/hangs-once", |attempt| {
            Box::new(move || {
                if attempt == 1 {
                    std::thread::sleep(Duration::from_secs(30));
                }
                Ok("woke-up")
            })
        }),
        RetryJob::from_fn("fast/b", || Ok("b")),
    ];
    let cfg = PoolConfig::parallel(3).with_timeout(Duration::from_millis(100));
    let results = run_with_retry(jobs, &cfg, &RetryPolicy::default(), &mut NullSink);
    assert_eq!(results[0].outcome, JobOutcome::Ok("a"));
    assert_eq!(
        results[1].history,
        vec![OutcomeKind::TimedOut, OutcomeKind::Ok],
        "timed-out job must get a fresh attempt"
    );
    assert!(results[1].recovered());
    assert_eq!(results[2].outcome, JobOutcome::Ok("b"));
}

/// Raising the cancel token mid-run settles unclaimed jobs as
/// `Cancelled` — one result per job, job-ID order preserved.
#[test]
fn cancel_token_sheds_unclaimed_jobs() {
    let token = CancelToken::new();
    let tripwire = token.clone();
    let mut jobs: Vec<Job<u32>> = vec![Job::new("first/cancels-the-rest", move || {
        tripwire.cancel();
        Ok(0)
    })];
    for i in 1..8u32 {
        jobs.push(Job::new(format!("later/{i}"), move || Ok(i)));
    }
    let results = run_with_cancel(jobs, &PoolConfig::serial(), &token, &mut NullSink);
    assert_eq!(results.len(), 8);
    assert_eq!(results[0].outcome, JobOutcome::Ok(0));
    for r in &results[1..] {
        assert_eq!(r.outcome, JobOutcome::Cancelled, "{}", r.label);
    }
    let (ok, failed) = collect_ok(results);
    assert_eq!(ok, vec![0]);
    assert_eq!(failed.len(), 7);
    assert!(failed[0].error.contains("cancelled"));
}

/// An empty job vector is a no-op, and worker counts are clamped.
#[test]
fn degenerate_configurations() {
    let empty: Vec<Job<u8>> = Vec::new();
    assert!(run(empty, &PoolConfig::parallel(8), &mut NullSink).is_empty());
    let one = vec![Job::infallible("only", || 42u8)];
    let results = run(
        one,
        &PoolConfig {
            workers: 0,
            timeout: None,
        },
        &mut NullSink,
    );
    assert_eq!(results[0].outcome, JobOutcome::Ok(42));
}
