//! A dependency-free JSON value: writer (schema-stable, insertion
//! ordered) and parser (for round-trip checks and trajectory tooling).
//!
//! `serde` is unavailable offline; the experiment summaries
//! (`BENCH_*.json`) only need objects, arrays, strings, booleans and
//! numbers, with object keys kept in insertion order so diffs between
//! PRs stay minimal.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part (serialised exactly).
    Int(i64),
    /// A floating-point number (serialised via Rust's shortest
    /// round-trip `{}` formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends (or replaces) a field; chainable.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            let value = value.into();
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
        }
        self
    }

    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of `Int` or `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (strict enough for round-tripping our
    /// own output and hand-edited configs).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Num(v as f64))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, 0)
    }
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Json, indent: usize) -> fmt::Result {
    match v {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Int(i) => write!(f, "{i}"),
        Json::Num(n) => {
            if n.is_finite() {
                // `{}` on f64 is shortest-round-trip but prints
                // integral values without a point; keep them
                // distinguishable from Int for parsers.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            } else {
                // JSON has no Inf/NaN; degrade to null.
                f.write_str("null")
            }
        }
        Json::Str(s) => write_string(f, s),
        Json::Arr(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "\n{:indent$}", "", indent = (indent + 1) * 2)?;
                write_value(f, item, indent + 1)?;
            }
            write!(f, "\n{:indent$}]", "", indent = indent * 2)
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{")?;
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "\n{:indent$}", "", indent = (indent + 1) * 2)?;
                write_string(f, k)?;
                f.write_str(": ")?;
                write_value(f, val, indent + 1)?;
            }
            write!(f, "\n{:indent$}}}", "", indent = indent * 2)
        }
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err("unpaired surrogate".to_string());
                            }
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is
                // always on a char boundary).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let chunk = b
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(s, 16).map_err(|e| e.to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if text.bytes().all(|c| c.is_ascii_digit() || c == b'-') {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj()
            .set("schema", "hwst-bench/fig4")
            .set("version", 1i64)
            .set("ok", true)
            .set("geomean", 152.93)
            .set("none", Json::Null)
            .set(
                "rows",
                Json::Arr(vec![
                    Json::obj().set("name", "bzip2").set("cycles", 123456u64),
                    Json::obj()
                        .set("name", "quoted \"x\"\n")
                        .set("pct", -0.5f64),
                ]),
            );
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("hwst-bench/fig4")
        );
        assert_eq!(parsed.get("version").and_then(Json::as_i64), Some(1));
        let rows = parsed.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows[0].get("cycles").and_then(Json::as_i64), Some(123456));
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\n\" ] } ").expect("parses");
        let arr = parsed.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1], Json::Num(2.5));
        assert_eq!(arr[2], Json::Str("A\n".into()));
    }

    #[test]
    fn float_ints_stay_floats() {
        let text = Json::Num(3.0).to_string();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).expect("parses"), Json::Num(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
