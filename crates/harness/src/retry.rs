//! Re-queueable jobs and the retry driver.
//!
//! The plain [`crate::run`] consumes each [`crate::Job`]'s closure, so a
//! job the watchdog expired (or one that panicked) cannot be run again —
//! its slot in the pool is spent. This module fixes that leak with
//! *factory* jobs: a [`RetryJob`] holds a `Fn` that mints a fresh
//! attempt closure on demand, so [`run_with_retry`] can hand a new copy
//! of the work to the pool for every attempt the [`RetryPolicy`]
//! allows.
//!
//! Determinism contract: results come back in [`JobId`] order (the
//! index in the submitted vector) and every attempt wave preserves that
//! order, so the final `Vec<RetryResult<T>>` — outcomes, attempt counts
//! and histories, everything except wall clocks — is byte-identical for
//! any worker count, even when one job is permanently poisoned (see
//! `tests/pool.rs`).

use crate::pool::{run, Job, JobId, JobOutcome, OutcomeKind, PoolConfig};
use crate::sink::Sink;
use std::time::Duration;

/// A closure for one attempt of a retryable job.
pub type AttemptFn<T> = Box<dyn FnOnce() -> Result<T, String> + Send + 'static>;

/// A job that can be re-queued: a labelled factory minting one closure
/// per attempt (the attempt number, starting at 1, is passed in so
/// chaos probes and warm-start paths can behave differently per try).
pub struct RetryJob<T> {
    label: String,
    make: Box<dyn Fn(u32) -> AttemptFn<T> + Send + Sync>,
}

impl<T> RetryJob<T> {
    /// Wraps an attempt factory.
    pub fn new(
        label: impl Into<String>,
        make: impl Fn(u32) -> AttemptFn<T> + Send + Sync + 'static,
    ) -> Self {
        RetryJob {
            label: label.into(),
            make: Box::new(make),
        }
    }

    /// Wraps a cloneable closure that ignores the attempt number.
    pub fn from_fn(
        label: impl Into<String>,
        work: impl Fn() -> Result<T, String> + Clone + Send + Sync + 'static,
    ) -> Self {
        RetryJob::new(label, move |_| {
            let work = work.clone();
            Box::new(work)
        })
    }

    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Mints the closure for attempt `attempt` (1-based).
    pub fn attempt(&self, attempt: u32) -> AttemptFn<T> {
        (self.make)(attempt)
    }
}

/// Which outcomes are worth another attempt, and how many attempts a
/// job gets in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (clamped to at least 1).
    pub max_attempts: u32,
    /// Re-queue jobs the watchdog expired.
    pub retry_timed_out: bool,
    /// Re-queue jobs that panicked.
    pub retry_panicked: bool,
    /// Re-queue jobs that returned a structured `Err` (off by default:
    /// structured failures are normally deterministic).
    pub retry_failed: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            retry_timed_out: true,
            retry_panicked: true,
            retry_failed: false,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every job gets exactly one
    /// attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Whether `kind` is retryable under this policy.
    pub fn retries(&self, kind: OutcomeKind) -> bool {
        match kind {
            OutcomeKind::Ok | OutcomeKind::Cancelled => false,
            OutcomeKind::Failed => self.retry_failed,
            OutcomeKind::Panicked => self.retry_panicked,
            OutcomeKind::TimedOut => self.retry_timed_out,
        }
    }
}

/// The final state of a retryable job: the last outcome plus the full
/// attempt history.
#[derive(Debug, Clone)]
pub struct RetryResult<T> {
    /// The job's stable identity (its index in the submitted vector).
    pub id: JobId,
    /// The job's label.
    pub label: String,
    /// The outcome of the final attempt.
    pub outcome: JobOutcome<T>,
    /// How every attempt ended, in order (the last entry is
    /// `outcome.kind()`).
    pub history: Vec<OutcomeKind>,
    /// Total wall clock across all attempts (nondeterministic).
    pub wall: Duration,
}

impl<T> RetryResult<T> {
    /// Attempts actually made.
    pub fn attempts(&self) -> u32 {
        self.history.len() as u32
    }

    /// Whether the job eventually succeeded after at least one
    /// retryable failure.
    pub fn recovered(&self) -> bool {
        self.history.len() > 1 && matches!(self.outcome, JobOutcome::Ok(_))
    }
}

/// Runs every factory job on the pool, re-queueing retryable outcomes
/// until they succeed or the policy's attempt budget is spent. Results
/// are returned in [`JobId`] order regardless of worker count and of
/// which wave each job finally settled in.
pub fn run_with_retry<T: Send + 'static>(
    jobs: Vec<RetryJob<T>>,
    cfg: &PoolConfig,
    policy: &RetryPolicy,
    sink: &mut dyn Sink,
) -> Vec<RetryResult<T>> {
    let max_attempts = policy.max_attempts.max(1);
    let total = jobs.len();
    let mut settled: Vec<Option<RetryResult<T>>> = Vec::with_capacity(total);
    settled.resize_with(total, || None);
    // (original index, attempts so far, history, wall so far)
    let mut pending: Vec<(usize, u32, Vec<OutcomeKind>, Duration)> = (0..total)
        .map(|i| (i, 0, Vec::new(), Duration::ZERO))
        .collect();
    while !pending.is_empty() {
        let wave: Vec<Job<T>> = pending
            .iter()
            .map(|&(i, attempts, _, _)| {
                let work = jobs[i].attempt(attempts + 1);
                Job::new(jobs[i].label().to_string(), work)
            })
            .collect();
        let results = run(wave, cfg, sink);
        let mut next = Vec::new();
        for (slot, r) in pending.into_iter().zip(results) {
            let (i, attempts, mut history, wall) = slot;
            let attempts = attempts + 1;
            let kind = r.outcome.kind();
            history.push(kind);
            let wall = wall + r.wall;
            if policy.retries(kind) && attempts < max_attempts {
                next.push((i, attempts, history, wall));
            } else {
                settled[i] = Some(RetryResult {
                    id: JobId(i),
                    label: r.label,
                    outcome: r.outcome,
                    history,
                    wall,
                });
            }
        }
        pending = next;
    }
    let out: Vec<RetryResult<T>> = settled.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), total, "every retry job must settle");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn succeeds_without_retry() {
        let jobs = vec![RetryJob::from_fn("ok", || Ok(7u64))];
        let res = run_with_retry(
            jobs,
            &PoolConfig::serial(),
            &RetryPolicy::default(),
            &mut NullSink,
        );
        assert_eq!(res[0].history, vec![OutcomeKind::Ok]);
        assert!(!res[0].recovered());
        assert_eq!(res[0].outcome.ok(), Some(&7));
    }

    #[test]
    fn panicking_job_recovers_on_second_attempt() {
        let jobs = vec![RetryJob::new("flaky", |attempt| {
            Box::new(move || {
                assert!(attempt >= 2, "deliberate first-attempt panic");
                Ok(attempt)
            })
        })];
        let res = run_with_retry(
            jobs,
            &PoolConfig::serial(),
            &RetryPolicy::default(),
            &mut NullSink,
        );
        assert_eq!(res[0].history, vec![OutcomeKind::Panicked, OutcomeKind::Ok]);
        assert!(res[0].recovered());
        assert_eq!(res[0].outcome.ok(), Some(&2));
    }

    #[test]
    fn attempt_budget_is_respected() {
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let jobs = vec![RetryJob::new("always-panics", move |_| {
            let c = c.clone();
            Box::new(move || -> Result<u32, String> {
                c.fetch_add(1, Ordering::SeqCst);
                panic!("poisoned");
            })
        })];
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let res = run_with_retry(jobs, &PoolConfig::serial(), &policy, &mut NullSink);
        assert_eq!(res[0].history.len(), 3);
        assert!(matches!(res[0].outcome, JobOutcome::Panicked(_)));
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn structured_failures_are_final_by_default() {
        let jobs = vec![RetryJob::from_fn("fails", || {
            Err::<u32, _>("typed error".into())
        })];
        let res = run_with_retry(
            jobs,
            &PoolConfig::serial(),
            &RetryPolicy::default(),
            &mut NullSink,
        );
        assert_eq!(res[0].history, vec![OutcomeKind::Failed]);
    }
}
