//! The worker pool: job model, outcomes, and the deterministic
//! collector.

use crate::sink::{Event, Sink};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between a pool run and its
/// caller (the service layer's load-shedding and circuit-breaking
/// hook). Cancelling does not interrupt a job already executing — std
/// threads cannot be cancelled — but every job not yet claimed settles
/// immediately as [`JobOutcome::Cancelled`], so a drain stays bounded.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Stable identity of a job: its index in the vector handed to
/// [`run`]. Results are ordered by this, never by completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub usize);

/// One unit of work: a labelled fallible closure.
///
/// The closure's `Err` is for *expected* failures (a workload that
/// traps, a case that fails to compile); panics and watchdog expiries
/// are mapped to their own [`JobOutcome`] variants by the pool.
pub struct Job<T> {
    label: String,
    work: Box<dyn FnOnce() -> Result<T, String> + Send + 'static>,
}

impl<T> Job<T> {
    /// Wraps a fallible closure.
    pub fn new(
        label: impl Into<String>,
        work: impl FnOnce() -> Result<T, String> + Send + 'static,
    ) -> Self {
        Job {
            label: label.into(),
            work: Box::new(work),
        }
    }

    /// Wraps a closure that only fails by panicking.
    pub fn infallible(label: impl Into<String>, work: impl FnOnce() -> T + Send + 'static) -> Self {
        Job::new(label, move || Ok(work()))
    }

    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The failure taxonomy: how a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The closure returned `Ok`.
    Ok(T),
    /// The closure returned `Err` (an expected, structured failure).
    Failed(String),
    /// The closure panicked; the payload message is captured.
    Panicked(String),
    /// The watchdog expired before the closure finished.
    TimedOut(Duration),
    /// A [`CancelToken`] was raised before the job was claimed; the
    /// closure never ran.
    Cancelled,
}

impl<T> JobOutcome<T> {
    /// The outcome's kind, without the payload.
    pub fn kind(&self) -> OutcomeKind {
        match self {
            JobOutcome::Ok(_) => OutcomeKind::Ok,
            JobOutcome::Failed(_) => OutcomeKind::Failed,
            JobOutcome::Panicked(_) => OutcomeKind::Panicked,
            JobOutcome::TimedOut(_) => OutcomeKind::TimedOut,
            JobOutcome::Cancelled => OutcomeKind::Cancelled,
        }
    }

    /// The success value, if any.
    pub fn ok(&self) -> Option<&T> {
        match self {
            JobOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }

    /// Collapses the taxonomy into a `Result` with a prefixed error
    /// message (`failed:` / `panicked:` / `timed out after ...`).
    pub fn into_result(self) -> Result<T, String> {
        match self {
            JobOutcome::Ok(v) => Ok(v),
            JobOutcome::Failed(e) => Err(format!("failed: {e}")),
            JobOutcome::Panicked(m) => Err(format!("panicked: {m}")),
            JobOutcome::TimedOut(d) => Err(format!("timed out after {:.1}s", d.as_secs_f64())),
            JobOutcome::Cancelled => Err("cancelled before it started".to_string()),
        }
    }
}

/// [`JobOutcome`] without the payload — for progress display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Completed successfully.
    Ok,
    /// Returned a structured error.
    Failed,
    /// Panicked.
    Panicked,
    /// Hit the watchdog.
    TimedOut,
    /// Cancelled before it was claimed.
    Cancelled,
}

impl OutcomeKind {
    /// Short stable name (used in progress lines and JSON).
    pub const fn name(self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Failed => "failed",
            OutcomeKind::Panicked => "panicked",
            OutcomeKind::TimedOut => "timed-out",
            OutcomeKind::Cancelled => "cancelled",
        }
    }
}

/// One job's result. `wall` is measurement, not identity: two runs of
/// the same job vector agree on everything *except* `wall`.
#[derive(Debug, Clone)]
pub struct JobResult<T> {
    /// The job's stable identity.
    pub id: JobId,
    /// The job's label, copied from the submitted [`Job`].
    pub label: String,
    /// How it ended.
    pub outcome: JobOutcome<T>,
    /// Wall-clock duration of the closure (nondeterministic).
    pub wall: Duration,
}

/// A non-`Ok` job, flattened for reporting (see [`collect_ok`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedJob {
    /// The job's stable identity.
    pub id: JobId,
    /// The job's label.
    pub label: String,
    /// Prefixed error message (see [`JobOutcome::into_result`]).
    pub error: String,
}

/// Pool sizing and watchdog policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads (clamped to at least 1 and at most the job
    /// count).
    pub workers: usize,
    /// Per-job wall-clock limit. `None` runs jobs inline on the
    /// worker; `Some` runs each job on its own thread so an expired
    /// job can be abandoned (std threads cannot be cancelled — a
    /// timed-out job keeps running detached until process exit, which
    /// is the documented cost of the watchdog).
    pub timeout: Option<Duration>,
}

impl PoolConfig {
    /// One worker, no watchdog — the reference serial execution.
    pub fn serial() -> Self {
        PoolConfig {
            workers: 1,
            timeout: None,
        }
    }

    /// `workers` workers, no watchdog.
    pub fn parallel(workers: usize) -> Self {
        PoolConfig {
            workers: workers.max(1),
            timeout: None,
        }
    }

    /// Sized from the environment: `HWST_JOBS` if set and positive,
    /// else [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        PoolConfig::parallel(default_workers())
    }

    /// Adds a per-job watchdog.
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.timeout = Some(limit);
        self
    }
}

/// The `HWST_JOBS`-or-hardware default worker count.
pub(crate) fn default_workers() -> usize {
    std::env::var("HWST_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

enum Msg<T> {
    Started { id: JobId },
    Done(JobResult<T>),
}

/// Runs every job on the pool and returns the results **ordered by
/// [`JobId`]** — independent of worker count and completion order.
///
/// Progress events are delivered to `sink` on the calling thread.
/// Jobs are claimed from a shared cursor (work stealing by
/// construction: a free worker takes the next unclaimed job), so a
/// slow job never blocks the rest of the table.
pub fn run<T: Send + 'static>(
    jobs: Vec<Job<T>>,
    cfg: &PoolConfig,
    sink: &mut dyn Sink,
) -> Vec<JobResult<T>> {
    run_with_cancel(jobs, cfg, &CancelToken::new(), sink)
}

/// [`run`] with a cooperative [`CancelToken`]: once the token is
/// raised, every job not yet claimed settles as
/// [`JobOutcome::Cancelled`] (still one result per job, still in
/// [`JobId`] order); jobs already executing finish normally.
pub fn run_with_cancel<T: Send + 'static>(
    jobs: Vec<Job<T>>,
    cfg: &PoolConfig,
    cancel: &CancelToken,
    sink: &mut dyn Sink,
) -> Vec<JobResult<T>> {
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let slots: Vec<Mutex<Option<Job<T>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let workers = cfg.workers.clamp(1, total);
    let timeout = cfg.timeout;
    let (tx, rx) = mpsc::channel::<Msg<T>>();
    let mut results: Vec<Option<JobResult<T>>> = Vec::with_capacity(total);
    results.resize_with(total, || None);
    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let job = match slots[i].lock() {
                    Ok(mut slot) => slot.take(),
                    Err(_) => break,
                };
                let Some(job) = job else { continue };
                let id = JobId(i);
                if cancel.is_cancelled() {
                    let done = JobResult {
                        id,
                        label: job.label,
                        outcome: JobOutcome::Cancelled,
                        wall: Duration::ZERO,
                    };
                    if tx.send(Msg::Done(done)).is_err() {
                        break;
                    }
                    continue;
                }
                if tx.send(Msg::Started { id }).is_err() {
                    break;
                }
                let start = Instant::now();
                let outcome = execute(job.work, timeout);
                let done = JobResult {
                    id,
                    label: job.label,
                    outcome,
                    wall: start.elapsed(),
                };
                if tx.send(Msg::Done(done)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut done = 0usize;
        for msg in rx {
            match msg {
                Msg::Started { id } => sink.event(Event::Started {
                    id,
                    label: &labels[id.0],
                    done,
                    total,
                }),
                Msg::Done(r) => {
                    done += 1;
                    let idx = r.id.0;
                    sink.event(Event::Finished {
                        id: r.id,
                        label: &r.label,
                        kind: r.outcome.kind(),
                        wall: r.wall,
                        done,
                        total,
                    });
                    results[idx] = Some(r);
                }
            }
        }
    });
    let out: Vec<JobResult<T>> = results.into_iter().flatten().collect();
    debug_assert_eq!(out.len(), total, "every job must produce a result");
    out
}

/// Splits results into the `Ok` values (in [`JobId`] order) and the
/// flattened failures.
pub fn collect_ok<T>(results: Vec<JobResult<T>>) -> (Vec<T>, Vec<FailedJob>) {
    let mut ok = Vec::new();
    let mut failed = Vec::new();
    for r in results {
        match r.outcome.into_result() {
            Ok(v) => ok.push(v),
            Err(error) => failed.push(FailedJob {
                id: r.id,
                label: r.label,
                error,
            }),
        }
    }
    (ok, failed)
}

type WorkFn<T> = Box<dyn FnOnce() -> Result<T, String> + Send + 'static>;

fn execute<T: Send + 'static>(work: WorkFn<T>, timeout: Option<Duration>) -> JobOutcome<T> {
    let Some(limit) = timeout else {
        return classify(catch_unwind(AssertUnwindSafe(work)));
    };
    let (tx, rx) = mpsc::channel();
    let spawned = thread::Builder::new()
        .name("hwst-harness-job".into())
        .spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(work)));
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return JobOutcome::Failed(format!("could not spawn job thread: {e}")),
    };
    match rx.recv_timeout(limit) {
        Ok(r) => {
            let _ = handle.join();
            classify(r)
        }
        // The job thread is abandoned (no cancellation in std); its
        // eventual result is discarded because the channel is closed.
        Err(RecvTimeoutError::Timeout) => JobOutcome::TimedOut(limit),
        Err(RecvTimeoutError::Disconnected) => {
            JobOutcome::Failed("job thread exited without a result".into())
        }
    }
}

fn classify<T>(caught: Result<Result<T, String>, Box<dyn Any + Send>>) -> JobOutcome<T> {
    match caught {
        Ok(Ok(v)) => JobOutcome::Ok(v),
        Ok(Err(e)) => JobOutcome::Failed(e),
        Err(payload) => JobOutcome::Panicked(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
