//! # hwst-harness
//!
//! Deterministic parallel job execution for the experiment layer
//! (DESIGN.md §4e).
//!
//! Every figure, ablation and campaign in the reproduction is a
//! *matrix*: workloads × schemes, cases × detectors, fault classes ×
//! targets. This crate turns each matrix cell into a [`Job`] and runs
//! the whole table on a worker pool ([`run`]) with three guarantees the
//! naive `for` loop lacks:
//!
//! 1. **Determinism** — results are collected by [`JobId`] (the index
//!    in the submitted job vector), so the output is byte-identical
//!    whether the pool has one worker or sixteen, and independent of
//!    completion order.
//! 2. **Panic isolation** — each job runs under
//!    [`std::panic::catch_unwind`]; one diverging workload yields a
//!    structured [`JobOutcome::Panicked`] row instead of aborting the
//!    whole sweep.
//! 3. **Bounded wall-clock** — an optional per-job watchdog turns a
//!    runaway job into [`JobOutcome::TimedOut`] while its siblings
//!    finish normally.
//!
//! For long-lived callers (the `hwst-serve` batch service) the pool
//! additionally supports cooperative cancellation ([`CancelToken`] /
//! [`run_with_cancel`]: unclaimed jobs settle as
//! [`JobOutcome::Cancelled`]) and re-queueable factory jobs
//! ([`RetryJob`] / [`run_with_retry`]) — a timed-out or panicked job no
//! longer spends its only closure, so the retry driver can mint a fresh
//! attempt under a bounded [`RetryPolicy`].
//!
//! Progress is streamed through a [`Sink`] on the collector thread,
//! and results serialise to schema-stable JSON via the dependency-free
//! [`Json`] value type (crates.io is unreachable in this environment,
//! so the crate is pure `std`).
//!
//! ## Example
//!
//! ```
//! use hwst_harness::{collect_ok, run, Job, NullSink, PoolConfig};
//!
//! let jobs: Vec<Job<u64>> = (0..8u64)
//!     .map(|i| Job::new(format!("square/{i}"), move || Ok(i * i)))
//!     .collect();
//! let results = run(jobs, &PoolConfig::parallel(4), &mut NullSink);
//! let (squares, failed) = collect_ok(results);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! assert!(failed.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod pool;
mod retry;
mod sink;

pub use json::Json;
pub use pool::{
    collect_ok, run, run_with_cancel, CancelToken, FailedJob, Job, JobId, JobOutcome, JobResult,
    OutcomeKind, PoolConfig,
};
pub use retry::{run_with_retry, AttemptFn, RetryJob, RetryPolicy, RetryResult};
pub use sink::{ConsoleSink, Event, NullSink, Sink};
