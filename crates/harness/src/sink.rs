//! Progress sinks. Events are delivered on the collector (calling)
//! thread, so sinks need no synchronisation of their own.

use crate::pool::{JobId, OutcomeKind};
use std::time::Duration;

/// One progress event from the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// A worker claimed a job.
    Started {
        /// The job's identity.
        id: JobId,
        /// Its label.
        label: &'a str,
        /// Jobs finished so far.
        done: usize,
        /// Total jobs in this run.
        total: usize,
    },
    /// A job finished (in any [`OutcomeKind`]).
    Finished {
        /// The job's identity.
        id: JobId,
        /// Its label.
        label: &'a str,
        /// How it ended.
        kind: OutcomeKind,
        /// Its wall-clock duration.
        wall: Duration,
        /// Jobs finished so far (including this one).
        done: usize,
        /// Total jobs in this run.
        total: usize,
    },
}

/// Receives progress events from [`crate::run`].
pub trait Sink {
    /// Handles one event.
    fn event(&mut self, event: Event<'_>);
}

/// Discards all events.
pub struct NullSink;

impl Sink for NullSink {
    fn event(&mut self, _event: Event<'_>) {}
}

/// Prints one line per finished job to stderr (stdout stays clean for
/// the table itself). Non-`ok` outcomes are always printed; `ok` lines
/// only when `verbose`.
pub struct ConsoleSink {
    /// Print `ok` completions too, not just failures.
    pub verbose: bool,
}

impl Sink for ConsoleSink {
    fn event(&mut self, event: Event<'_>) {
        if let Event::Finished {
            label,
            kind,
            wall,
            done,
            total,
            ..
        } = event
        {
            if self.verbose || kind != OutcomeKind::Ok {
                eprintln!(
                    "[{done:>4}/{total}] {:<9} {label} ({:.1} ms)",
                    kind.name(),
                    wall.as_secs_f64() * 1e3
                );
            }
        }
    }
}
