//! Property tests for the metadata compression scheme (paper §3.3).

use hwst_metadata::{CompressionConfig, Metadata, ShadowCodec};
use proptest::prelude::*;

const LOCK_BASE: u64 = 0x4000_0000;

fn codec() -> ShadowCodec {
    ShadowCodec::new(CompressionConfig::SPEC_DEFAULT, LOCK_BASE)
}

prop_compose! {
    /// Metadata that is representable under SPEC_DEFAULT (aligned base in
    /// the 38-bit space, 8-byte-multiple size, in-region lock, 44-bit key).
    fn representable_md()(
        base_slots in 0u64..(1 << 35),
        size_slots in 0u64..(1 << 29),
        key in 0u64..(1 << 44),
        lock_index in 1u64..(1 << 20),
        temporal in any::<bool>(),
    ) -> Metadata {
        let base = base_slots << 3;
        let bound = base + (size_slots << 3);
        if temporal {
            Metadata { base, bound, key, lock: LOCK_BASE + (lock_index << 3) }
        } else {
            Metadata { base, bound, key: 0, lock: 0 }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    /// Exact round-trip for representable metadata.
    #[test]
    fn compress_decompress_identity(md in representable_md()) {
        let c = codec().compress(md).expect("representable must compress");
        prop_assert_eq!(codec().decompress(c), md);
    }

    /// Compression never *shrinks* the object: every address valid under
    /// the original metadata is valid under the decompressed metadata
    /// (no false positives from compression).
    #[test]
    fn compression_is_sound_for_valid_accesses(
        base_slots in 0u64..(1 << 20),
        size in 1u64..4096,
        at in 0u64..4096,
        len in 1u64..16,
    ) {
        let base = base_slots << 3;
        let md = Metadata::spatial(base, base + size);
        let back = codec().decompress(codec().compress(md).unwrap());
        if md.spatial_ok(base + at, len) {
            prop_assert!(
                back.spatial_ok(base + at, len),
                "compression must not reject a valid access: {md} -> {back}"
            );
        }
    }

    /// The rounding slack is strictly less than one 8-byte granule.
    #[test]
    fn bound_slack_is_sub_granule(
        base_slots in 0u64..(1 << 20),
        size in 0u64..100_000,
    ) {
        let base = base_slots << 3;
        let md = Metadata::spatial(base, base + size);
        let back = codec().decompress(codec().compress(md).unwrap());
        prop_assert_eq!(back.base, md.base, "base must be exact");
        prop_assert!(back.bound >= md.bound);
        prop_assert!(back.bound - md.bound < 8);
    }

    /// The two 64-bit halves never interfere: changing only the temporal
    /// inputs leaves the lower word bit-identical.
    #[test]
    fn temporal_does_not_perturb_spatial(
        md in representable_md(),
        key2 in 0u64..(1 << 44),
        idx2 in 1u64..(1 << 20),
    ) {
        let c1 = codec().compress(md).unwrap();
        let md2 = Metadata { key: key2, lock: LOCK_BASE + (idx2 << 3), ..md };
        let c2 = codec().compress(md2).unwrap();
        prop_assert_eq!(c1.lower, c2.lower);
    }

    /// Derived configurations always satisfy the packing invariants and
    /// can express what they were derived for.
    #[test]
    fn derive_is_self_consistent(
        mem_log2 in 20u32..43,
        obj_log2 in 6u32..33,
        locks_log2 in 4u32..22,
    ) {
        let cfg = match CompressionConfig::derive(
            1 << mem_log2,
            1 << obj_log2,
            1 << locks_log2,
        ) {
            Ok(cfg) => cfg,
            Err(_) => {
                // Derivation may legitimately fail when the spatial half
                // cannot fit: base needs mem-3 bits, range obj-1 bits.
                prop_assert!(
                    (mem_log2 - 3) + (obj_log2 - 2) > 64,
                    "derive failed for a system that should fit"
                );
                return Ok(());
            }
        };
        prop_assert!(cfg.base_bits() as u32 + cfg.range_bits() as u32 <= 64);
        prop_assert!(cfg.lock_bits() as u32 + cfg.key_bits() as u32 <= 64);
        prop_assert!(cfg.max_base() >= (1u64 << mem_log2) - 1);
        prop_assert!(cfg.max_range() >= 1u64 << obj_log2);
        prop_assert!(cfg.lock_entries() >= 1u64 << locks_log2);
    }

    /// CSR encode/decode of any valid config is lossless.
    #[test]
    fn csr_round_trip(
        base in 1u8..40,
        range in 1u8..24,
        lock in 1u8..20,
        key in 1u8..44,
    ) {
        if let Ok(cfg) = CompressionConfig::new(base, range, lock, key) {
            prop_assert_eq!(
                CompressionConfig::from_csr(cfg.to_csr()).unwrap(),
                cfg
            );
        }
    }
}
