//! # hwst-metadata
//!
//! The primary contribution of the HWST128 paper: the pointer-safety
//! **metadata model** and the **configurable metadata compression scheme**
//! that packs 256 bits of raw metadata (base/bound/key/lock, 64 bits each)
//! into a 128-bit shadow-register word (paper §3.3, Fig. 2).
//!
//! * [`Metadata`] — the four uncompressed fields carried per pointer.
//! * [`CompressionConfig`] — the per-program bit-width assignment
//!   (`BIT_base`, `BIT_range`, `BIT_lock`, `BIT_key`) with the paper's
//!   derivation rules (Eq. 3–6).
//! * [`ShadowCodec`] — hardware-model compress/decompress between
//!   [`Metadata`] and the packed [`Compressed`] 128-bit value, exactly as
//!   the COMP/DECOMP pipeline units do it.
//!
//! ## The compression scheme
//!
//! For a system with at most 256 GiB of memory a user pointer needs at
//! most 38 bits of virtual address; RV64 8-byte alignment saves another 3
//! bits, so **base** fits in 35 bits (Eq. 3). Instead of storing the bound,
//! a **range** = `bound − base` is stored (Eq. 2), sized by the largest
//! object in the program (29 bits covers SPEC2006; ≥25 required — Eq. 4).
//! The **lock** becomes an index into the lock_location region (20 bits =
//! one million live allocations — Eq. 5) and the **key** receives the
//! remaining 44 bits (Eq. 6).
//!
//! ```text
//!  127          108 107                64  63            35 34          0
//! ┌────────────────┬─────────────────────┬────────────────┬─────────────┐
//! │    key (44)    │      lock (20)      │   range (29)   │  base (35)  │
//! └────────────────┴─────────────────────┴────────────────┴─────────────┘
//!        upper 64 bits (temporal)              lower 64 bits (spatial)
//! ```
//!
//! ## Example
//!
//! ```
//! use hwst_metadata::{CompressionConfig, Metadata, ShadowCodec};
//!
//! # fn main() -> Result<(), hwst_metadata::CompressError> {
//! let cfg = CompressionConfig::SPEC_DEFAULT;
//! let codec = ShadowCodec::new(cfg, 0x4000_0000); // lock region base
//!
//! let md = Metadata {
//!     base: 0x1_0000,
//!     bound: 0x1_0400,
//!     key: 0xdead,
//!     lock: 0x4000_0008,
//! };
//! let packed = codec.compress(md)?;
//! assert_eq!(codec.decompress(packed), md);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod config;
mod error;
mod types;

pub use codec::{Compressed, ShadowCodec};
pub use config::CompressionConfig;
pub use error::CompressError;
pub use types::Metadata;

/// Number of bits in one shadow-register entry (the paper's "128" in
/// HWST128).
pub const SRF_BITS: u32 = 128;

/// Bytes of shadow memory consumed per pointer-sized (8-byte) container
/// slot: 16 bytes of compressed metadata per 8-byte pointer, hence the
/// `<< 2` linear mapping of Eq. 1 reserves 2/3 of the address space.
pub const SHADOW_BYTES_PER_SLOT: u64 = 16;
