//! The COMP/DECOMP hardware model: packing [`Metadata`] into 128 bits.

use crate::{CompressError, CompressionConfig, Metadata};
use std::fmt;

/// A compressed 128-bit shadow-register value, split into the 64-bit
/// halves the `sbdl`/`sbdu` and `lbdls`/`lbdus` instructions move
/// (paper §3.3: "the compressed 128 bits of metadata is split into upper
/// and lower sections").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Compressed {
    /// Spatial half: `range:base`.
    pub lower: u64,
    /// Temporal half: `key:lock`.
    pub upper: u64,
}

impl Compressed {
    /// Reassembles the halves into one 128-bit value (upper ≪ 64 | lower).
    pub const fn to_u128(self) -> u128 {
        ((self.upper as u128) << 64) | self.lower as u128
    }

    /// Splits a 128-bit value into halves.
    pub const fn from_u128(v: u128) -> Self {
        Compressed {
            lower: v as u64,
            upper: (v >> 64) as u64,
        }
    }

    /// Returns this record with one of its 128 bits flipped — the
    /// pre-DECOMP fault representation used by the injection campaigns
    /// (a single-event upset in an SRF cell or a shadow word). The bit
    /// index is reduced mod 128.
    pub const fn flip_bit(self, bit: u8) -> Self {
        Self::from_u128(self.to_u128() ^ (1u128 << (bit % 128)))
    }
}

impl fmt::Display for Compressed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}:{:#018x}", self.upper, self.lower)
    }
}

/// The compression/decompression engine, modelling the COMP and DECOMP
/// pipeline units configured by the `hwst.compcfg` and `hwst.lockbase`
/// CSRs.
///
/// The codec is *deliberately lossy in one documented way*: object sizes
/// are rounded **up** to the next multiple of 8 bytes, because the range
/// field stores `size >> 3` (Eq. 4's `-3` term). A sub-8-byte overflow
/// into that padding is therefore invisible to HWST128 — this reproduces
/// the paper's observation that HWST128 trails SoftBoundCETS slightly on
/// CWE122 (heap overflow) coverage (§5.2).
///
/// # Example
///
/// ```
/// use hwst_metadata::{CompressionConfig, Metadata, ShadowCodec};
///
/// # fn main() -> Result<(), hwst_metadata::CompressError> {
/// let codec = ShadowCodec::new(CompressionConfig::SPEC_DEFAULT, 0x9000_0000);
/// let md = Metadata { base: 0x8000, bound: 0x8028, key: 99, lock: 0x9000_0010 };
/// let c = codec.compress(md)?;
/// assert_eq!(codec.decompress(c), md);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowCodec {
    cfg: CompressionConfig,
    lock_region_base: u64,
}

impl ShadowCodec {
    /// Creates a codec for a given configuration and lock-region base
    /// address (the `hwst.lockbase` CSR).
    pub const fn new(cfg: CompressionConfig, lock_region_base: u64) -> Self {
        Self {
            cfg,
            lock_region_base,
        }
    }

    /// The active configuration.
    pub const fn config(self) -> CompressionConfig {
        self.cfg
    }

    /// The lock-region base address.
    pub const fn lock_region_base(self) -> u64 {
        self.lock_region_base
    }

    /// Compresses the spatial half (`bndrs` / the COMP unit's lower path).
    ///
    /// # Errors
    ///
    /// * [`CompressError::BaseMisaligned`] — base not 8-byte aligned,
    /// * [`CompressError::BaseOutOfRange`] — base exceeds `BIT_base`,
    /// * [`CompressError::InvertedBounds`] — `bound < base`,
    /// * [`CompressError::RangeTooLarge`] — object exceeds `BIT_range`.
    pub fn compress_spatial(self, base: u64, bound: u64) -> Result<u64, CompressError> {
        let cfg = self.cfg;
        if base & 0x7 != 0 {
            return Err(CompressError::BaseMisaligned { base });
        }
        let base_field = base >> 3;
        if base_field >> cfg.base_bits() != 0 {
            return Err(CompressError::BaseOutOfRange {
                base,
                bits: cfg.base_bits(),
            });
        }
        if bound < base {
            return Err(CompressError::InvertedBounds { base, bound });
        }
        // Round the size up to the 8-byte granule the field can express.
        let range = bound - base;
        let range_field = range.div_ceil(8);
        if range_field >> cfg.range_bits() != 0 {
            return Err(CompressError::RangeTooLarge {
                range,
                bits: cfg.range_bits(),
            });
        }
        Ok(base_field | (range_field << cfg.base_bits()))
    }

    /// Compresses the temporal half (`bndrt` / the COMP unit's upper
    /// path). A zero `lock` means "no temporal identity" and encodes as
    /// lock index 0 (the lock-location allocator never hands out slot 0).
    ///
    /// # Errors
    ///
    /// * [`CompressError::LockOutOfRegion`] — nonzero lock below the
    ///   region base or not 8-byte slot aligned,
    /// * [`CompressError::LockOutOfRange`] — lock index exceeds
    ///   `BIT_lock`,
    /// * [`CompressError::KeyOutOfRange`] — key exceeds `BIT_key`.
    pub fn compress_temporal(self, key: u64, lock: u64) -> Result<u64, CompressError> {
        let cfg = self.cfg;
        let index = if lock == 0 {
            0
        } else {
            if lock <= self.lock_region_base || (lock - self.lock_region_base) & 0x7 != 0 {
                return Err(CompressError::LockOutOfRegion {
                    lock,
                    region_base: self.lock_region_base,
                });
            }
            (lock - self.lock_region_base) >> 3
        };
        if index >> cfg.lock_bits() != 0 {
            return Err(CompressError::LockOutOfRange {
                index,
                bits: cfg.lock_bits(),
            });
        }
        if key >> cfg.key_bits() != 0 {
            return Err(CompressError::KeyOutOfRange {
                key,
                bits: cfg.key_bits(),
            });
        }
        Ok(index | (key << cfg.lock_bits()))
    }

    /// Compresses full metadata into a 128-bit shadow word.
    ///
    /// # Errors
    ///
    /// Any error of [`compress_spatial`](Self::compress_spatial) or
    /// [`compress_temporal`](Self::compress_temporal).
    pub fn compress(self, md: Metadata) -> Result<Compressed, CompressError> {
        Ok(Compressed {
            lower: self.compress_spatial(md.base, md.bound)?,
            upper: self.compress_temporal(md.key, md.lock)?,
        })
    }

    /// Decompresses the spatial half into `(base, bound)`.
    ///
    /// The DECOMP datapath is a fixed-width shifter/adder: with an
    /// adversarial `compcfg` (e.g. 63 base bits) a garbage shadow word
    /// can drive the adder past 2^64, and the hardware simply wraps —
    /// so the model wraps too instead of overflowing.
    pub fn decompress_spatial(self, lower: u64) -> (u64, u64) {
        let cfg = self.cfg;
        let base = (lower & ((1u64 << cfg.base_bits()) - 1)) << 3;
        let range_field = (lower >> cfg.base_bits()) & ((1u64 << cfg.range_bits()) - 1);
        (base, base.wrapping_add(range_field << 3))
    }

    /// Decompresses the temporal half into `(key, lock)`.
    ///
    /// Like [`decompress_spatial`](Self::decompress_spatial), the
    /// lock-address adder wraps: `hwst.lockbase` is software-controlled
    /// and may be arbitrarily large.
    pub fn decompress_temporal(self, upper: u64) -> (u64, u64) {
        let cfg = self.cfg;
        let index = upper & ((1u64 << cfg.lock_bits()) - 1);
        let key = (upper >> cfg.lock_bits()) & ((1u64 << cfg.key_bits()) - 1);
        let lock = if index == 0 {
            0
        } else {
            self.lock_region_base.wrapping_add(index << 3)
        };
        (key, lock)
    }

    /// Decompresses a full shadow word (the DECOMP unit).
    pub fn decompress(self, c: Compressed) -> Metadata {
        let (base, bound) = self.decompress_spatial(c.lower);
        let (key, lock) = self.decompress_temporal(c.upper);
        Metadata {
            base,
            bound,
            key,
            lock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> ShadowCodec {
        ShadowCodec::new(CompressionConfig::SPEC_DEFAULT, 0x4000_0000)
    }

    #[test]
    fn aligned_metadata_round_trips() {
        let md = Metadata {
            base: 0x10_0000,
            bound: 0x10_4000,
            key: 0xabcdef,
            lock: 0x4000_0000 + 8 * 77,
        };
        let c = codec().compress(md).unwrap();
        assert_eq!(codec().decompress(c), md);
    }

    #[test]
    fn spatial_only_metadata_round_trips() {
        let md = Metadata::spatial(0x2000, 0x3000);
        let c = codec().compress(md).unwrap();
        let back = codec().decompress(c);
        assert_eq!(back, md);
        assert!(!back.has_temporal());
    }

    #[test]
    fn unaligned_size_rounds_up_to_granule() {
        // A 13-byte object: the compressed bound covers 16 bytes, so a
        // 3-byte overflow into the padding is invisible (the documented
        // CWE122 coverage gap).
        let md = Metadata::spatial(0x1000, 0x100d);
        let c = codec().compress(md).unwrap();
        let back = codec().decompress(c);
        assert_eq!(back.base, 0x1000);
        assert_eq!(back.bound, 0x1010);
        assert!(back.bound >= md.bound && back.bound - md.bound < 8);
    }

    #[test]
    fn misaligned_base_is_rejected() {
        let md = Metadata::spatial(0x1001, 0x1100);
        assert_eq!(
            codec().compress(md),
            Err(CompressError::BaseMisaligned { base: 0x1001 })
        );
    }

    #[test]
    fn oversized_base_is_rejected() {
        // 2^39 exceeds the 35-bit aligned field (which covers 2^38).
        let md = Metadata::spatial(1 << 39, (1 << 39) + 8);
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::BaseOutOfRange { .. })
        ));
    }

    #[test]
    fn oversized_object_is_rejected() {
        // Range field is 29 bits of 8-byte granules = max 2^32 - 8 bytes.
        let md = Metadata::spatial(0, 1 << 33);
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::RangeTooLarge { .. })
        ));
    }

    #[test]
    fn max_expressible_object_is_accepted() {
        let max = CompressionConfig::SPEC_DEFAULT.max_range();
        let md = Metadata::spatial(0, max);
        let c = codec().compress(md).unwrap();
        assert_eq!(codec().decompress(c).bound, max);
    }

    #[test]
    fn inverted_bounds_are_rejected() {
        let md = Metadata {
            base: 0x2000,
            bound: 0x1000,
            key: 0,
            lock: 0,
        };
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::InvertedBounds { .. })
        ));
    }

    #[test]
    fn lock_outside_region_is_rejected() {
        let md = Metadata {
            base: 0,
            bound: 8,
            key: 1,
            lock: 0x1000,
        };
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::LockOutOfRegion { .. })
        ));
        // Slot 0 (== region base) is also rejected: reserved for "none".
        let md = Metadata {
            base: 0,
            bound: 8,
            key: 1,
            lock: 0x4000_0000,
        };
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::LockOutOfRegion { .. })
        ));
    }

    #[test]
    fn lock_index_overflow_is_rejected() {
        let over = 0x4000_0000 + 8 * (1 << 20); // index 2^20 needs 21 bits
        let md = Metadata {
            base: 0,
            bound: 8,
            key: 1,
            lock: over,
        };
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::LockOutOfRange { .. })
        ));
        // The last expressible slot is fine.
        let last = 0x4000_0000 + 8 * ((1 << 20) - 1);
        let md = Metadata {
            base: 0,
            bound: 8,
            key: 1,
            lock: last,
        };
        assert_eq!(codec().decompress(codec().compress(md).unwrap()), md);
    }

    #[test]
    fn key_overflow_is_rejected() {
        let md = Metadata {
            base: 0,
            bound: 8,
            key: 1 << 44,
            lock: 0,
        };
        assert!(matches!(
            codec().compress(md),
            Err(CompressError::KeyOutOfRange { .. })
        ));
    }

    #[test]
    fn halves_are_independent() {
        let md = Metadata {
            base: 0x8000,
            bound: 0x9000,
            key: 42,
            lock: 0x4000_0008,
        };
        let c = codec().compress(md).unwrap();
        let (b, bd) = codec().decompress_spatial(c.lower);
        let (k, l) = codec().decompress_temporal(c.upper);
        assert_eq!((b, bd, k, l), (md.base, md.bound, md.key, md.lock));
    }

    #[test]
    fn flip_bit_is_a_single_bit_involution() {
        let c = Compressed {
            lower: 0x1234_5678_9abc_def0,
            upper: 0x0fed_cba9,
        };
        for bit in [0u8, 17, 63, 64, 100, 127, 128, 255] {
            let f = c.flip_bit(bit);
            assert_eq!((f.to_u128() ^ c.to_u128()).count_ones(), 1);
            assert_eq!(f.flip_bit(bit), c, "flip twice restores");
        }
        // Bits >= 64 land in the upper (temporal) half.
        assert_eq!(c.flip_bit(64).lower, c.lower);
        assert_ne!(c.flip_bit(64).upper, c.upper);
    }

    #[test]
    fn adversarial_decompress_wraps_instead_of_overflowing() {
        // base_bits 63 is a legal config; a garbage lower word then
        // drives base + range past 2^64. The DECOMP adder wraps.
        let wide = ShadowCodec::new(CompressionConfig::new(63, 1, 1, 63).unwrap(), 0);
        let (_, bound) = wide.decompress_spatial(u64::MAX);
        let _ = bound; // any value is fine; not panicking is the contract
                       // Same for the lock adder under a huge hwst.lockbase.
        let far = ShadowCodec::new(CompressionConfig::SPEC_DEFAULT, u64::MAX - 8);
        let (_, lock) = far.decompress_temporal(0xffff);
        let _ = lock;
    }

    #[test]
    fn u128_round_trip() {
        let c = Compressed {
            lower: 0x1234_5678_9abc_def0,
            upper: 0x0fed_cba9,
        };
        assert_eq!(Compressed::from_u128(c.to_u128()), c);
    }

    #[test]
    fn embedded_config_has_tighter_limits() {
        let codec = ShadowCodec::new(CompressionConfig::EMBEDDED, 0x4000_0000);
        // 64 MiB object fits exactly, 64 MiB + 8 does not.
        let max = CompressionConfig::EMBEDDED.max_range();
        assert!(codec.compress_spatial(0, max).is_ok());
        assert!(codec.compress_spatial(0, max + 8).is_err());
    }
}
