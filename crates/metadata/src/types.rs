//! Uncompressed metadata.

use std::fmt;

/// The four uncompressed metadata fields bound to a pointer
/// (paper §3.1, Fig. 2 top).
///
/// * `base`/`bound` give **spatial** safety: a dereference of `n` bytes at
///   address `a` is legal iff `base <= a && a + n <= bound`.
/// * `key`/`lock` give **temporal** safety: `lock` is the address of a
///   *lock_location* holding the allocation's current key; a dereference is
///   legal iff `*lock == key`. Freeing erases the key at the
///   lock_location, invalidating every pointer that still carries the old
///   key.
///
/// # Example
///
/// ```
/// use hwst_metadata::Metadata;
///
/// let md = Metadata { base: 0x1000, bound: 0x1100, key: 7, lock: 0x9000 };
/// assert!(md.spatial_ok(0x1000, 8));
/// assert!(md.spatial_ok(0x10f8, 8));
/// assert!(!md.spatial_ok(0x10f9, 8), "crosses the bound");
/// assert!(!md.spatial_ok(0xfff, 1), "below the base");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Metadata {
    /// First valid byte address of the allocation.
    pub base: u64,
    /// One past the last valid byte address.
    pub bound: u64,
    /// Allocation identity key (matched against `*lock`).
    pub key: u64,
    /// Address of the lock_location holding the live key.
    pub lock: u64,
}

impl Metadata {
    /// Metadata granting access to the entire address space with no
    /// temporal identity. Used by SoftBoundCETS-style instrumentation for
    /// pointers whose provenance is unknown (e.g. from un-instrumented
    /// libraries), so they can never fault.
    pub const UNIVERSAL: Metadata = Metadata {
        base: 0,
        bound: u64::MAX,
        key: 0,
        lock: 0,
    };

    /// Creates spatial-only metadata covering `[base, bound)`.
    pub const fn spatial(base: u64, bound: u64) -> Self {
        Metadata {
            base,
            bound,
            key: 0,
            lock: 0,
        }
    }

    /// The object size in bytes (`bound - base`), the paper's *range*
    /// (Eq. 2).
    ///
    /// Returns 0 when `bound < base` (an already-invalidated pointer).
    pub const fn range(self) -> u64 {
        self.bound.saturating_sub(self.base)
    }

    /// Whether an `n`-byte access at `addr` is inside `[base, bound)`.
    pub const fn spatial_ok(self, addr: u64, n: u64) -> bool {
        addr >= self.base && n <= self.bound.wrapping_sub(addr) && addr <= self.bound
    }

    /// Whether this metadata carries a temporal identity (a nonzero lock).
    pub const fn has_temporal(self) -> bool {
        self.lock != 0
    }
}

impl fmt::Display for Metadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:#x}, {:#x}) key={:#x} lock={:#x}",
            self.base, self.bound, self.key, self.lock
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_boundaries_are_half_open() {
        let md = Metadata::spatial(100, 200);
        assert!(md.spatial_ok(100, 1));
        assert!(md.spatial_ok(199, 1));
        assert!(md.spatial_ok(192, 8));
        assert!(!md.spatial_ok(193, 8), "last byte out of bound");
        assert!(!md.spatial_ok(99, 1));
        assert!(!md.spatial_ok(200, 1));
        assert!(md.spatial_ok(200, 0), "zero-length access at bound is ok");
    }

    #[test]
    fn spatial_check_does_not_wrap() {
        let md = Metadata::spatial(100, 200);
        assert!(!md.spatial_ok(u64::MAX, 8), "wrapping access must fail");
        assert!(!md.spatial_ok(150, u64::MAX), "huge length must fail");
    }

    #[test]
    fn universal_admits_everything() {
        let md = Metadata::UNIVERSAL;
        assert!(md.spatial_ok(0, 8));
        assert!(md.spatial_ok(u64::MAX - 8, 8));
        assert!(!md.has_temporal());
    }

    #[test]
    fn range_of_inverted_bounds_is_zero() {
        let md = Metadata {
            base: 200,
            bound: 100,
            key: 0,
            lock: 0,
        };
        assert_eq!(md.range(), 0);
    }

    #[test]
    fn display_contains_fields() {
        let md = Metadata {
            base: 0x10,
            bound: 0x20,
            key: 1,
            lock: 2,
        };
        let s = md.to_string();
        assert!(s.contains("0x10") && s.contains("0x20"));
    }
}
