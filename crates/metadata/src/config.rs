//! Compression bit-width configuration (paper Eq. 3–6).

use crate::error::CompressError;
use std::fmt;

/// The per-program compression bit-width assignment, set once in the
/// 24-bit `hwst.compcfg` CSR at program start (paper §3.3).
///
/// Invariants (enforced by [`new`](Self::new)):
///
/// * `base_bits + range_bits <= 64` (lower/spatial half),
/// * `lock_bits + key_bits <= 64` (upper/temporal half),
/// * every field width is nonzero and at most 63.
///
/// # Example
///
/// ```
/// use hwst_metadata::CompressionConfig;
///
/// // The paper's general-purpose layout: 35/29/20/44.
/// let cfg = CompressionConfig::SPEC_DEFAULT;
/// assert_eq!(cfg.base_bits(), 35);
/// assert_eq!(cfg.range_bits(), 29);
/// assert_eq!(cfg.lock_bits(), 20);
/// assert_eq!(cfg.key_bits(), 44);
///
/// // Or derive it from system parameters (Eq. 3-6).
/// let derived = CompressionConfig::derive(
///     256 << 30,     // 256 GiB memory
///     (1u64 << 32) - 8, // largest object: just under 4 GiB
///     1 << 20,       // one million live locks
/// ).unwrap();
/// assert_eq!(derived, cfg);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompressionConfig {
    base_bits: u8,
    range_bits: u8,
    lock_bits: u8,
    key_bits: u8,
}

impl CompressionConfig {
    /// The paper's layout for SPEC-class workloads (Fig. 2 bottom):
    /// base 35, range 29, lock 20, key 44.
    pub const SPEC_DEFAULT: CompressionConfig = CompressionConfig {
        base_bits: 35,
        range_bits: 29,
        lock_bits: 20,
        key_bits: 44,
    };

    /// A tighter layout suited to embedded (MiBench/Olden-class)
    /// workloads: smaller memory (4 GiB → 26-bit aligned base), smaller
    /// maximal objects (64 MiB → 23-bit range), fewer live allocations
    /// (64 Ki locks → 16 bits), leaving a 48-bit key.
    pub const EMBEDDED: CompressionConfig = CompressionConfig {
        base_bits: 26,
        range_bits: 23,
        lock_bits: 16,
        key_bits: 48,
    };

    /// Creates a configuration after validating the packing invariants.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] if a half exceeds 64 bits
    /// or any width is zero or ≥ 64.
    pub fn new(
        base_bits: u8,
        range_bits: u8,
        lock_bits: u8,
        key_bits: u8,
    ) -> Result<Self, CompressError> {
        let widths = [base_bits, range_bits, lock_bits, key_bits];
        if widths.iter().any(|&w| w == 0 || w >= 64)
            || (base_bits as u32 + range_bits as u32) > 64
            || (lock_bits as u32 + key_bits as u32) > 64
        {
            return Err(CompressError::InvalidConfig {
                base_bits,
                range_bits,
                lock_bits,
                key_bits,
            });
        }
        Ok(Self {
            base_bits,
            range_bits,
            lock_bits,
            key_bits,
        })
    }

    /// Derives the bit widths from system parameters per Eq. 3–6:
    ///
    /// * `BIT_base  = ceil(log2(memory_size)) - 3`           (Eq. 3)
    /// * `BIT_range = ceil(log2(max_object_size)) - 3`       (Eq. 4)
    /// * `BIT_lock  = ceil(log2(lock_entries))`              (Eq. 5)
    /// * `BIT_key   = 128 - BIT_base - BIT_range - BIT_lock` (Eq. 6)
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] when the derived widths
    /// cannot satisfy the packing invariants (e.g. a 2^64-byte memory).
    pub fn derive(
        memory_size: u64,
        max_object_size: u64,
        lock_entries: u64,
    ) -> Result<Self, CompressError> {
        let log2_ceil = |v: u64| -> u32 {
            if v <= 1 {
                0
            } else {
                64 - (v - 1).leading_zeros()
            }
        };
        let base = log2_ceil(memory_size).saturating_sub(3) as u8;
        // Eq. 4 with the guarantee that the largest object is itself
        // expressible: the field stores size/8, so it must be able to hold
        // the value `ceil(max_object_size / 8)` (one more bit than the
        // paper's formula when the size is an exact power of two).
        let range = log2_ceil(max_object_size.div_ceil(8) + 1).max(1) as u8;
        let lock = log2_ceil(lock_entries).max(1) as u8;
        let used = base as u32 + range as u32 + lock as u32;
        if used >= 128 {
            return Err(CompressError::InvalidConfig {
                base_bits: base,
                range_bits: range,
                lock_bits: lock,
                key_bits: 0,
            });
        }
        // Key takes the remainder, capped so the temporal half fits in 64.
        let key = (128 - used).min(64 - lock as u32) as u8;
        Self::new(base, range, lock, key)
    }

    /// Width of the compressed, 8-byte-aligned base field.
    pub const fn base_bits(self) -> u8 {
        self.base_bits
    }

    /// Width of the compressed, 8-byte-aligned range field.
    pub const fn range_bits(self) -> u8 {
        self.range_bits
    }

    /// Width of the lock-index field.
    pub const fn lock_bits(self) -> u8 {
        self.lock_bits
    }

    /// Width of the key field.
    pub const fn key_bits(self) -> u8 {
        self.key_bits
    }

    /// Largest representable base address (inclusive).
    pub const fn max_base(self) -> u64 {
        (((1u64 << self.base_bits) - 1) << 3) | 0x7
    }

    /// Largest representable object size in bytes.
    pub const fn max_range(self) -> u64 {
        ((1u64 << self.range_bits) - 1) << 3
    }

    /// Number of addressable lock_location entries.
    pub const fn lock_entries(self) -> u64 {
        1u64 << self.lock_bits
    }

    /// Largest representable key value.
    pub const fn max_key(self) -> u64 {
        (1u64 << self.key_bits) - 1
    }

    /// Packs into the 24-bit CSR encoding of
    /// [`hwst_isa::csr::HWST_COMP_CFG`].
    pub const fn to_csr(self) -> u64 {
        hwst_isa::csr::pack_comp_cfg(
            self.base_bits,
            self.range_bits,
            self.lock_bits,
            self.key_bits,
        )
    }

    /// Reconstructs a configuration from the CSR encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError::InvalidConfig`] for encodings that violate
    /// the packing invariants.
    pub fn from_csr(v: u64) -> Result<Self, CompressError> {
        let (b, r, l, k) = hwst_isa::csr::unpack_comp_cfg(v);
        Self::new(b, r, l, k)
    }
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self::SPEC_DEFAULT
    }
}

impl fmt::Display for CompressionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "base:{}/range:{}/lock:{}/key:{}",
            self.base_bits, self.range_bits, self.lock_bits, self.key_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_default_matches_paper_fig2() {
        let c = CompressionConfig::SPEC_DEFAULT;
        assert_eq!(
            (c.base_bits(), c.range_bits(), c.lock_bits(), c.key_bits()),
            (35, 29, 20, 44)
        );
        // Halves fill exactly 64+64 = 128 bits.
        assert_eq!(c.base_bits() + c.range_bits(), 64);
        assert_eq!(c.lock_bits() + c.key_bits(), 64);
    }

    #[test]
    fn derive_matches_paper_worked_example() {
        // 256 GiB memory -> 38-bit addresses -> 35-bit aligned base.
        // "support is needed for up to one million unique pointers" -> 20b.
        let c = CompressionConfig::derive(256 << 30, (1 << 32) - 8, 1_000_000).unwrap();
        assert_eq!(c.base_bits(), 35);
        assert_eq!(c.lock_bits(), 20);
        assert_eq!(c.key_bits(), 44);
    }

    #[test]
    fn derive_range_minimum_for_spec() {
        // Paper: "the range bit needs to be at least 25 bits to pass the
        // SPEC2006" -> largest object just under 2^28 bytes.
        let c = CompressionConfig::derive(256 << 30, (1 << 28) - 8, 1_000_000).unwrap();
        assert_eq!(c.range_bits(), 25);
    }

    #[test]
    fn rejects_overfull_halves() {
        assert!(CompressionConfig::new(40, 30, 20, 44).is_err());
        assert!(CompressionConfig::new(35, 29, 40, 44).is_err());
        assert!(CompressionConfig::new(0, 29, 20, 44).is_err());
        assert!(CompressionConfig::new(64, 1, 20, 44).is_err());
    }

    #[test]
    fn csr_round_trip() {
        for cfg in [CompressionConfig::SPEC_DEFAULT, CompressionConfig::EMBEDDED] {
            assert_eq!(CompressionConfig::from_csr(cfg.to_csr()).unwrap(), cfg);
        }
    }

    #[test]
    fn capacity_accessors() {
        let c = CompressionConfig::SPEC_DEFAULT;
        assert_eq!(c.max_range(), ((1u64 << 29) - 1) << 3);
        assert_eq!(c.lock_entries(), 1 << 20);
        assert_eq!(c.max_key(), (1 << 44) - 1);
        // max_base covers the full 38-bit address space.
        assert!(c.max_base() >= (256u64 << 30) - 1);
    }

    #[test]
    fn derive_rejects_absurd_systems() {
        assert!(CompressionConfig::derive(u64::MAX, u64::MAX, u64::MAX).is_err());
    }

    #[test]
    fn display_shows_all_widths() {
        let s = CompressionConfig::SPEC_DEFAULT.to_string();
        assert!(s.contains("35") && s.contains("29") && s.contains("20") && s.contains("44"));
    }
}
