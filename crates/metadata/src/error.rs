//! Compression error taxonomy.

use std::fmt;

/// Errors produced when metadata cannot be represented in the configured
/// compressed layout.
///
/// In hardware these conditions would be configuration faults raised by
/// the COMP unit; the software model surfaces them eagerly so mis-sized
/// configurations are caught at bind time rather than as silent metadata
/// corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressError {
    /// The bit-width assignment violates the packing invariants.
    InvalidConfig {
        /// Configured base width.
        base_bits: u8,
        /// Configured range width.
        range_bits: u8,
        /// Configured lock width.
        lock_bits: u8,
        /// Configured key width.
        key_bits: u8,
    },
    /// The base address is not 8-byte aligned (RV64 alignment is what
    /// funds the 3 saved bits of Eq. 3).
    BaseMisaligned {
        /// The offending base address.
        base: u64,
    },
    /// The base address does not fit in the configured base field.
    BaseOutOfRange {
        /// The offending base address.
        base: u64,
        /// Configured base width.
        bits: u8,
    },
    /// The object is larger than the configured range field can express
    /// (paper: range must be sized by the largest object, Eq. 4).
    RangeTooLarge {
        /// The object size in bytes.
        range: u64,
        /// Configured range width.
        bits: u8,
    },
    /// The bound is below the base (corrupt metadata).
    InvertedBounds {
        /// Base address.
        base: u64,
        /// Bound address.
        bound: u64,
    },
    /// The lock address is outside the lock_location region or not slot
    /// aligned.
    LockOutOfRegion {
        /// The offending lock address.
        lock: u64,
        /// The region base used for index translation.
        region_base: u64,
    },
    /// The lock index exceeds the configured lock field.
    LockOutOfRange {
        /// The computed lock index.
        index: u64,
        /// Configured lock width.
        bits: u8,
    },
    /// The key does not fit in the configured key field.
    KeyOutOfRange {
        /// The offending key.
        key: u64,
        /// Configured key width.
        bits: u8,
    },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CompressError::InvalidConfig {
                base_bits,
                range_bits,
                lock_bits,
                key_bits,
            } => write!(
                f,
                "invalid compression config {base_bits}/{range_bits}/{lock_bits}/{key_bits}: halves must each fit 64 bits and widths must be 1..=63"
            ),
            CompressError::BaseMisaligned { base } => {
                write!(f, "base {base:#x} is not 8-byte aligned")
            }
            CompressError::BaseOutOfRange { base, bits } => {
                write!(f, "base {base:#x} exceeds {bits}-bit aligned field")
            }
            CompressError::RangeTooLarge { range, bits } => {
                write!(f, "object size {range:#x} exceeds {bits}-bit range field")
            }
            CompressError::InvertedBounds { base, bound } => {
                write!(f, "bound {bound:#x} is below base {base:#x}")
            }
            CompressError::LockOutOfRegion { lock, region_base } => write!(
                f,
                "lock {lock:#x} is outside the lock region at {region_base:#x}"
            ),
            CompressError::LockOutOfRange { index, bits } => {
                write!(f, "lock index {index} exceeds {bits}-bit lock field")
            }
            CompressError::KeyOutOfRange { key, bits } => {
                write!(f, "key {key:#x} exceeds {bits}-bit key field")
            }
        }
    }
}

impl std::error::Error for CompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = CompressError::BaseMisaligned { base: 0x1001 };
        let s = e.to_string();
        assert!(s.starts_with("base"));
        assert!(s.contains("0x1001"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<CompressError>();
    }
}
