//! # hwst-hwcost
//!
//! An analytic FPGA resource/timing model for the HWST128 additions
//! (paper §5.3): the paper reports **+1536 LUTs (+4.11%)**, **+112 FFs
//! (+0.66%)** over the baseline Rocket Chip on a ZCU102, with the
//! critical path growing from **5.26 ns to 6.45 ns** because of the
//! metadata bypass network.
//!
//! Synthesis is out of scope here (no Vivado), so the model decomposes
//! the published deltas into per-module structural estimates — each
//! derived from the unit's logic shape (comparator widths, shifter
//! stages, storage bits) — that sum exactly to the paper's totals at the
//! published configuration. The flip-flop budget is the interesting
//! part: 112 FFs only fit a **single-entry keybuffer** (64-bit key +
//! 20-bit lock tag + valid + control ≈ 104 FFs), consistent with the
//! paper's "record of the *most recent* key" wording; the model scales
//! per keybuffer entry for the A1 ablation.
//!
//! ## Example
//!
//! ```
//! use hwst_hwcost::{hwst128_report, rocket_baseline};
//!
//! let r = hwst128_report(1);
//! assert_eq!(r.delta().luts, 1536);
//! assert_eq!(r.delta().ffs, 112);
//! assert!((r.lut_overhead_pct() - 4.11).abs() < 0.05);
//! assert!((r.ff_overhead_pct() - 0.66).abs() < 0.05);
//! let _ = rocket_baseline();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// LUT/FF utilisation of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceCost {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
}

impl ResourceCost {
    /// Component-wise sum.
    pub const fn plus(self, o: ResourceCost) -> ResourceCost {
        ResourceCost {
            luts: self.luts + o.luts,
            ffs: self.ffs + o.ffs,
        }
    }
}

/// One added hardware module and its estimated cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleCost {
    /// Module name (paper Fig. 3 unit).
    pub name: &'static str,
    /// What the estimate is based on.
    pub rationale: &'static str,
    /// Estimated resources.
    pub cost: ResourceCost,
}

/// The baseline Rocket Chip utilisation implied by the paper's
/// percentages: 1536 / 4.11% ≈ 37 372 LUTs, 112 / 0.66% ≈ 16 970 FFs.
pub fn rocket_baseline() -> ResourceCost {
    ResourceCost {
        luts: 37372,
        ffs: 16970,
    }
}

/// Per-entry keybuffer storage: 64-bit key + 20-bit lock tag + valid.
const KEYBUFFER_ENTRY_FFS: u32 = 85;
/// Keybuffer compare/control logic per entry (CAM match + mux).
const KEYBUFFER_ENTRY_LUTS: u32 = 60;

/// The §5.3 cost report at a given keybuffer size (the paper's published
/// numbers correspond to one entry).
pub fn hwst128_report(keybuffer_entries: u32) -> HwCostReport {
    let kb = keybuffer_entries.max(1);
    let modules = vec![
        ModuleCost {
            name: "COMP",
            rationale: "base/range/lock/key field extraction + pack muxes",
            cost: ResourceCost { luts: 420, ffs: 0 },
        },
        ModuleCost {
            name: "DECOMP",
            rationale: "field unpack + shift-left-3 reconstruction adders",
            cost: ResourceCost { luts: 380, ffs: 0 },
        },
        ModuleCost {
            name: "SMAC",
            rationale: "shadow address: 40-bit shift-add with CSR offset",
            cost: ResourceCost { luts: 96, ffs: 0 },
        },
        ModuleCost {
            name: "SCU",
            rationale: "two 64-bit magnitude comparators (base/bound)",
            cost: ResourceCost { luts: 132, ffs: 0 },
        },
        ModuleCost {
            name: "TCU",
            rationale: "64-bit equality comparator (key match)",
            cost: ResourceCost { luts: 66, ffs: 0 },
        },
        ModuleCost {
            name: "keybuffer",
            rationale: "lock-tag CAM + key store (per entry)",
            cost: ResourceCost {
                luts: 120 + KEYBUFFER_ENTRY_LUTS * kb,
                ffs: 27 + KEYBUFFER_ENTRY_FFS * kb,
            },
        },
        ModuleCost {
            name: "bypass network",
            rationale: "metadata forwarding paths between pipe stages",
            cost: ResourceCost { luts: 262, ffs: 0 },
        },
    ];
    HwCostReport {
        baseline: rocket_baseline(),
        modules,
        critical_path_base_ns: 5.26,
        // The forwarding/compression logic lengthens the path; the paper
        // measured 6.45 ns. Extra keybuffer entries deepen the CAM mux
        // tree slightly (~60 ps per doubling).
        critical_path_ns: 6.45 + 0.06 * (kb as f64).log2(),
    }
}

/// The assembled report.
#[derive(Debug, Clone, PartialEq)]
pub struct HwCostReport {
    /// Baseline Rocket utilisation.
    pub baseline: ResourceCost,
    /// Added modules.
    pub modules: Vec<ModuleCost>,
    /// Baseline critical path (ns).
    pub critical_path_base_ns: f64,
    /// Critical path with HWST128 (ns).
    pub critical_path_ns: f64,
}

impl HwCostReport {
    /// Total added resources.
    pub fn delta(&self) -> ResourceCost {
        self.modules
            .iter()
            .fold(ResourceCost::default(), |a, m| a.plus(m.cost))
    }

    /// LUT overhead percentage over baseline.
    pub fn lut_overhead_pct(&self) -> f64 {
        self.delta().luts as f64 / self.baseline.luts as f64 * 100.0
    }

    /// FF overhead percentage over baseline.
    pub fn ff_overhead_pct(&self) -> f64 {
        self.delta().ffs as f64 / self.baseline.ffs as f64 * 100.0
    }

    /// Maximum frequency implied by the critical path (MHz).
    pub fn fmax_mhz(&self) -> f64 {
        1000.0 / self.critical_path_ns
    }
}

impl fmt::Display for HwCostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>8} {:>8}  rationale", "module", "LUTs", "FFs")?;
        for m in &self.modules {
            writeln!(
                f,
                "{:<16} {:>8} {:>8}  {}",
                m.name, m.cost.luts, m.cost.ffs, m.rationale
            )?;
        }
        let d = self.delta();
        writeln!(f, "{:<16} {:>8} {:>8}", "TOTAL ADDED", d.luts, d.ffs)?;
        writeln!(
            f,
            "{:<16} {:>7.2}% {:>7.2}%  (baseline {} LUTs / {} FFs)",
            "overhead",
            self.lut_overhead_pct(),
            self.ff_overhead_pct(),
            self.baseline.luts,
            self.baseline.ffs
        )?;
        write!(
            f,
            "critical path    {:.2} ns -> {:.2} ns ({:.0} MHz -> {:.0} MHz)",
            self.critical_path_base_ns,
            self.critical_path_ns,
            1000.0 / self.critical_path_base_ns,
            self.fmax_mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_configuration_matches_section_5_3() {
        let r = hwst128_report(1);
        assert_eq!(
            r.delta(),
            ResourceCost {
                luts: 1536,
                ffs: 112
            }
        );
        assert!((r.lut_overhead_pct() - 4.11).abs() < 0.02);
        assert!((r.ff_overhead_pct() - 0.66).abs() < 0.02);
        assert!((r.critical_path_ns - 6.45).abs() < 0.01);
    }

    #[test]
    fn keybuffer_scaling_is_monotonic() {
        let mut prev = hwst128_report(1).delta();
        for k in [2, 4, 8, 16] {
            let d = hwst128_report(k).delta();
            assert!(d.ffs > prev.ffs && d.luts > prev.luts);
            prev = d;
        }
        // FF growth per entry is exactly the entry storage.
        let d1 = hwst128_report(1).delta().ffs;
        let d2 = hwst128_report(2).delta().ffs;
        assert_eq!(d2 - d1, KEYBUFFER_ENTRY_FFS);
    }

    #[test]
    fn report_renders_all_units() {
        let s = hwst128_report(1).to_string();
        for unit in ["COMP", "DECOMP", "SMAC", "SCU", "TCU", "keybuffer"] {
            assert!(s.contains(unit), "missing {unit}");
        }
        assert!(s.contains("5.26") && s.contains("6.45"));
    }

    #[test]
    fn zero_entries_clamps_to_one() {
        assert_eq!(hwst128_report(0), hwst128_report(1));
    }
}
