//! The CETS-style lock_location region.

use std::fmt;

/// A freshly issued temporal identity: a unique key and the address of
/// the lock_location that holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockGrant {
    /// The unique key assigned to the allocation.
    pub key: u64,
    /// Address of the lock_location slot holding the key.
    pub lock: u64,
}

/// Errors from the lock-location allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// All lock slots are in use (more live allocations than Eq. 5 sized
    /// the lock field for).
    Exhausted {
        /// Total slots in the region.
        slots: u64,
    },
    /// Release of an address that is not a live lock slot.
    InvalidRelease {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LockError::Exhausted { slots } => {
                write!(f, "all {slots} lock_location slots are live")
            }
            LockError::InvalidRelease { addr } => {
                write!(f, "release of {addr:#x} which is not a live lock slot")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Allocator for the lock_location region (paper §3.1, §3.4).
///
/// * Every allocation receives a **monotonically unique key** — a freed
///   slot is recycled, but "the new allocation will have a different
///   unique key that prevents access from invalid pointers" (§3.4).
/// * **Slot 0 is reserved** as the "no temporal identity" encoding used
///   by the metadata compressor.
/// * [`release`](Self::release) returns the slot to the free list; the
///   caller is responsible for erasing the key in simulated memory
///   (writing 0 to the lock_location), which is what invalidates dangling
///   pointers.
///
/// # Example
///
/// ```
/// use hwst_mem::LockAllocator;
///
/// # fn main() -> Result<(), hwst_mem::LockError> {
/// let mut locks = LockAllocator::new(0x9000_0000, 16);
/// let a = locks.acquire()?;
/// let b = locks.acquire()?;
/// assert_ne!(a.key, b.key, "keys are unique");
/// assert_ne!(a.lock, 0x9000_0000, "slot 0 is reserved");
/// locks.release(a.lock)?;
/// let c = locks.acquire()?;
/// assert_eq!(c.lock, a.lock, "slots are recycled");
/// assert_ne!(c.key, a.key, "but keys never repeat");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LockAllocator {
    region_base: u64,
    slots: u64,
    next_fresh_slot: u64,
    free_slots: Vec<u64>,
    live: std::collections::HashSet<u64>,
    next_key: u64,
}

impl LockAllocator {
    /// Creates an allocator for `slots` lock_locations starting at
    /// `region_base` (slot 0 reserved, so `slots - 1` usable).
    ///
    /// # Panics
    ///
    /// Panics if `region_base` is not 8-byte aligned or `slots < 2`.
    pub fn new(region_base: u64, slots: u64) -> Self {
        assert_eq!(region_base % 8, 0, "lock region must be 8-byte aligned");
        assert!(slots >= 2, "need at least one usable slot besides slot 0");
        LockAllocator {
            region_base,
            slots,
            next_fresh_slot: 1,
            free_slots: Vec::new(),
            live: std::collections::HashSet::new(),
            next_key: 1,
        }
    }

    /// The region base address (the `hwst.lockbase` CSR value).
    pub fn region_base(&self) -> u64 {
        self.region_base
    }

    /// Acquires a slot and issues a fresh key.
    ///
    /// # Errors
    ///
    /// [`LockError::Exhausted`] when every slot is live.
    pub fn acquire(&mut self) -> Result<LockGrant, LockError> {
        let slot = if let Some(s) = self.free_slots.pop() {
            s
        } else if self.next_fresh_slot < self.slots {
            let s = self.next_fresh_slot;
            self.next_fresh_slot += 1;
            s
        } else {
            return Err(LockError::Exhausted { slots: self.slots });
        };
        let key = self.next_key;
        self.next_key += 1;
        self.live.insert(slot);
        Ok(LockGrant {
            key,
            lock: self.region_base + slot * 8,
        })
    }

    /// Releases the slot at lock address `addr` for reuse.
    ///
    /// # Errors
    ///
    /// [`LockError::InvalidRelease`] if `addr` is not a live slot address.
    pub fn release(&mut self, addr: u64) -> Result<(), LockError> {
        let rel = addr.wrapping_sub(self.region_base);
        if !rel.is_multiple_of(8) {
            return Err(LockError::InvalidRelease { addr });
        }
        let slot = rel / 8;
        if slot == 0 || slot >= self.slots || !self.live.remove(&slot) {
            return Err(LockError::InvalidRelease { addr });
        }
        self.free_slots.push(slot);
        Ok(())
    }

    /// Number of live slots.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Addresses of every live lock_location slot, in ascending order.
    /// Fault-injection campaigns use this to pick a deterministic
    /// lock-word corruption target; the sort makes the result independent
    /// of `HashSet` iteration order.
    pub fn live_lock_addrs(&self) -> Vec<u64> {
        let mut slots: Vec<u64> = self.live.iter().copied().collect();
        slots.sort_unstable();
        slots
            .into_iter()
            .map(|s| self.region_base + s * 8)
            .collect()
    }

    /// Total keys ever issued.
    pub fn keys_issued(&self) -> u64 {
        self.next_key - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_globally_unique() {
        let mut l = LockAllocator::new(0x9000, 8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let g = l.acquire().unwrap();
            assert!(seen.insert(g.key));
            l.release(g.lock).unwrap();
        }
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut l = LockAllocator::new(0x9000, 3); // slots 1, 2 usable
        l.acquire().unwrap();
        l.acquire().unwrap();
        assert_eq!(l.acquire(), Err(LockError::Exhausted { slots: 3 }));
    }

    #[test]
    fn release_validates() {
        let mut l = LockAllocator::new(0x9000, 8);
        let g = l.acquire().unwrap();
        assert!(l.release(g.lock + 4).is_err(), "misaligned");
        assert!(l.release(0x9000).is_err(), "slot 0 reserved");
        assert!(l.release(0x9000 + 8 * 100).is_err(), "out of region");
        l.release(g.lock).unwrap();
        assert_eq!(
            l.release(g.lock),
            Err(LockError::InvalidRelease { addr: g.lock }),
            "double release"
        );
    }

    #[test]
    fn live_lock_addrs_are_sorted() {
        let mut l = LockAllocator::new(0x9000, 16);
        let grants: Vec<_> = (0..5).map(|_| l.acquire().unwrap()).collect();
        l.release(grants[2].lock).unwrap();
        let addrs = l.live_lock_addrs();
        assert_eq!(addrs.len(), 4);
        assert!(addrs.windows(2).all(|w| w[0] < w[1]));
        assert!(!addrs.contains(&grants[2].lock));
    }

    #[test]
    fn live_count_tracks() {
        let mut l = LockAllocator::new(0x9000, 8);
        let a = l.acquire().unwrap();
        let _b = l.acquire().unwrap();
        assert_eq!(l.live_count(), 2);
        l.release(a.lock).unwrap();
        assert_eq!(l.live_count(), 1);
        assert_eq!(l.keys_issued(), 2);
    }
}
