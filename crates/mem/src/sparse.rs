//! Sparse paged memory.

use std::cell::Cell;
use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_BITS;

/// TLB sentinel: no address shifts down to this page number, so the
/// empty TLB can never produce a false hit.
const NO_PAGE: u64 = u64::MAX;

/// A sparse, byte-addressable 64-bit memory backed by 4 KiB pages
/// allocated on first touch.
///
/// All multi-byte accesses are little-endian, matching RV64. Reads of
/// untouched memory return zero (the proxy kernel zero-fills pages), so
/// the model never faults on wild reads — protection is the job of the
/// safety machinery above it, which is exactly what is being evaluated.
///
/// # Example
///
/// ```
/// use hwst_mem::SparseMemory;
///
/// let mut m = SparseMemory::new();
/// m.write_u32(0x1000, 0xdeadbeef);
/// assert_eq!(m.read_u32(0x1000), 0xdeadbeef);
/// assert_eq!(m.read_u8(0x1003), 0xde); // little-endian
/// assert_eq!(m.read_u64(0x8000_0000), 0, "untouched memory reads zero");
/// ```
#[derive(Debug, Clone)]
pub struct SparseMemory {
    /// Page frames in touch order. Frames are never removed or
    /// reordered, so a frame index, once issued, stays valid for the
    /// memory's lifetime — which is what lets the TLB below be a plain
    /// `(page, frame)` pair with no invalidation protocol.
    frames: Vec<Box<[u8; PAGE_SIZE as usize]>>,
    /// Page number → frame index.
    index: HashMap<u64, u32>,
    /// Direct-mapped 4-entry TLB for the `*_le_fast` bulk paths: the
    /// last page resolved per (hashed) page-number class. Four entries
    /// cover the typical working mix — code-adjacent data, stack,
    /// heap and shadow region — where one entry thrashes on
    /// pointer-chasing workloads. Interior mutability keeps
    /// `read_le_fast` a `&self` method; a stale entry is impossible
    /// (frames are append-only) and the sentinel page makes empty slots
    /// a guaranteed miss.
    tlb: [Cell<(u64, u32)>; 4],
}

impl Default for SparseMemory {
    fn default() -> Self {
        Self {
            frames: Vec::new(),
            index: HashMap::new(),
            tlb: [const { Cell::new((NO_PAGE, 0)) }; 4],
        }
    }
}

/// The TLB slot for a page number: low bits folded so that regions
/// separated by large power-of-two strides (user vs shadow) land in
/// different slots.
#[inline]
fn tlb_slot(page: u64) -> usize {
    ((page ^ (page >> 7) ^ (page >> 29)) & 3) as usize
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `page` through the TLB, filling it on a miss. `None`
    /// when the page was never touched.
    #[inline]
    fn frame(&self, page: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        let slot = &self.tlb[tlb_slot(page)];
        let (tp, ti) = slot.get();
        if tp == page {
            return self.frames.get(ti as usize).map(|p| &**p);
        }
        let &i = self.index.get(&page)?;
        slot.set((page, i));
        self.frames.get(i as usize).map(|p| &**p)
    }

    /// Resolves `page` through the TLB for writing, allocating the
    /// frame on first touch.
    #[inline]
    fn frame_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let si = tlb_slot(page);
        let (tp, ti) = self.tlb[si].get();
        let i = if tp == page {
            ti
        } else {
            let i = match self.index.get(&page) {
                Some(&i) => i,
                None => {
                    let i = self.frames.len() as u32;
                    self.frames.push(Box::new([0u8; PAGE_SIZE as usize]));
                    self.index.insert(page, i);
                    i
                }
            };
            self.tlb[si].set((page, i));
            i
        };
        &mut self.frames[i as usize]
    }

    /// Number of 4 KiB pages touched so far (resident set of the model).
    pub fn resident_pages(&self) -> usize {
        self.index.len()
    }

    /// Number of resident pages whose base address lies in `[lo, hi)` —
    /// used to measure e.g. the shadow region's footprint separately
    /// from user memory.
    pub fn resident_pages_in(&self, lo: u64, hi: u64) -> usize {
        self.index
            .keys()
            .filter(|&&p| {
                let base = p << PAGE_BITS;
                base >= lo && base < hi
            })
            .count()
    }

    /// Number of *nonzero* bytes stored in `[lo, hi)` — a byte-granular
    /// footprint measure (4 KiB page residency is too coarse to see,
    /// e.g., the difference between 16- and 32-byte metadata records).
    pub fn nonzero_bytes_in(&self, lo: u64, hi: u64) -> u64 {
        let mut n = 0;
        for (&page, &fi) in &self.index {
            let base = page << PAGE_BITS;
            if base + PAGE_SIZE <= lo || base >= hi {
                continue;
            }
            for (i, &b) in self.frames[fi as usize].iter().enumerate() {
                let a = base + i as u64;
                if b != 0 && a >= lo && a < hi {
                    n += 1;
                }
            }
        }
        n
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.index.get(&(addr >> PAGE_BITS)) {
            Some(&i) => self.frames[i as usize][(addr & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let page = self.frame_mut(addr >> PAGE_BITS);
        page[(addr & (PAGE_SIZE - 1)) as usize] = val;
    }

    /// Reads `n <= 8` bytes little-endian into a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn read_le(&self, addr: u64, n: u64) -> u64 {
        assert!(n <= 8, "read_le supports at most 8 bytes");
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `val` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    pub fn write_le(&mut self, addr: u64, n: u64, val: u64) {
        assert!(n <= 8, "write_le supports at most 8 bytes");
        for i in 0..n {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8);
        }
    }

    /// Reads `n <= 8` bytes little-endian into a `u64`, resolving the
    /// page once when the access stays inside it (the common case).
    ///
    /// Semantically identical to [`read_le`](Self::read_le) — accesses
    /// straddling a page boundary fall back to the byte loop, and reads
    /// of untouched pages return zero without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[inline]
    pub fn read_le_fast(&self, addr: u64, n: u64) -> u64 {
        assert!(n <= 8, "read_le supports at most 8 bytes");
        let off = addr & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            match self.frame(addr >> PAGE_BITS) {
                Some(p) => {
                    let mut v = 0u64;
                    for i in 0..n as usize {
                        v |= (p[off as usize + i] as u64) << (8 * i);
                    }
                    v
                }
                None => 0,
            }
        } else {
            self.read_le(addr, n)
        }
    }

    /// Writes the low `n <= 8` bytes of `val` little-endian, resolving
    /// the page once when the access stays inside it.
    ///
    /// Semantically identical to [`write_le`](Self::write_le); accesses
    /// straddling a page boundary fall back to the byte loop.
    ///
    /// # Panics
    ///
    /// Panics if `n > 8`.
    #[inline]
    pub fn write_le_fast(&mut self, addr: u64, n: u64, val: u64) {
        assert!(n <= 8, "write_le supports at most 8 bytes");
        let off = addr & (PAGE_SIZE - 1);
        if off + n <= PAGE_SIZE {
            let page = self.frame_mut(addr >> PAGE_BITS);
            for i in 0..n as usize {
                page[off as usize + i] = (val >> (8 * i)) as u8;
            }
        } else {
            self.write_le(addr, n, val);
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        self.read_le(addr, 2) as u16
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, val: u16) {
        self.write_le(addr, 2, val as u64);
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, val: u32) {
        self.write_le(addr, 4, val as u64);
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, val: u64) {
        self.write_le(addr, 8, val);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }

    /// Flips one bit of the 64-bit word at `addr` — the fault-injection
    /// hook behind the LMSM shadow-word corruption campaigns. The word is
    /// read, XOR-ed with `1 << (bit % 64)` and written back, so a flip of
    /// a previously untouched word allocates its page like any write.
    pub fn flip_word_bit(&mut self, addr: u64, bit: u32) {
        let v = self.read_u64(addr);
        self.write_u64(addr, v ^ (1u64 << (bit % 64)));
    }

    /// Addresses of every *nonzero* 8-byte-aligned word in `[lo, hi)`,
    /// in ascending address order. Used by fault-injection campaigns to
    /// pick a deterministic corruption target; the explicit sort makes
    /// the result independent of `HashMap` iteration order.
    pub fn nonzero_word_addrs_in(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .index
            .keys()
            .copied()
            .filter(|&p| {
                let base = p << PAGE_BITS;
                base < hi && base.wrapping_add(PAGE_SIZE) > lo
            })
            .collect();
        pages.sort_unstable();
        let mut out = Vec::new();
        for page in pages {
            let base = page << PAGE_BITS;
            for off in (0..PAGE_SIZE).step_by(8) {
                let a = base + off;
                if a >= lo && a < hi && self.read_u64(a) != 0 {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Zeroes `len` bytes starting at `addr` (page-granular fast path).
    pub fn zero(&mut self, addr: u64, len: u64) {
        for i in 0..len {
            // Skip pages that were never touched: they already read zero.
            let a = addr.wrapping_add(i);
            if self.index.contains_key(&(a >> PAGE_BITS)) {
                self.write_u8(a, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero_and_stays_sparse() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u64(u64::MAX - 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u64(0x100, 0x0807_0605_0403_0201);
        for i in 0..8 {
            assert_eq!(m.read_u8(0x100 + i), (i + 1) as u8);
        }
        assert_eq!(m.read_u32(0x100), 0x0403_0201);
        assert_eq!(m.read_u16(0x106), 0x0807);
    }

    #[test]
    fn resident_pages_in_ranges() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1000, 1);
        m.write_u64(0x2000, 1);
        m.write_u64(0x10_0000, 1);
        assert_eq!(m.resident_pages_in(0, 0x10_0000), 2);
        assert_eq!(m.resident_pages_in(0x10_0000, u64::MAX), 1);
        assert_eq!(m.resident_pages_in(0x5000, 0x6000), 0);
    }

    #[test]
    fn nonzero_bytes_counts_exactly() {
        let mut m = SparseMemory::new();
        m.write_u64(0x1000, 0x00ff_00ff_00ff_00ff);
        assert_eq!(m.nonzero_bytes_in(0, u64::MAX), 4);
        // LE bytes of the value: ff 00 ff 00 ff 00 ff 00.
        assert_eq!(m.nonzero_bytes_in(0x1002, 0x1005), 2);
        m.write_u8(0x1001, 0); // already-zero byte stays zero
        assert_eq!(m.nonzero_bytes_in(0, u64::MAX), 4);
        m.write_u8(0x1000, 0); // clearing a set byte is observed
        assert_eq!(m.nonzero_bytes_in(0, u64::MAX), 3);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = PAGE_SIZE - 4; // straddles the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bytes_round_trip() {
        let mut m = SparseMemory::new();
        let data = b"hello shadow memory";
        m.write_bytes(0x2000, data);
        assert_eq!(m.read_bytes(0x2000, data.len()), data);
    }

    #[test]
    fn zero_clears_touched_pages_only() {
        let mut m = SparseMemory::new();
        m.write_u64(0x3000, u64::MAX);
        m.zero(0x3000, 8);
        assert_eq!(m.read_u64(0x3000), 0);
        // Zeroing untouched space allocates nothing.
        let before = m.resident_pages();
        m.zero(0x10_0000, 64);
        assert_eq!(m.resident_pages(), before);
    }

    #[test]
    #[should_panic(expected = "at most 8 bytes")]
    fn read_le_rejects_wide_access() {
        SparseMemory::new().read_le(0, 9);
    }

    #[test]
    fn flip_word_bit_toggles() {
        let mut m = SparseMemory::new();
        m.flip_word_bit(0x1000, 3);
        assert_eq!(m.read_u64(0x1000), 8);
        m.flip_word_bit(0x1000, 3);
        assert_eq!(m.read_u64(0x1000), 0);
        // Shift amount is reduced mod 64, never panics.
        m.flip_word_bit(0x1000, 64);
        assert_eq!(m.read_u64(0x1000), 1);
    }

    #[test]
    fn fast_paths_match_byte_loops() {
        let mut m = SparseMemory::new();
        // Seed a few pages with a recognisable pattern via the slow path.
        for i in 0..64u64 {
            m.write_u8(0x1000 + i, (i as u8).wrapping_mul(7).wrapping_add(1));
        }
        for addr in [0x1000u64, 0x1003, 0x101f, 0x103d] {
            for n in 0..=8u64 {
                assert_eq!(
                    m.read_le_fast(addr, n),
                    m.read_le(addr, n),
                    "read {addr:#x} n={n}"
                );
            }
        }
        // Fast writes land exactly where slow writes would.
        let mut fast = SparseMemory::new();
        let mut slow = SparseMemory::new();
        for (i, addr) in [0x2000u64, 0x2005, 0x2ffb].iter().enumerate() {
            let val = 0x1122_3344_5566_7788u64.rotate_left(i as u32 * 9);
            for n in 1..=8u64 {
                fast.write_le_fast(addr + n * 16, n, val);
                slow.write_le(addr + n * 16, n, val);
            }
        }
        assert_eq!(
            fast.read_bytes(0x2000, 0x1100),
            slow.read_bytes(0x2000, 0x1100)
        );
    }

    #[test]
    fn fast_paths_handle_page_straddles() {
        let mut m = SparseMemory::new();
        let addr = PAGE_SIZE - 3; // 3 bytes in page 0, 5 in page 1
        m.write_le_fast(addr, 8, 0x8877_6655_4433_2211);
        assert_eq!(m.read_le_fast(addr, 8), 0x8877_6655_4433_2211);
        assert_eq!(m.read_le(addr, 8), 0x8877_6655_4433_2211);
        assert_eq!(m.resident_pages(), 2);
        // An exactly page-ending access takes the single-page path.
        assert_eq!(
            m.read_le_fast(PAGE_SIZE - 8, 8),
            m.read_le(PAGE_SIZE - 8, 8)
        );
    }

    #[test]
    fn fast_reads_of_untouched_memory_allocate_nothing() {
        let m = SparseMemory::new();
        assert_eq!(m.read_le_fast(0x5000, 8), 0);
        assert_eq!(m.read_le_fast(PAGE_SIZE - 2, 8), 0, "straddling read");
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 8 bytes")]
    fn read_le_fast_rejects_wide_access() {
        SparseMemory::new().read_le_fast(0, 9);
    }

    #[test]
    fn nonzero_word_addrs_are_sorted_and_bounded() {
        let mut m = SparseMemory::new();
        m.write_u64(0x9_0000, 7);
        m.write_u64(0x1000, 1);
        m.write_u64(0x1008, 0); // zero word: not reported
        m.write_u64(0x2000, 2);
        assert_eq!(
            m.nonzero_word_addrs_in(0, u64::MAX),
            vec![0x1000, 0x2000, 0x9_0000]
        );
        assert_eq!(m.nonzero_word_addrs_in(0x1001, 0x9_0000), vec![0x2000]);
        assert!(m.nonzero_word_addrs_in(0x10_0000, u64::MAX).is_empty());
    }
}
