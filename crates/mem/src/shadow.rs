//! The linear-mapped shadow memory (LMSM).

/// The paper's linear-mapped shadow memory address calculator — the SMAC
/// hardware unit (Eq. 1):
///
/// ```text
/// Addr_LMSM = (Addr_ptr_container << 2) + CSR_offset
/// ```
///
/// Each 8-byte pointer container maps to a 32-byte shadow window; the
/// compressed metadata occupies the first 16 bytes (lower word, then
/// upper word).
///
/// # Example
///
/// ```
/// use hwst_mem::LinearShadow;
///
/// let s = LinearShadow::new(0x1_0000_0000);
/// assert_eq!(s.shadow_addr(0x8000), (0x8000 << 2) + 0x1_0000_0000);
/// assert_eq!(s.upper_addr(0x8000), s.shadow_addr(0x8000) + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearShadow {
    offset: u64,
}

impl LinearShadow {
    /// Creates a map with the given `hwst.smoffset` CSR value.
    pub const fn new(offset: u64) -> Self {
        Self { offset }
    }

    /// The configured offset.
    pub const fn offset(self) -> u64 {
        self.offset
    }

    /// Shadow address of the *lower* (spatial) metadata word for the
    /// pointer stored at `container` (Eq. 1).
    pub const fn shadow_addr(self, container: u64) -> u64 {
        (container << 2).wrapping_add(self.offset)
    }

    /// Shadow address of the *upper* (temporal) metadata word.
    pub const fn upper_addr(self, container: u64) -> u64 {
        self.shadow_addr(container).wrapping_add(8)
    }

    /// Inverse map: the container address whose shadow starts at `shadow`,
    /// if `shadow` is a valid lower-word address.
    pub fn container_of(self, shadow: u64) -> Option<u64> {
        let rel = shadow.wrapping_sub(self.offset);
        rel.is_multiple_of(4).then_some(rel >> 2)
    }

    /// Number of memory operations a metadata *store* costs in hardware
    /// (two 64-bit stores: `sbdl` + `sbdu`).
    pub const STORE_OPS: u32 = 2;
    /// Number of memory operations a metadata *load* costs in hardware
    /// (two 64-bit loads: `lbdls` + `lbdus`).
    pub const LOAD_OPS: u32 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_address_math() {
        let s = LinearShadow::new(0x1_0000_0000);
        assert_eq!(s.shadow_addr(0), 0x1_0000_0000);
        assert_eq!(s.shadow_addr(8), 0x1_0000_0020);
        // Adjacent containers get disjoint 32-byte windows.
        assert_eq!(s.shadow_addr(8) - s.shadow_addr(0), 32);
    }

    #[test]
    fn container_inverse() {
        let s = LinearShadow::new(0x1_0000_0000);
        for c in [0u64, 8, 0x8000, 0x7fff_fff8] {
            assert_eq!(s.container_of(s.shadow_addr(c)), Some(c));
        }
        assert_eq!(s.container_of(0x1_0000_0001), None, "misaligned shadow");
    }

    #[test]
    fn distinct_containers_have_distinct_shadows() {
        let s = LinearShadow::new(0x1_0000_0000);
        // 8-byte-aligned containers never collide (map is injective).
        let a = s.shadow_addr(0x1000);
        let b = s.shadow_addr(0x1008);
        assert_ne!(a, b);
        assert!(b - a >= 16, "windows must hold 16 bytes of metadata");
    }
}
