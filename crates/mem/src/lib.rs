//! # hwst-mem
//!
//! Memory substrate for the HWST128 simulator:
//!
//! * [`SparseMemory`] — a paged, byte-addressable 64-bit memory,
//! * [`MemoryLayout`] — the address map used by programs (text, data,
//!   heap, stack, lock region, shadow region),
//! * [`LinearShadow`] — the paper's linear-mapped shadow memory (Eq. 1:
//!   `addr_lmsm = (addr_container << 2) + CSR_offset`), the hardware-
//!   friendly layout the SMAC unit implements,
//! * [`ShadowTrie`] — the two-level trie alternative discussed in §2,
//!   kept for the shadow-layout ablation (better address-space
//!   utilisation, more lookup memory touches),
//! * [`HeapAllocator`] — the `malloc`/`free` model used by the runtime
//!   wrappers,
//! * [`LockAllocator`] — the CETS-style lock_location region: unique-key
//!   issue, key erasure on free, slot recycling.
//!
//! ## Example
//!
//! ```
//! use hwst_mem::{MemoryLayout, SparseMemory, LinearShadow};
//!
//! let layout = MemoryLayout::default();
//! let mut mem = SparseMemory::new();
//! let shadow = LinearShadow::new(layout.shadow_offset);
//!
//! // A pointer stored at container address 0x8000 gets its metadata at
//! // the Eq. 1 shadow address.
//! let container = 0x8000;
//! let s = shadow.shadow_addr(container);
//! assert_eq!(s, (container << 2) + layout.shadow_offset);
//! mem.write_u64(s, 0xdead_beef);
//! assert_eq!(mem.read_u64(s), 0xdead_beef);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod layout;
mod lock;
mod shadow;
mod sparse;
mod trie;

pub use alloc::{AllocError, Allocation, HeapAllocator};
pub use layout::MemoryLayout;
pub use lock::{LockAllocator, LockError, LockGrant};
pub use shadow::LinearShadow;
pub use sparse::SparseMemory;
pub use trie::ShadowTrie;
