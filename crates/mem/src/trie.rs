//! The shadow-trie alternative layout.

use std::collections::HashMap;

/// A two-level shadow *trie*, the metadata layout SoftBoundCETS uses and
/// the paper contrasts with the linear map (§2: "The benefit of a shadow
/// trie is the better utilization of the user address space. However, a
/// linear-mapped shadow space is more hardware-friendly").
///
/// The trie maps an 8-byte-aligned container address to a 16-byte
/// metadata record through a directory lookup: the upper address bits
/// select a second-level table, the lower bits an entry within it. Each
/// lookup therefore costs **two dependent memory accesses** (directory,
/// then leaf) versus the linear map's zero-cost address computation —
/// this is what the shadow-layout ablation (A3 in DESIGN.md) measures.
///
/// # Example
///
/// ```
/// use hwst_mem::ShadowTrie;
///
/// let mut t = ShadowTrie::new();
/// t.store(0x8000, 0xaaaa, 0xbbbb);
/// assert_eq!(t.load(0x8000), Some((0xaaaa, 0xbbbb)));
/// assert_eq!(t.load(0x9000), None);
/// assert_eq!(ShadowTrie::LOOKUP_MEM_OPS, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShadowTrie {
    // Directory: upper bits -> leaf table of (lower, upper) records.
    tables: HashMap<u64, HashMap<u64, (u64, u64)>>,
    leaf_tables_allocated: usize,
}

/// Bits of the container address consumed by the leaf index.
const LEAF_BITS: u32 = 14; // 16 Ki slots per leaf table

impl ShadowTrie {
    /// Dependent memory accesses per metadata lookup (directory + leaf).
    pub const LOOKUP_MEM_OPS: u32 = 2;

    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    fn split(container: u64) -> (u64, u64) {
        let slot = container >> 3;
        (slot >> LEAF_BITS, slot & ((1 << LEAF_BITS) - 1))
    }

    /// Stores the compressed metadata halves for a container address.
    pub fn store(&mut self, container: u64, lower: u64, upper: u64) {
        let (dir, leaf) = Self::split(container);
        let table = self.tables.entry(dir).or_insert_with(|| {
            self.leaf_tables_allocated += 1;
            HashMap::new()
        });
        table.insert(leaf, (lower, upper));
    }

    /// Loads the metadata halves for a container address.
    pub fn load(&self, container: u64) -> Option<(u64, u64)> {
        let (dir, leaf) = Self::split(container);
        self.tables.get(&dir)?.get(&leaf).copied()
    }

    /// Removes the record for a container address.
    pub fn clear(&mut self, container: u64) {
        let (dir, leaf) = Self::split(container);
        if let Some(t) = self.tables.get_mut(&dir) {
            t.remove(&leaf);
        }
    }

    /// Number of leaf tables that had to be materialised — the trie's
    /// memory-utilisation advantage shows as this staying small.
    pub fn leaf_tables(&self) -> usize {
        self.leaf_tables_allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_clear() {
        let mut t = ShadowTrie::new();
        t.store(0x1000, 1, 2);
        t.store(0x1008, 3, 4);
        assert_eq!(t.load(0x1000), Some((1, 2)));
        assert_eq!(t.load(0x1008), Some((3, 4)));
        t.clear(0x1000);
        assert_eq!(t.load(0x1000), None);
        assert_eq!(t.load(0x1008), Some((3, 4)));
    }

    #[test]
    fn distant_addresses_use_distinct_leaf_tables() {
        let mut t = ShadowTrie::new();
        t.store(0, 1, 1);
        t.store(1 << 30, 2, 2);
        assert_eq!(t.leaf_tables(), 2);
        // Nearby addresses share one.
        let mut t = ShadowTrie::new();
        t.store(0x1000, 1, 1);
        t.store(0x1008, 2, 2);
        assert_eq!(t.leaf_tables(), 1);
    }

    #[test]
    fn adjacent_containers_do_not_collide() {
        let mut t = ShadowTrie::new();
        for i in 0..1000u64 {
            t.store(i * 8, i, i + 1);
        }
        for i in 0..1000u64 {
            assert_eq!(t.load(i * 8), Some((i, i + 1)));
        }
    }

    #[test]
    fn overwrite_replaces() {
        let mut t = ShadowTrie::new();
        t.store(0x40, 1, 1);
        t.store(0x40, 9, 9);
        assert_eq!(t.load(0x40), Some((9, 9)));
    }
}
