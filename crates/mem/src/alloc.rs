//! The heap allocator model behind the `malloc`/`free` wrappers.

use std::collections::BTreeMap;
use std::fmt;

/// A live or historical allocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// First byte of the user-visible block (8-byte aligned).
    pub base: u64,
    /// Requested size in bytes.
    pub size: u64,
}

impl Allocation {
    /// One past the last user-visible byte.
    pub const fn bound(self) -> u64 {
        self.base + self.size
    }
}

/// Errors from the allocator model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The heap cannot satisfy the request.
    OutOfMemory {
        /// Requested size.
        requested: u64,
    },
    /// `free` of an address that is not a live allocation base. This is
    /// *reported, not trapped*: whether it is detected is up to the safety
    /// scheme under evaluation (CWE415/CWE761 in the Juliet suite).
    InvalidFree {
        /// The freed address.
        addr: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "heap cannot satisfy allocation of {requested} bytes")
            }
            AllocError::InvalidFree { addr } => {
                write!(f, "free of {addr:#x} which is not a live allocation")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// A first-fit free-list heap allocator over `[heap_base, heap_end)`.
///
/// Block addresses and sizes are rounded to 8 bytes (RV64 alignment —
/// also what funds the 3 saved bits in the compression scheme). Freed
/// blocks are coalesced with free neighbours and *reused*, which is what
/// makes use-after-free attacks observable: a stale pointer into a reused
/// block reads the new owner's data.
///
/// # Example
///
/// ```
/// use hwst_mem::HeapAllocator;
///
/// # fn main() -> Result<(), hwst_mem::AllocError> {
/// let mut heap = HeapAllocator::new(0x1000, 0x10000);
/// let a = heap.malloc(100)?;
/// assert_eq!(a.base % 8, 0);
/// heap.free(a.base)?;
/// let b = heap.malloc(100)?;
/// assert_eq!(b.base, a.base, "freed block is reused");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    heap_base: u64,
    heap_end: u64,
    /// Live blocks: base -> rounded size.
    live: BTreeMap<u64, u64>,
    /// Free blocks: base -> size (coalesced, non-adjacent).
    free: BTreeMap<u64, u64>,
    total_allocs: u64,
    peak_live_bytes: u64,
    live_bytes: u64,
}

impl HeapAllocator {
    /// Creates an allocator over `[heap_base, heap_base + heap_size)`.
    ///
    /// # Panics
    ///
    /// Panics if `heap_base` is not 8-byte aligned or the size is zero.
    pub fn new(heap_base: u64, heap_size: u64) -> Self {
        assert_eq!(heap_base % 8, 0, "heap base must be 8-byte aligned");
        assert!(heap_size > 0, "heap must be non-empty");
        let mut free = BTreeMap::new();
        free.insert(heap_base, heap_size & !7);
        HeapAllocator {
            heap_base,
            heap_end: heap_base + (heap_size & !7),
            live: BTreeMap::new(),
            free,
            total_allocs: 0,
            peak_live_bytes: 0,
            live_bytes: 0,
        }
    }

    /// Allocates `size` bytes (rounded up to 8; zero-size requests consume
    /// one granule, like glibc's minimum chunk).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] when no free block fits.
    pub fn malloc(&mut self, size: u64) -> Result<Allocation, AllocError> {
        // Checked rounding: sizes within 7 bytes of u64::MAX cannot be
        // rounded up to a granule and can never fit anyway. The guest
        // reaches this path directly (`malloc(-1)`), so it must degrade
        // to OutOfMemory, not overflow.
        let rounded = size
            .max(1)
            .checked_add(7)
            .map(|v| v & !7)
            .ok_or(AllocError::OutOfMemory { requested: size })?;
        // First fit.
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= rounded)
            .map(|(&b, &len)| (b, len));
        let (fbase, flen) = slot.ok_or(AllocError::OutOfMemory { requested: size })?;
        self.free.remove(&fbase);
        if flen > rounded {
            self.free.insert(fbase + rounded, flen - rounded);
        }
        self.live.insert(fbase, rounded);
        self.total_allocs += 1;
        self.live_bytes += rounded;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
        Ok(Allocation { base: fbase, size })
    }

    /// Frees a live allocation by base address, coalescing free
    /// neighbours.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidFree`] for double frees, interior pointers or
    /// wild addresses (the caller decides whether that is *detected* by
    /// the safety scheme being modelled).
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        let size = self
            .live
            .remove(&addr)
            .ok_or(AllocError::InvalidFree { addr })?;
        self.live_bytes -= size;
        // Coalesce with the following free block.
        let mut base = addr;
        let mut len = size;
        if let Some(&next_len) = self.free.get(&(addr + size)) {
            self.free.remove(&(addr + size));
            len += next_len;
        }
        // Coalesce with the preceding free block.
        if let Some((&pbase, &plen)) = self.free.range(..addr).next_back() {
            if pbase + plen == addr {
                self.free.remove(&pbase);
                base = pbase;
                len += plen;
            }
        }
        self.free.insert(base, len);
        Ok(())
    }

    /// Whether `addr` is the base of a live allocation.
    pub fn is_live_base(&self, addr: u64) -> bool {
        self.live.contains_key(&addr)
    }

    /// The live allocation containing `addr`, if any.
    pub fn containing(&self, addr: u64) -> Option<Allocation> {
        let (&base, &size) = self.live.range(..=addr).next_back()?;
        (addr < base + size).then_some(Allocation { base, size })
    }

    /// Number of `malloc` calls served.
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Current live bytes (rounded sizes).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of live bytes.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }

    /// The heap bounds `[base, end)`.
    pub fn bounds(&self) -> (u64, u64) {
        (self.heap_base, self.heap_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> HeapAllocator {
        HeapAllocator::new(0x1000, 0x1_0000)
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut h = heap();
        let mut blocks = Vec::new();
        for size in [1u64, 7, 8, 9, 100, 4096] {
            let a = h.malloc(size).unwrap();
            assert_eq!(a.base % 8, 0);
            for b in &blocks {
                let b: &Allocation = b;
                let rounded_end = a.base + a.size.max(1).div_ceil(8) * 8;
                assert!(
                    rounded_end <= b.base || b.bound() <= a.base,
                    "blocks overlap: {a:?} vs {b:?}"
                );
            }
            blocks.push(a);
        }
    }

    #[test]
    fn free_reuses_and_coalesces() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        let c = h.malloc(64).unwrap();
        h.free(a.base).unwrap();
        h.free(b.base).unwrap(); // coalesces with a
        let big = h.malloc(128).unwrap();
        assert_eq!(big.base, a.base, "coalesced block satisfies larger request");
        h.free(c.base).unwrap();
        h.free(big.base).unwrap();
    }

    #[test]
    fn double_free_is_reported() {
        let mut h = heap();
        let a = h.malloc(8).unwrap();
        h.free(a.base).unwrap();
        assert_eq!(
            h.free(a.base),
            Err(AllocError::InvalidFree { addr: a.base })
        );
    }

    #[test]
    fn interior_free_is_reported() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        assert!(matches!(
            h.free(a.base + 8),
            Err(AllocError::InvalidFree { .. })
        ));
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let mut h = HeapAllocator::new(0x1000, 64);
        assert!(h.malloc(32).is_ok());
        assert!(matches!(h.malloc(64), Err(AllocError::OutOfMemory { .. })));
    }

    #[test]
    fn absurd_sizes_degrade_to_oom() {
        // Sizes near u64::MAX must not overflow the granule rounding —
        // the guest can ask for them directly via malloc(-1).
        let mut h = heap();
        for size in [u64::MAX, u64::MAX - 6, u64::MAX - 7, 1u64 << 63] {
            assert!(matches!(
                h.malloc(size),
                Err(AllocError::OutOfMemory { .. })
            ));
        }
        assert!(h.malloc(8).is_ok(), "heap still usable after OOM");
    }

    #[test]
    fn containing_finds_interior_pointers() {
        let mut h = heap();
        let a = h.malloc(100).unwrap();
        assert_eq!(
            h.containing(a.base),
            Some(Allocation {
                base: a.base,
                size: 104
            })
        );
        assert_eq!(h.containing(a.base + 50).unwrap().base, a.base);
        assert_eq!(h.containing(a.base + 104), None);
    }

    #[test]
    fn stats_track_usage() {
        let mut h = heap();
        let a = h.malloc(16).unwrap();
        let _b = h.malloc(16).unwrap();
        assert_eq!(h.total_allocs(), 2);
        assert_eq!(h.live_bytes(), 32);
        h.free(a.base).unwrap();
        assert_eq!(h.live_bytes(), 16);
        assert_eq!(h.peak_live_bytes(), 32);
    }

    #[test]
    fn zero_size_malloc_succeeds() {
        let mut h = heap();
        let a = h.malloc(0).unwrap();
        assert!(h.is_live_base(a.base));
    }
}
