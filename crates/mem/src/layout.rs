//! The program address map.

/// The address-space layout used by simulated programs (paper Fig. 1 left:
/// text, data, heap, user stack, shadow stack / shadow memory).
///
/// The layout keeps the whole user space in the low 32 bits so the Eq. 1
/// linear shadow map (`addr << 2 + offset`) lands in a disjoint region.
///
/// # Example
///
/// ```
/// use hwst_mem::MemoryLayout;
///
/// let l = MemoryLayout::default();
/// assert!(l.validate().is_ok());
/// // The shadow of the highest user address stays clear of user space.
/// assert!((l.user_end() << 2) + l.shadow_offset > l.user_end());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLayout {
    /// Base of the instruction (.text) region.
    pub text_base: u64,
    /// Base of the static data (.data/.bss) region.
    pub data_base: u64,
    /// Base of the heap.
    pub heap_base: u64,
    /// Heap size in bytes.
    pub heap_size: u64,
    /// Initial stack pointer (stack grows down from here).
    pub stack_top: u64,
    /// Maximum stack size in bytes.
    pub stack_size: u64,
    /// Base of the lock_location region (the `hwst.lockbase` CSR).
    pub lock_region_base: u64,
    /// Number of lock_location slots (8 bytes each; slot 0 reserved).
    pub lock_slots: u64,
    /// The Eq. 1 shadow offset (the `hwst.smoffset` CSR).
    pub shadow_offset: u64,
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout {
            text_base: 0x0001_0000,
            data_base: 0x0010_0000,
            heap_base: 0x0100_0000,
            heap_size: 0x0400_0000, // 64 MiB
            stack_top: 0x0800_0000,
            stack_size: 0x0080_0000, // 8 MiB
            lock_region_base: 0x0900_0000,
            lock_slots: 1 << 20, // one million live allocations (paper §3.3)
            shadow_offset: 0x1_0000_0000,
        }
    }
}

impl MemoryLayout {
    /// An embedded-class layout with a small heap and a lock region that
    /// fits the 16-bit lock field of
    /// `hwst_metadata::CompressionConfig::EMBEDDED`.
    pub fn embedded() -> Self {
        MemoryLayout {
            heap_size: 0x0040_0000, // 4 MiB
            lock_slots: 1 << 16,
            ..Self::default()
        }
    }

    /// One past the highest user address (lock region included).
    pub fn user_end(&self) -> u64 {
        self.lock_region_base + self.lock_slots * 8
    }

    /// End of the heap region.
    pub fn heap_end(&self) -> u64 {
        self.heap_base + self.heap_size
    }

    /// Lowest legal stack address.
    pub fn stack_limit(&self) -> u64 {
        self.stack_top - self.stack_size
    }

    /// Checks the region ordering and shadow disjointness invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        let ordered = [
            ("text", self.text_base),
            ("data", self.data_base),
            ("heap", self.heap_base),
            ("heap end", self.heap_end()),
            ("stack limit", self.stack_limit()),
            ("stack top", self.stack_top),
            ("lock region", self.lock_region_base),
            ("user end", self.user_end()),
        ];
        for w in ordered.windows(2) {
            if w[0].1 > w[1].1 {
                return Err(format!(
                    "{} ({:#x}) must not be above {} ({:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        let shadow_lo = self.shadow_offset;
        if shadow_lo < self.user_end() << 2 {
            // The shadow of address 0 starts at `shadow_offset`; it only
            // needs to clear user space, not the stretched map itself.
            if self.shadow_offset < self.user_end() {
                return Err(format!(
                    "shadow offset {:#x} overlaps user space ending at {:#x}",
                    self.shadow_offset,
                    self.user_end()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_is_valid() {
        MemoryLayout::default().validate().unwrap();
        MemoryLayout::embedded().validate().unwrap();
    }

    #[test]
    fn default_lock_slots_match_paper_million_pointers() {
        assert_eq!(MemoryLayout::default().lock_slots, 1 << 20);
    }

    #[test]
    fn broken_layout_is_rejected() {
        let l = MemoryLayout {
            heap_base: 0x0900_0000, // above the stack
            ..MemoryLayout::default()
        };
        assert!(l.validate().is_err());

        let l = MemoryLayout {
            shadow_offset: 0x100, // inside user space
            ..MemoryLayout::default()
        };
        assert!(l.validate().is_err());
    }

    #[test]
    fn regions_are_disjoint() {
        let l = MemoryLayout::default();
        assert!(l.heap_end() <= l.stack_limit());
        assert!(l.stack_top <= l.lock_region_base);
    }
}
