//! Property tests for the memory substrate invariants.

use hwst_mem::{HeapAllocator, LinearShadow, LockAllocator, SparseMemory};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Memory is a map: the last write to an address wins, other
    /// addresses are untouched.
    #[test]
    fn sparse_memory_is_a_map(
        ops in prop::collection::vec((0u64..0x10_0000, any::<u64>()), 1..64)
    ) {
        let mut m = SparseMemory::new();
        let mut model = std::collections::HashMap::new();
        for &(addr, val) in &ops {
            let addr = addr & !7; // keep cells disjoint
            m.write_u64(addr, val);
            model.insert(addr, val);
        }
        for (&addr, &val) in &model {
            prop_assert_eq!(m.read_u64(addr), val);
        }
    }

    /// Live heap blocks never overlap, regardless of the malloc/free
    /// interleaving.
    #[test]
    fn heap_blocks_never_overlap(
        script in prop::collection::vec((any::<bool>(), 1u64..512), 1..100)
    ) {
        let mut h = HeapAllocator::new(0x1000, 0x4_0000);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (base, rounded size)
        for &(is_alloc, size) in &script {
            if is_alloc || live.is_empty() {
                if let Ok(a) = h.malloc(size) {
                    let rounded = size.div_ceil(8) * 8;
                    for &(b, bs) in &live {
                        prop_assert!(
                            a.base + rounded <= b || b + bs <= a.base,
                            "overlap at {:#x}", a.base
                        );
                    }
                    live.push((a.base, rounded));
                }
            } else {
                let idx = (size as usize) % live.len();
                let (b, _) = live.swap_remove(idx);
                h.free(b).unwrap();
            }
        }
    }

    /// Freeing everything restores full capacity (perfect coalescing).
    #[test]
    fn full_free_restores_capacity(sizes in prop::collection::vec(1u64..256, 1..50)) {
        let mut h = HeapAllocator::new(0x1000, 0x4_0000);
        let mut bases = Vec::new();
        for &s in &sizes {
            bases.push(h.malloc(s).unwrap().base);
        }
        for b in bases {
            h.free(b).unwrap();
        }
        prop_assert_eq!(h.live_bytes(), 0);
        // One maximal allocation must now succeed.
        prop_assert!(h.malloc(0x4_0000 - 8).is_ok());
    }

    /// Lock keys are unique across arbitrary acquire/release interleavings.
    #[test]
    fn lock_keys_never_repeat(script in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut l = LockAllocator::new(0x9000, 64);
        let mut seen = HashSet::new();
        let mut live = Vec::new();
        for &acquire in &script {
            if acquire || live.is_empty() {
                if let Ok(g) = l.acquire() {
                    prop_assert!(seen.insert(g.key), "key {} repeated", g.key);
                    live.push(g.lock);
                }
            } else {
                l.release(live.pop().unwrap()).unwrap();
            }
        }
    }

    /// Eq. 1 is injective over 8-byte-aligned containers and its inverse
    /// recovers the container.
    #[test]
    fn lmsm_is_injective(
        a in (0u64..(1 << 30)).prop_map(|v| v << 3),
        b in (0u64..(1 << 30)).prop_map(|v| v << 3),
    ) {
        let s = LinearShadow::new(0x1_0000_0000);
        if a != b {
            prop_assert_ne!(s.shadow_addr(a), s.shadow_addr(b));
        }
        prop_assert_eq!(s.container_of(s.shadow_addr(a)), Some(a));
    }
}
