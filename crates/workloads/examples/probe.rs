use hwst_compiler::{compile, Scheme};
use hwst_sim::{Machine, SafetyConfig};
use hwst_workloads::{all, Scale};

fn config_for(scheme: Scheme) -> SafetyConfig {
    match scheme {
        Scheme::None | Scheme::Sbcets => SafetyConfig::baseline(),
        Scheme::Hwst128 => SafetyConfig::hwst128_no_tchk(),
        _ => SafetyConfig::default(),
    }
}

fn main() {
    let mut logsum = [0f64; 3];
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>9}",
        "workload", "base", "sbcets%", "hwst%", "tchk%"
    );
    for wl in all() {
        let m = wl.module(Scale::Test);
        let cycles: Vec<f64> = Scheme::ALL
            .iter()
            .map(|&s| {
                let p = compile(&m, s).unwrap();
                Machine::new(p, config_for(s))
                    .run(wl.fuel(Scale::Test))
                    .unwrap()
                    .stats
                    .total_cycles() as f64
            })
            .collect();
        let oh: Vec<f64> = (1..4)
            .map(|i| (cycles[i] / cycles[0] - 1.0) * 100.0)
            .collect();
        println!(
            "{:<12} {:>10.0} {:>9.1} {:>9.1} {:>9.1}",
            wl.name, cycles[0], oh[0], oh[1], oh[2]
        );
        for i in 0..3 {
            logsum[i] += (cycles[i + 1] / cycles[0]).ln();
        }
    }
    let n = all().len() as f64;
    println!(
        "{:<12} {:>10} {:>9.1} {:>9.1} {:>9.1}",
        "GEOMEAN",
        "",
        ((logsum[0] / n).exp() - 1.0) * 100.0,
        ((logsum[1] / n).exp() - 1.0) * 100.0,
        ((logsum[2] / n).exp() - 1.0) * 100.0
    );
}
