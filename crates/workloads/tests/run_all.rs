//! Every workload compiles, runs to completion under every scheme, and
//! produces the same result regardless of the safety machinery.

use hwst_compiler::{compile, Scheme};
use hwst_sim::{Machine, SafetyConfig};
use hwst_workloads::{all, Scale, Workload};

fn config_for(scheme: Scheme) -> SafetyConfig {
    match scheme {
        Scheme::None | Scheme::Sbcets => SafetyConfig::baseline(),
        Scheme::Hwst128 => SafetyConfig::hwst128_no_tchk(),
        Scheme::Hwst128Tchk => SafetyConfig::default(),
        Scheme::Shore => SafetyConfig {
            temporal: false,
            keybuffer: false,
            ..SafetyConfig::default()
        },
        Scheme::RvCure => SafetyConfig::hwst128_no_tchk(),
        Scheme::HeapSafe => SafetyConfig::default(),
        Scheme::L4Pointer | Scheme::CryptSan => SafetyConfig::baseline(),
    }
}

fn run(wl: &Workload, scheme: Scheme) -> (u64, u64) {
    let module = wl.module(Scale::Test);
    let prog = compile(&module, scheme).unwrap_or_else(|e| panic!("{} ({scheme}): {e}", wl.name));
    let mut m = Machine::new(prog, config_for(scheme));
    let exit = m
        .run(wl.fuel(Scale::Test))
        .unwrap_or_else(|t| panic!("{} ({scheme}) trapped: {t}", wl.name));
    (exit.code, exit.stats.total_cycles())
}

#[test]
fn workloads_agree_across_schemes() {
    for wl in all() {
        let (base_code, base_cycles) = run(&wl, Scheme::None);
        for scheme in [Scheme::Sbcets, Scheme::Hwst128, Scheme::Hwst128Tchk] {
            let (code, cycles) = run(&wl, scheme);
            assert_eq!(code, base_code, "{} diverges under {scheme}", wl.name);
            assert!(
                cycles > base_cycles,
                "{}: {scheme} must cost more than baseline",
                wl.name
            );
        }
    }
}

#[test]
fn scheme_cost_ordering_holds_per_suite_geomean() {
    // Fig. 4's ordering must hold on the geometric mean of each suite.
    let mut logsum = [0f64; 4]; // None, Sbcets, Hwst128, Hwst128Tchk
    let mut count = 0usize;
    for wl in all() {
        let cycles: Vec<u64> = [
            Scheme::None,
            Scheme::Sbcets,
            Scheme::Hwst128,
            Scheme::Hwst128Tchk,
        ]
        .iter()
        .map(|&s| run(&wl, s).1)
        .collect();
        for (i, c) in cycles.iter().enumerate() {
            logsum[i] += (*c as f64).ln();
        }
        count += 1;
    }
    let geo: Vec<f64> = logsum.iter().map(|l| (l / count as f64).exp()).collect();
    let (base, sb, hwst, tchk) = (geo[0], geo[1], geo[2], geo[3]);
    assert!(
        base < tchk && tchk < hwst && hwst < sb,
        "geomean ordering violated: base={base:.0} tchk={tchk:.0} hwst={hwst:.0} sbcets={sb:.0}"
    );
}

#[test]
fn temporal_heavy_workloads_benefit_most_from_tchk() {
    // bzip2/hmmer are the paper's keybuffer showcases: the relative gain
    // of HWST128_tchk over HWST128 must exceed the median workload's.
    let gain = |name: &str| {
        let wl = Workload::by_name(name).unwrap();
        let hwst = run(&wl, Scheme::Hwst128).1 as f64;
        let tchk = run(&wl, Scheme::Hwst128Tchk).1 as f64;
        hwst / tchk
    };
    let bzip = gain("bzip2");
    let hmmer = gain("hmmer");
    let math = gain("math"); // ALU-dominated: little to gain
    assert!(
        bzip > math,
        "bzip2 gain {bzip:.2} must exceed math {math:.2}"
    );
    assert!(
        hmmer > math,
        "hmmer gain {hmmer:.2} must exceed math {math:.2}"
    );
}

#[test]
fn optimizer_never_changes_exit_status() {
    // The light optimizer (including the bounds-assisted dead-alloca
    // sweep) must be invisible to every workload: same exit code, same
    // bytes on stdout, under the baseline and the full hardware scheme.
    use hwst_compiler::opt::optimize;
    for wl in all() {
        let module = wl.module(Scale::Test);
        let optimized = optimize(module.clone());
        for scheme in [Scheme::None, Scheme::Hwst128Tchk] {
            let exec = |m: &hwst_compiler::ir::Module| {
                let prog =
                    compile(m, scheme).unwrap_or_else(|e| panic!("{} ({scheme}): {e}", wl.name));
                Machine::new(prog, config_for(scheme))
                    .run(wl.fuel(Scale::Test))
                    .unwrap_or_else(|t| panic!("{} ({scheme}) trapped: {t}", wl.name))
            };
            let plain = exec(&module);
            let opt = exec(&optimized);
            assert_eq!(
                plain.code, opt.code,
                "{}: optimizer changed the exit code under {scheme}",
                wl.name
            );
            assert_eq!(
                plain.output, opt.output,
                "{}: optimizer changed the program output under {scheme}",
                wl.name
            );
        }
    }
}
