//! # hwst-workloads
//!
//! Synthetic benchmark kernels standing in for the paper's MiBench,
//! Olden and SPEC CPU2006 workloads (Fig. 4/Fig. 5 x-axes).
//!
//! The original binaries cannot be compiled here (no LLVM/SPEC sources in
//! scope), so each kernel is written in the `hwst-compiler` IR with the
//! *pointer-operation profile* of its namesake — array streaming for
//! `lbm`/`milc`, pointer chasing and allocation churn for the Olden
//! programs, temporal-check-dominated inner loops for `bzip2`/`hmmer`
//! (the paper's standout speedups), and so on. Overheads in this
//! reproduction are driven by metadata-operation density, so matching the
//! profile preserves the shape of the paper's results (see DESIGN.md §2).
//!
//! ## Example
//!
//! ```
//! use hwst_workloads::{Workload, Scale, Suite};
//!
//! let wl = Workload::by_name("treeadd").unwrap();
//! assert_eq!(wl.suite, Suite::Olden);
//! let module = wl.module(Scale::Test);
//! assert!(module.func("main").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mibench;
mod olden;
mod spec;
pub mod util;

use hwst_compiler::ir::Module;

/// Which benchmark suite a workload imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Embedded kernels (MiBench).
    MiBench,
    /// Pointer-intensive kernels (Olden).
    Olden,
    /// General-purpose kernels (SPEC CPU2006).
    Spec,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Suite::MiBench => "MiBench",
            Suite::Olden => "Olden",
            Suite::Spec => "SPEC",
        })
    }
}

/// Problem size: small for unit tests, larger for benchmark runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Fast (tens of thousands of baseline instructions).
    Test,
    /// Benchmark-sized (hundreds of thousands and up).
    Bench,
}

impl Scale {
    /// The scale multiplier applied to each workload's base size.
    pub const fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Bench => 6,
        }
    }
}

/// One named workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// The benchmark's name as printed in the paper's figures.
    pub name: &'static str,
    /// Its suite.
    pub suite: Suite,
    /// One-line description of the pointer profile it models.
    pub profile: &'static str,
    builder: fn(Scale) -> Module,
}

impl PartialEq for Workload {
    fn eq(&self, other: &Self) -> bool {
        // Identity is the (name, suite) pair; the builder function
        // pointer is intentionally excluded (fn-pointer comparison is
        // not meaningful across codegen units).
        self.name == other.name && self.suite == other.suite
    }
}

impl Eq for Workload {}

impl Workload {
    /// Builds the IR module at the given scale.
    pub fn module(&self, scale: Scale) -> Module {
        (self.builder)(scale)
    }

    /// Instruction budget for simulating this workload at `scale`
    /// (generous; used as the `fuel` argument of `Machine::run`).
    pub fn fuel(&self, scale: Scale) -> u64 {
        600_000_000 * scale.factor()
    }

    /// Looks a workload up by name.
    pub fn by_name(name: &str) -> Option<Workload> {
        all().into_iter().find(|w| w.name == name)
    }
}

/// Every workload, in the paper's Fig. 4 order (MiBench, Olden, SPEC).
pub fn all() -> Vec<Workload> {
    let mut v = mibench_suite();
    v.extend(olden_suite());
    v.extend(spec_suite());
    v
}

/// The nine MiBench-like kernels.
pub fn mibench_suite() -> Vec<Workload> {
    vec![
        wl(
            "string",
            Suite::MiBench,
            "byte-array scan and compare",
            mibench::string,
        ),
        wl(
            "CRC32",
            Suite::MiBench,
            "table-driven checksum over a byte stream",
            mibench::crc32,
        ),
        wl(
            "bitcounts",
            Suite::MiBench,
            "ALU-heavy bit twiddling over a small array",
            mibench::bitcounts,
        ),
        wl(
            "dijkstra",
            Suite::MiBench,
            "adjacency-matrix shortest path, O(n^2) scans",
            mibench::dijkstra,
        ),
        wl(
            "sha",
            Suite::MiBench,
            "block hashing with rotate/xor word mixing",
            mibench::sha,
        ),
        wl(
            "math",
            Suite::MiBench,
            "multiply/divide chains, little memory traffic",
            mibench::math,
        ),
        wl(
            "FFT",
            Suite::MiBench,
            "strided butterfly passes over twin arrays",
            mibench::fft,
        ),
        wl(
            "adpcm",
            Suite::MiBench,
            "sequential byte codec with scalar state",
            mibench::adpcm,
        ),
        wl(
            "susan",
            Suite::MiBench,
            "2-D image smoothing, 3x3 neighbourhood",
            mibench::susan,
        ),
    ]
}

/// The seven Olden-like kernels.
pub fn olden_suite() -> Vec<Workload> {
    vec![
        wl(
            "tsp",
            Suite::Olden,
            "nearest-neighbour tour over a linked city list",
            olden::tsp,
        ),
        wl(
            "em3d",
            Suite::Olden,
            "bipartite graph relaxation through pointer arrays",
            olden::em3d,
        ),
        wl(
            "health",
            Suite::Olden,
            "linked-list simulation with allocation churn",
            olden::health,
        ),
        wl(
            "mst",
            Suite::Olden,
            "adjacency-list minimum spanning tree",
            olden::mst,
        ),
        wl(
            "perimeter",
            Suite::Olden,
            "quadtree build and traversal",
            olden::perimeter,
        ),
        wl(
            "bisort",
            Suite::Olden,
            "binary-tree build with swapped traversals",
            olden::bisort,
        ),
        wl(
            "treeadd",
            Suite::Olden,
            "recursive tree construction and reduction",
            olden::treeadd,
        ),
    ]
}

/// The seven SPEC-like kernels (Fig. 5 set).
pub fn spec_suite() -> Vec<Workload> {
    vec![
        wl(
            "milc",
            Suite::Spec,
            "streaming lattice arithmetic over large arrays",
            spec::milc,
        ),
        wl(
            "lbm",
            Suite::Spec,
            "9-point stencil over ping-pong grids",
            spec::lbm,
        ),
        wl(
            "sphinx3",
            Suite::Spec,
            "table scoring plus list management",
            spec::sphinx3,
        ),
        wl(
            "sjeng",
            Suite::Spec,
            "branchy board scanning with small tables",
            spec::sjeng,
        ),
        wl(
            "gobmk",
            Suite::Spec,
            "flood fill over a 19x19 board with a work stack",
            spec::gobmk,
        ),
        wl(
            "bzip2",
            Suite::Spec,
            "per-block buffer churn, temporal-check dominated",
            spec::bzip2,
        ),
        wl(
            "hmmer",
            Suite::Spec,
            "dynamic programming over per-row heap buffers",
            spec::hmmer,
        ),
    ]
}

fn wl(
    name: &'static str,
    suite: Suite,
    profile: &'static str,
    builder: fn(Scale) -> Module,
) -> Workload {
    Workload {
        name,
        suite,
        profile,
        builder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_figure4() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 23);
        assert_eq!(mibench_suite().len(), 9);
        assert_eq!(olden_suite().len(), 7);
        assert_eq!(spec_suite().len(), 7);
        for n in ["string", "CRC32", "treeadd", "bzip2", "hmmer", "lbm"] {
            assert!(names.contains(&n), "{n} missing");
        }
    }

    #[test]
    fn by_name_round_trips() {
        for w in all() {
            assert_eq!(Workload::by_name(w.name).unwrap().name, w.name);
        }
        assert!(Workload::by_name("nonesuch").is_none());
    }

    #[test]
    fn every_module_passes_analysis() {
        for w in all() {
            let m = w.module(Scale::Test);
            hwst_compiler::analysis::analyze(&m).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
