//! SPEC CPU2006-like kernels (the Fig. 5 comparison set).

use crate::util::*;
use crate::Scale;
use hwst_compiler::ir::{BinOp, Module, Width};
use hwst_compiler::ModuleBuilder;

/// `milc`: streaming lattice arithmetic — 3x3 integer "matrix" products
/// over large flat arrays (su3 multiplication skeleton).
pub(crate) fn milc(scale: Scale) -> Module {
    let sites = 40 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let a = f.malloc_bytes((sites * 9 * 8) as u64);
    let b = f.malloc_bytes((sites * 9 * 8) as u64);
    let c = f.malloc_bytes((sites * 9 * 8) as u64);
    fill_array(&mut f, a, sites * 9, 61);
    fill_array(&mut f, b, sites * 9, 62);
    for_range(&mut f, 0, sites, |f, s| {
        let base = f.bin_imm(BinOp::Mul, s, 9 * 8);
        for i in 0..3i64 {
            for j in 0..3i64 {
                let acc = f.local();
                let z = f.konst(0);
                f.local_set(acc, z);
                for k in 0..3i64 {
                    let aoff = f.bin_imm(BinOp::Add, base, (i * 3 + k) * 8);
                    let boff = f.bin_imm(BinOp::Add, base, (k * 3 + j) * 8);
                    let ap = f.gep(a, aoff);
                    let bp = f.gep(b, boff);
                    let av = f.load(ap, 0, Width::U64);
                    let bv = f.load(bp, 0, Width::U64);
                    let prod = f.bin(BinOp::Mul, av, bv);
                    let t = f.local_get(acc);
                    let t2 = f.bin(BinOp::Add, t, prod);
                    f.local_set(acc, t2);
                }
                let coff = f.bin_imm(BinOp::Add, base, (i * 3 + j) * 8);
                let cp = f.gep(c, coff);
                let v = f.local_get(acc);
                f.store(v, cp, 0, Width::U64);
            }
        }
    });
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, sites * 9, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let cp = f.gep(c, off);
        let v = f.load(cp, 0, Width::U64);
        let t = f.local_get(acc);
        let s = f.bin(BinOp::Xor, t, v);
        f.local_set(acc, s);
    });
    f.free(a);
    f.free(b);
    f.free(c);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `lbm`: lattice-Boltzmann-like stencil — read 5 neighbours, write the
/// other grid, swap roles each sweep. Big-footprint streaming.
pub(crate) fn lbm(scale: Scale) -> Module {
    let w = (20 + 10 * scale.factor()) as i64;
    let h = w;
    let sweeps = 3i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let g0 = f.malloc_bytes((w * h * 8) as u64);
    let g1 = f.malloc_bytes((w * h * 8) as u64);
    fill_array(&mut f, g0, w * h, 71);
    // Ping-pong sweeps: even sweeps g0 -> g1, odd g1 -> g0.
    for sweep in 0..sweeps {
        let (src, dst) = if sweep % 2 == 0 { (g0, g1) } else { (g1, g0) };
        for_range(&mut f, 1, h - 1, |f, y| {
            for_range(f, 1, w - 1, |f, x| {
                let row = f.bin_imm(BinOp::Mul, y, w);
                let idx = f.bin(BinOp::Add, row, x);
                let off = f.bin_imm(BinOp::Sll, idx, 3);
                let center = f.gep(src, off);
                let cv = f.load(center, 0, Width::U64);
                let nv = f.load(center, -w * 8, Width::U64);
                let sv = f.load(center, w * 8, Width::U64);
                let wv = f.load(center, -8, Width::U64);
                let ev = f.load(center, 8, Width::U64);
                let t = f.bin(BinOp::Add, nv, sv);
                let t = f.bin(BinOp::Add, t, wv);
                let t = f.bin(BinOp::Add, t, ev);
                let t = f.bin_imm(BinOp::Srl, t, 2);
                let mixed = f.bin(BinOp::Add, cv, t);
                let mixed = f.bin_imm(BinOp::Srl, mixed, 1);
                let dslot = f.gep(dst, off);
                f.store(mixed, dslot, 0, Width::U64);
            });
        });
    }
    let fin = if sweeps % 2 == 0 { g0 } else { g1 };
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, w * h, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(fin, off);
        let v = f.load(slot, 0, Width::U64);
        let t = f.local_get(acc);
        let s = f.bin(BinOp::Add, t, v);
        f.local_set(acc, s);
    });
    f.free(g0);
    f.free(g1);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `sphinx3`: acoustic-scoring skeleton — gaussian table lookups mixed
/// with a linked active-list that is rebuilt every frame.
pub(crate) fn sphinx3(scale: Scale) -> Module {
    let frames = 14 * scale.factor() as i64;
    let senones = 48i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let means = f.malloc_bytes((senones * 8) as u64);
    let vars = f.malloc_bytes((senones * 8) as u64);
    fill_array(&mut f, means, senones, 81);
    fill_array(&mut f, vars, senones, 82);
    let listh = f.malloc_bytes(8);
    let z = f.konst(0);
    f.store(z, listh, 0, Width::U64);
    let score = f.local();
    f.local_set(score, z);
    let x = f.local();
    let seed = f.konst(83);
    f.local_set(x, seed);
    for_range(&mut f, 0, frames, |f, frame| {
        // Score all senones against the frame's feature.
        let cur = f.local_get(x);
        let feat = lcg_next(f, cur);
        f.local_set(x, feat);
        for_range(f, 0, senones, |f, s| {
            let off = f.bin_imm(BinOp::Sll, s, 3);
            let mp = f.gep(means, off);
            let vp = f.gep(vars, off);
            let m = f.load(mp, 0, Width::U64);
            let v = f.load(vp, 0, Width::U64);
            let d = f.bin(BinOp::Sub, feat, m);
            let d2 = f.bin(BinOp::Mul, d, d);
            let vv = f.bin_imm(BinOp::Or, v, 1);
            let sc = f.bin(BinOp::Div, d2, vv);
            let t = f.local_get(score);
            let t2 = f.bin(BinOp::Add, t, sc);
            f.local_set(score, t2);
        });
        // Rebuild the active list: push 4 entries, then pop and free them
        // (list churn every frame).
        for_range(f, 0, 4, |f, _| {
            let cell = f.malloc_bytes(16);
            f.store(frame, cell, 0, Width::U64);
            let old = f.load_ptr(listh, 0);
            f.store_ptr(old, cell, 8);
            f.store_ptr(cell, listh, 0);
        });
        for_range(f, 0, 4, |f, _| {
            let head = f.load_ptr(listh, 0);
            let v = f.load(head, 0, Width::U64);
            let t = f.local_get(score);
            let t2 = f.bin(BinOp::Xor, t, v);
            f.local_set(score, t2);
            let next = f.load_ptr(head, 8);
            f.store_ptr(next, listh, 0);
            f.free(head);
        });
    });
    f.free(means);
    f.free(vars);
    let r = f.local_get(score);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `sjeng`: chess-like board scanning — branchy nested loops over a
/// 120-slot board with small attack tables.
pub(crate) fn sjeng(scale: Scale) -> Module {
    let plies = 20 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let board = f.malloc_bytes(120 * 8);
    let attack = f.malloc_bytes(16 * 8);
    fill_array(&mut f, board, 120, 91);
    fill_array(&mut f, attack, 16, 92);
    // Clamp board cells to piece codes 0..=6.
    for_range(&mut f, 0, 120, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(board, off);
        let v = f.load(slot, 0, Width::U64);
        let v = f.bin_imm(BinOp::Rem, v, 7);
        f.store(v, slot, 0, Width::U64);
    });
    let eval = f.local();
    let z = f.konst(0);
    f.local_set(eval, z);
    for_range(&mut f, 0, plies, |f, ply| {
        for_range(f, 20, 100, |f, sq| {
            let off = f.bin_imm(BinOp::Sll, sq, 3);
            let slot = f.gep(board, off);
            let piece = f.load(slot, 0, Width::U64);
            let occupied = f.bin_imm(BinOp::Ne, piece, 0);
            if_then(f, occupied, |f| {
                // Look the piece up in the attack table and branch on
                // parity (move generation's branchy core).
                let idx = f.bin_imm(BinOp::And, piece, 0xf);
                let aoff = f.bin_imm(BinOp::Sll, idx, 3);
                let ap = f.gep(attack, aoff);
                let pat = f.load(ap, 0, Width::U64);
                let odd = f.bin_imm(BinOp::And, pat, 1);
                if_else(
                    f,
                    odd,
                    |f| {
                        let e = f.local_get(eval);
                        let s = f.bin(BinOp::Add, e, pat);
                        f.local_set(eval, s);
                    },
                    |f| {
                        let e = f.local_get(eval);
                        let s = f.bin(BinOp::Xor, e, pat);
                        f.local_set(eval, s);
                    },
                );
                // Make/unmake: swap with a neighbour square.
                let nb = f.load(slot, 8, Width::U64);
                f.store(piece, slot, 8, Width::U64);
                f.store(nb, slot, 0, Width::U64);
            });
        });
        let e = f.local_get(eval);
        let rot = f.bin(BinOp::Add, e, ply);
        f.local_set(eval, rot);
    });
    f.free(board);
    f.free(attack);
    let r = f.local_get(eval);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `gobmk`: flood fill over a 19x19 board driven by an explicit work
/// stack (liberty counting's access pattern).
pub(crate) fn gobmk(scale: Scale) -> Module {
    let rounds = 6 * scale.factor() as i64;
    let n = 19i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let board = f.malloc_bytes((n * n * 8) as u64);
    let stack = f.malloc_bytes((n * n * 8) as u64);
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, rounds, |f, round| {
        // Recolour the board deterministically per round.
        for_range(f, 0, n * n, |f, i| {
            let v = f.bin(BinOp::Add, i, round);
            let v = f.bin_imm(BinOp::Rem, v, 3);
            let off = f.bin_imm(BinOp::Sll, i, 3);
            let slot = f.gep(board, off);
            f.store(v, slot, 0, Width::U64);
        });
        // Flood fill from the centre over colour 0 using the work stack.
        let sp = f.local();
        f.local_set(sp, z);
        let start = f.konst(9 * 19 + 9);
        let soff = f.konst(0);
        let sslot = f.gep(stack, soff);
        f.store(start, sslot, 0, Width::U64);
        let one = f.konst(1);
        f.local_set(sp, one);
        while_loop(
            f,
            |f| f.local_get(sp),
            |f| {
                let p = f.local_get(sp);
                let p1 = f.bin_imm(BinOp::Sub, p, 1);
                f.local_set(sp, p1);
                let off = f.bin_imm(BinOp::Sll, p1, 3);
                let slot = f.gep(stack, off);
                let pos = f.load(slot, 0, Width::U64);
                let boff = f.bin_imm(BinOp::Sll, pos, 3);
                let bslot = f.gep(board, boff);
                let colour = f.load(bslot, 0, Width::U64);
                let fillable = f.bin_imm(BinOp::Eq, colour, 0);
                if_then(f, fillable, |f| {
                    let mark = f.konst(9);
                    f.store(mark, bslot, 0, Width::U64);
                    let a = f.local_get(acc);
                    let a1 = f.bin_imm(BinOp::Add, a, 1);
                    f.local_set(acc, a1);
                    // Push the 4 neighbours (bounds-guarded).
                    for (d, guard_lo, guard_hi) in [
                        (-1i64, 1, n * n),
                        (1, 0, n * n - 1),
                        (-n, n, n * n),
                        (n, 0, n * n - n),
                    ] {
                        let lo = f.konst(guard_lo);
                        let hi = f.konst(guard_hi);
                        let ge = f.bin(BinOp::Sltu, pos, hi);
                        let lt = f.bin(BinOp::Sltu, pos, lo);
                        let ok = f.bin_imm(BinOp::Eq, lt, 0);
                        let ok = f.bin(BinOp::And, ok, ge);
                        if_then(f, ok, |f| {
                            let np = f.bin_imm(BinOp::Add, pos, d);
                            let spv = f.local_get(sp);
                            let room = f.bin_imm(BinOp::Sltu, spv, n * n);
                            if_then(f, room, |f| {
                                let spv2 = f.local_get(sp);
                                let soff2 = f.bin_imm(BinOp::Sll, spv2, 3);
                                let ss = f.gep(stack, soff2);
                                f.store(np, ss, 0, Width::U64);
                                let sp1 = f.bin_imm(BinOp::Add, spv2, 1);
                                f.local_set(sp, sp1);
                            });
                        });
                    }
                });
            },
        );
    });
    f.free(board);
    f.free(stack);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `bzip2`: per-block work-buffer churn. Every block allocates fresh
/// buffers, runs deref-dense transform loops over them, and frees them —
/// the temporal-check-dominated profile behind the paper's 7.98x
/// HWST128-vs-SBCETS speedup on this benchmark.
pub(crate) fn bzip2(scale: Scale) -> Module {
    let blocks = 10 * scale.factor() as i64;
    let block_len = 96i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, blocks, |f, blk| {
        // Fresh buffers per block (allocation churn).
        let src = f.malloc_bytes((block_len * 8) as u64);
        let work = f.malloc_bytes((block_len * 8) as u64);
        let freq = f.malloc_bytes(16 * 8);
        let seed = f.bin_imm(BinOp::Add, blk, 7);
        let sv = f.local();
        f.local_set(sv, seed);
        for_range(f, 0, block_len, |f, i| {
            let cur = f.local_get(sv);
            let nxt = lcg_next(f, cur);
            f.local_set(sv, nxt);
            let off = f.bin_imm(BinOp::Sll, i, 3);
            let slot = f.gep(src, off);
            f.store(nxt, slot, 0, Width::U64);
        });
        // "Sort" pass: repeated pairwise compare/swap sweeps with
        // multiple dereferences of the same heap pointers per iteration
        // (high temporal-check density; keybuffer hits constantly).
        for_range(f, 0, 4, |f, _pass| {
            for_range(f, 0, block_len - 1, |f, i| {
                let off = f.bin_imm(BinOp::Sll, i, 3);
                let a = f.gep(src, off);
                let x = f.load(a, 0, Width::U64);
                let y = f.load(a, 8, Width::U64);
                let gt = f.bin(BinOp::Sltu, y, x);
                if_then(f, gt, |f| {
                    let x2 = f.load(a, 0, Width::U64);
                    let y2 = f.load(a, 8, Width::U64);
                    f.store(x2, a, 8, Width::U64);
                    f.store(y2, a, 0, Width::U64);
                });
                let woff = f.bin_imm(BinOp::Sll, i, 3);
                let w = f.gep(work, woff);
                let x3 = f.load(a, 0, Width::U64);
                f.store(x3, w, 0, Width::U64);
                // Frequency table update (two more derefs).
                let nib = f.bin_imm(BinOp::And, x3, 0xf);
                let foff = f.bin_imm(BinOp::Sll, nib, 3);
                let fp = f.gep(freq, foff);
                let c = f.load(fp, 0, Width::U64);
                let c1 = f.bin_imm(BinOp::Add, c, 1);
                f.store(c1, fp, 0, Width::U64);
            });
        });
        // Fold the frequency table into the checksum and free everything.
        for_range(f, 0, 16, |f, i| {
            let off = f.bin_imm(BinOp::Sll, i, 3);
            let fp = f.gep(freq, off);
            let c = f.load(fp, 0, Width::U64);
            let t = f.local_get(acc);
            let s = f.bin(BinOp::Add, t, c);
            f.local_set(acc, s);
        });
        f.free(freq);
        f.free(work);
        f.free(src);
    });
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `hmmer`: Viterbi-like dynamic programming with per-row heap buffers,
/// freed as soon as the next row is computed — the other temporal-heavy
/// SPEC profile (paper: 7.78x).
pub(crate) fn hmmer(scale: Scale) -> Module {
    let rows = 16 * scale.factor() as i64;
    let cols = 48i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let model = f.malloc_bytes((cols * 8) as u64);
    fill_array(&mut f, model, cols, 101);
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    // prev row buffer pointer lives in a heap cell (row ping-pong through
    // memory, like hmmer's dp matrix rows).
    let prevc = f.malloc_bytes(8);
    let first = f.malloc_bytes((cols * 8) as u64);
    fill_array(&mut f, first, cols, 103);
    f.store_ptr(first, prevc, 0);
    for_range(&mut f, 0, rows, |f, row| {
        let cur = f.malloc_bytes((cols * 8) as u64);
        let prev = f.load_ptr(prevc, 0);
        for_range(f, 1, cols, |f, j| {
            let joff = f.bin_imm(BinOp::Sll, j, 3);
            // Three reads from prev (match/insert/delete states), one
            // model read, one write to cur: five heap derefs per cell.
            let pm = f.gep(prev, joff);
            let m = f.load(pm, -8, Width::U64);
            let i = f.load(pm, 0, Width::U64);
            let d = f.load(pm, -8, Width::U64);
            let mp = f.gep(model, joff);
            let e = f.load(mp, 0, Width::U64);
            let best = f.local();
            f.local_set(best, m);
            let better = f.bin(BinOp::Sltu, i, m);
            if_then(f, better, |f| f.local_set(best, i));
            let b = f.local_get(best);
            let better2 = f.bin(BinOp::Sltu, d, b);
            if_then(f, better2, |f| f.local_set(best, d));
            let b2 = f.local_get(best);
            let v = f.bin(BinOp::Add, b2, e);
            let v = f.bin(BinOp::Add, v, row);
            let v = f.bin_imm(BinOp::And, v, 0xffff_ffff);
            let cp = f.gep(cur, joff);
            f.store(v, cp, 0, Width::U64);
        });
        // Free the previous row, promote cur.
        let old = f.load_ptr(prevc, 0);
        f.free(old);
        f.store_ptr(cur, prevc, 0);
        let tail = f.load(cur, (cols - 1) * 8, Width::U64);
        let t = f.local_get(acc);
        let s = f.bin(BinOp::Xor, t, tail);
        f.local_set(acc, s);
    });
    let last = f.load_ptr(prevc, 0);
    f.free(last);
    f.free(model);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}
