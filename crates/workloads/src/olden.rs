//! Olden-like pointer-intensive kernels.
//!
//! Node fields are laid out as consecutive 8-byte slots; child links are
//! stored with `StorePtr`/`LoadPtr` so metadata propagates through memory
//! (the dominant cost of pointer-based safety on these programs). Absent
//! children are denoted by a depth guard rather than a null dereference.

use crate::util::*;
use crate::Scale;
use hwst_compiler::ir::{BinOp, Module, Width};
use hwst_compiler::ModuleBuilder;

/// `treeadd`: build a binary tree recursively, then reduce it.
pub(crate) fn treeadd(scale: Scale) -> Module {
    let depth = 6 + (scale.factor() as i64).min(4); // 127..1023 nodes
    let mut mb = ModuleBuilder::new();

    // build(depth) -> node*
    let mut f = mb.func("build");
    let d = f.param(false);
    let node = f.malloc_bytes(24);
    f.store(d, node, 0, Width::U64);
    let more = f.bin_imm(BinOp::Slt, d, 2);
    let leaf = f.bin_imm(BinOp::Eq, more, 0); // d >= 2
    if_then(&mut f, leaf, |f| {
        let dm1 = f.bin_imm(BinOp::Sub, d, 1);
        let l = f.call("build", &[dm1]);
        f.store_ptr(l, node, 8);
        let r = f.call("build", &[dm1]);
        f.store_ptr(r, node, 16);
    });
    f.ret(Some(node));
    f.finish();

    // sum(node*, depth) -> u64
    let mut f = mb.func("sum");
    let node = f.param(true);
    let d = f.param(false);
    let v = f.load(node, 0, Width::U64);
    let acc = f.local();
    f.local_set(acc, v);
    let internal = f.bin_imm(BinOp::Slt, d, 2);
    let internal = f.bin_imm(BinOp::Eq, internal, 0);
    if_then(&mut f, internal, |f| {
        let dm1 = f.bin_imm(BinOp::Sub, d, 1);
        let l = f.load_ptr(node, 8);
        let ls = f.call("sum", &[l, dm1]);
        let r = f.load_ptr(node, 16);
        let rs = f.call("sum", &[r, dm1]);
        let a = f.local_get(acc);
        let t = f.bin(BinOp::Add, a, ls);
        let t = f.bin(BinOp::Add, t, rs);
        f.local_set(acc, t);
    });
    let r = f.local_get(acc);
    f.ret(Some(r));
    f.finish();

    let mut f = mb.func("main");
    let dd = f.konst(depth);
    let root = f.call("build", &[dd]);
    let s = f.call("sum", &[root, dd]);
    let code = f.bin_imm(BinOp::And, s, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `bisort`: binary tree with value-swapping traversals (the sort phase
/// of Olden's bitonic sort, reduced to its pointer-access pattern).
pub(crate) fn bisort(scale: Scale) -> Module {
    let depth = 5 + (scale.factor() as i64).min(4);
    let mut mb = ModuleBuilder::new();

    // build(depth, seed) -> node*  — node: [val][left][right]
    let mut f = mb.func("build");
    let d = f.param(false);
    let seed = f.param(false);
    let node = f.malloc_bytes(24);
    let v = lcg_next(&mut f, seed);
    f.store(v, node, 0, Width::U64);
    let internal = f.bin_imm(BinOp::Slt, d, 2);
    let internal = f.bin_imm(BinOp::Eq, internal, 0);
    if_then(&mut f, internal, |f| {
        let dm1 = f.bin_imm(BinOp::Sub, d, 1);
        let s1 = f.bin_imm(BinOp::Add, v, 1);
        let l = f.call("build", &[dm1, s1]);
        f.store_ptr(l, node, 8);
        let s2 = f.bin_imm(BinOp::Add, v, 2);
        let r = f.call("build", &[dm1, s2]);
        f.store_ptr(r, node, 16);
    });
    f.ret(Some(node));
    f.finish();

    // sortpass(node*, depth, dir) -> u64 — swap children values toward
    // `dir`, return the subtree min/max witness.
    let mut f = mb.func("sortpass");
    let node = f.param(true);
    let d = f.param(false);
    let dir = f.param(false);
    let v = f.load(node, 0, Width::U64);
    let out = f.local();
    f.local_set(out, v);
    let internal = f.bin_imm(BinOp::Slt, d, 2);
    let internal = f.bin_imm(BinOp::Eq, internal, 0);
    if_then(&mut f, internal, |f| {
        let l = f.load_ptr(node, 8);
        let r = f.load_ptr(node, 16);
        let lv = f.load(l, 0, Width::U64);
        let rv = f.load(r, 0, Width::U64);
        // Swap if out of order w.r.t. dir.
        let lt = f.bin(BinOp::Sltu, rv, lv);
        let want = f.bin(BinOp::Eq, lt, dir);
        if_then(f, want, |f| {
            f.store(rv, l, 0, Width::U64);
            f.store(lv, r, 0, Width::U64);
        });
        let dm1 = f.bin_imm(BinOp::Sub, d, 1);
        let a = f.call("sortpass", &[l, dm1, dir]);
        let ndir = f.bin_imm(BinOp::Xor, dir, 1);
        let b = f.call("sortpass", &[r, dm1, ndir]);
        let o = f.local_get(out);
        let t = f.bin(BinOp::Xor, o, a);
        let t = f.bin(BinOp::Add, t, b);
        f.local_set(out, t);
    });
    let r = f.local_get(out);
    f.ret(Some(r));
    f.finish();

    let mut f = mb.func("main");
    let dd = f.konst(depth);
    let sd = f.konst(1);
    let root = f.call("build", &[dd, sd]);
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, 4, |f, pass| {
        let dir = f.bin_imm(BinOp::And, pass, 1);
        let dd2 = f.konst(depth);
        let w = f.call("sortpass", &[root, dd2, dir]);
        let a = f.local_get(acc);
        let t = f.bin(BinOp::Add, a, w);
        f.local_set(acc, t);
    });
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `mst`: vertices with adjacency linked lists; repeated list walks
/// accumulating minimum edge weights (Prim's skeleton).
pub(crate) fn mst(scale: Scale) -> Module {
    let n = (12 + 6 * scale.factor()) as i64; // vertices
    let deg = 4i64; // edges per vertex
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    // vertex table: n pointer slots to list heads.
    let verts = f.malloc_bytes((n * 8) as u64);
    // Build lists: cell = [weight][target][next*].
    let x = f.local();
    let seed = f.konst(31);
    f.local_set(x, seed);
    for_range(&mut f, 0, n, |f, i| {
        // Build `deg` cells, linking each to the previous through memory.
        let voff = f.bin_imm(BinOp::Sll, i, 3);
        let vslot = f.gep(verts, voff);
        let z = f.konst(0);
        f.store(z, vslot, 0, Width::U64); // empty list sentinel
        for_range(f, 0, deg, |f, _j| {
            let cell = f.malloc_bytes(24);
            let cur = f.local_get(x);
            let nxt = lcg_next(f, cur);
            f.local_set(x, nxt);
            let w = f.bin_imm(BinOp::And, nxt, 0xff);
            let w = f.bin_imm(BinOp::Add, w, 1);
            f.store(w, cell, 0, Width::U64);
            let tgt = f.bin_imm(BinOp::Rem, nxt, n);
            f.store(tgt, cell, 8, Width::U64);
            // cell.next = verts[i]; verts[i] = cell
            let voff2 = f.bin_imm(BinOp::Sll, i, 3);
            let vslot2 = f.gep(verts, voff2);
            let old = f.load_ptr(vslot2, 0);
            f.store_ptr(old, cell, 16);
            f.store_ptr(cell, vslot2, 0);
        });
    });
    // Prim-lite: n rounds; in each, walk every vertex list and take the
    // global minimum weight, marking by zeroing the chosen weight.
    let total = f.local();
    let z = f.konst(0);
    f.local_set(total, z);
    for_range(&mut f, 0, n, |f, _round| {
        let best = f.local();
        let big = f.konst(1 << 30);
        f.local_set(best, big);
        for_range(f, 0, n, |f, i| {
            let voff = f.bin_imm(BinOp::Sll, i, 3);
            let vslot = f.gep(verts, voff);
            // Walk exactly `deg` cells via chained LoadPtr.
            let mut cur = f.load_ptr(vslot, 0);
            for _step in 0..deg {
                let w = f.load(cur, 0, Width::U64);
                let nz = f.bin_imm(BinOp::Ne, w, 0);
                if_then(f, nz, |f| {
                    let b = f.local_get(best);
                    let better = f.bin(BinOp::Sltu, w, b);
                    if_then(f, better, |f| f.local_set(best, w));
                });
                cur = f.load_ptr(cur, 16);
            }
            let _ = cur;
        });
        let b = f.local_get(best);
        let found = f.bin_imm(BinOp::Sltu, b, 1 << 30);
        if_then(f, found, |f| {
            let b2 = f.local_get(best);
            let t = f.local_get(total);
            let s = f.bin(BinOp::Add, t, b2);
            f.local_set(total, s);
        });
    });
    let r = f.local_get(total);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `perimeter`: quadtree build and leaf-counting traversal.
pub(crate) fn perimeter(scale: Scale) -> Module {
    let depth = 4 + (scale.factor() as i64).min(3);
    let mut mb = ModuleBuilder::new();

    // build(depth, colour) -> node*  — node: [colour][c0][c1][c2][c3]
    let mut f = mb.func("build");
    let d = f.param(false);
    let colour = f.param(false);
    let node = f.malloc_bytes(40);
    f.store(colour, node, 0, Width::U64);
    let internal = f.bin_imm(BinOp::Slt, d, 2);
    let internal = f.bin_imm(BinOp::Eq, internal, 0);
    if_then(&mut f, internal, |f| {
        let dm1 = f.bin_imm(BinOp::Sub, d, 1);
        for (q, off) in [(0i64, 8i64), (1, 16), (2, 24), (3, 32)] {
            let qc = f.konst(q);
            let c = f.bin(BinOp::Xor, colour, qc);
            let c = f.bin_imm(BinOp::And, c, 1);
            let child = f.call("build", &[dm1, c]);
            f.store_ptr(child, node, off);
        }
    });
    f.ret(Some(node));
    f.finish();

    // peri(node*, depth) -> u64 — count black leaves (colour 1).
    let mut f = mb.func("peri");
    let node = f.param(true);
    let d = f.param(false);
    let acc = f.local();
    let leaf = f.bin_imm(BinOp::Slt, d, 2);
    let c = f.load(node, 0, Width::U64);
    f.local_set(acc, c);
    let internal = f.bin_imm(BinOp::Eq, leaf, 0);
    if_then(&mut f, internal, |f| {
        let z = f.konst(0);
        f.local_set(acc, z);
        let dm1 = f.bin_imm(BinOp::Sub, d, 1);
        for off in [8i64, 16, 24, 32] {
            let child = f.load_ptr(node, off);
            let s = f.call("peri", &[child, dm1]);
            let a = f.local_get(acc);
            let t = f.bin(BinOp::Add, a, s);
            f.local_set(acc, t);
        }
    });
    let r = f.local_get(acc);
    f.ret(Some(r));
    f.finish();

    let mut f = mb.func("main");
    let dd = f.konst(depth);
    let black = f.konst(1);
    let root = f.call("build", &[dd, black]);
    let s = f.call("peri", &[root, dd]);
    let code = f.bin_imm(BinOp::And, s, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `health`: a waiting-list simulation with steady malloc/free churn —
/// the temporal-metadata stress among the Olden kernels.
pub(crate) fn health(scale: Scale) -> Module {
    let steps = 60 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    // Head cell on the heap so pointers round-trip memory.
    let headg = f.malloc_bytes(8);
    let checksum = f.local();
    let z = f.konst(0);
    f.local_set(checksum, z);
    let x = f.local();
    let seed = f.konst(17);
    f.local_set(x, seed);
    for_range(&mut f, 0, steps, |f, step| {
        // Admit a patient: cell = [id][severity][next*]
        let cell = f.malloc_bytes(24);
        f.store(step, cell, 0, Width::U64);
        let cur = f.local_get(x);
        let nxt = lcg_next(f, cur);
        f.local_set(x, nxt);
        let sev = f.bin_imm(BinOp::And, nxt, 0x3);
        let sev = f.bin_imm(BinOp::Add, sev, 1);
        f.store(sev, cell, 8, Width::U64);
        let old = f.load_ptr(headg, 0);
        f.store_ptr(old, cell, 16);
        f.store_ptr(cell, headg, 0);
        // Treat: walk the list, decrement severity, discharge (free) the
        // head when it reaches zero (frees interleave with allocation).
        let head = f.load_ptr(headg, 0);
        let hsev = f.load(head, 8, Width::U64);
        let hsev = f.bin_imm(BinOp::Sub, hsev, 1);
        f.store(hsev, head, 8, Width::U64);
        let done = f.bin_imm(BinOp::Eq, hsev, 0);
        if_then(f, done, |f| {
            let h = f.load_ptr(headg, 0);
            let id = f.load(h, 0, Width::U64);
            let c = f.local_get(checksum);
            let s = f.bin(BinOp::Add, c, id);
            f.local_set(checksum, s);
            let next = f.load_ptr(h, 16);
            f.store_ptr(next, headg, 0);
            f.free(h);
        });
    });
    let r = f.local_get(checksum);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `em3d`: bipartite graph relaxation through per-node dependency
/// pointer arrays.
pub(crate) fn em3d(scale: Scale) -> Module {
    let n = (16 + 8 * scale.factor()) as i64; // nodes per side
    let deps = 3i64;
    let iters = 4i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    // Node: [value][dep0*][dep1*][dep2*] = 32 bytes.
    let enodes = f.malloc_bytes((n * 8) as u64); // pointer tables
    let hnodes = f.malloc_bytes((n * 8) as u64);
    let x = f.local();
    let seed = f.konst(23);
    f.local_set(x, seed);
    for (tbl, base_seed) in [(enodes, 1i64), (hnodes, 2)] {
        for_range(&mut f, 0, n, |f, i| {
            let node = f.malloc_bytes(32);
            let cur = f.local_get(x);
            let nxt = lcg_next(f, cur);
            f.local_set(x, nxt);
            let v = f.bin_imm(BinOp::Add, nxt, base_seed);
            f.store(v, node, 0, Width::U64);
            let off = f.bin_imm(BinOp::Sll, i, 3);
            let slot = f.gep(tbl, off);
            f.store_ptr(node, slot, 0);
        });
    }
    // Wire dependencies: e-node deps point at h-nodes and vice versa.
    for (tbl, other) in [(enodes, hnodes), (hnodes, enodes)] {
        for_range(&mut f, 0, n, |f, i| {
            let off = f.bin_imm(BinOp::Sll, i, 3);
            let slot = f.gep(tbl, off);
            let node = f.load_ptr(slot, 0);
            for d in 0..deps {
                let cur = f.local_get(x);
                let nxt = lcg_next(f, cur);
                f.local_set(x, nxt);
                let t = f.bin_imm(BinOp::Rem, nxt, n);
                let toff = f.bin_imm(BinOp::Sll, t, 3);
                let tslot = f.gep(other, toff);
                let dep = f.load_ptr(tslot, 0);
                f.store_ptr(dep, node, 8 + d * 8);
            }
        });
    }
    // Relaxation iterations.
    for_range(&mut f, 0, iters, |f, _it| {
        for tbl in [enodes, hnodes] {
            for_range(f, 0, n, |f, i| {
                let off = f.bin_imm(BinOp::Sll, i, 3);
                let slot = f.gep(tbl, off);
                let node = f.load_ptr(slot, 0);
                let v = f.load(node, 0, Width::U64);
                let acc = f.local();
                f.local_set(acc, v);
                for d in 0..deps {
                    let dep = f.load_ptr(node, 8 + d * 8);
                    let dv = f.load(dep, 0, Width::U64);
                    let half = f.bin_imm(BinOp::Srl, dv, 1);
                    let a = f.local_get(acc);
                    let s = f.bin(BinOp::Sub, a, half);
                    f.local_set(acc, s);
                }
                let nv = f.local_get(acc);
                f.store(nv, node, 0, Width::U64);
            });
        }
    });
    // Checksum e-node values.
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, n, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(enodes, off);
        let node = f.load_ptr(slot, 0);
        let v = f.load(node, 0, Width::U64);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Xor, a, v);
        f.local_set(acc, s);
    });
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `tsp`: nearest-neighbour tour over a linked list of cities.
pub(crate) fn tsp(scale: Scale) -> Module {
    let n = (14 + 6 * scale.factor()) as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    // City: [x][y][visited][next*] = 32 bytes. The list head and two
    // scan cursors live in heap cells so pointers round-trip memory
    // (list chasing is the whole point of this workload).
    let headc = f.malloc_bytes(8);
    let scanc = f.malloc_bytes(8);
    let bestc = f.malloc_bytes(8);
    let z = f.konst(0);
    f.store(z, headc, 0, Width::U64);
    let x = f.local();
    let seed = f.konst(41);
    f.local_set(x, seed);
    for_range(&mut f, 0, n, |f, _i| {
        let city = f.malloc_bytes(32);
        let cur = f.local_get(x);
        let nxt = lcg_next(f, cur);
        f.local_set(x, nxt);
        let cx = f.bin_imm(BinOp::And, nxt, 0x3ff);
        f.store(cx, city, 0, Width::U64);
        let nxt2 = lcg_next(f, nxt);
        f.local_set(x, nxt2);
        let cy = f.bin_imm(BinOp::And, nxt2, 0x3ff);
        f.store(cy, city, 8, Width::U64);
        let zz = f.konst(0);
        f.store(zz, city, 16, Width::U64);
        let old = f.load_ptr(headc, 0);
        f.store_ptr(old, city, 24);
        f.store_ptr(city, headc, 0);
    });
    // Tour: start at the head city; n-1 times pick the nearest unvisited.
    let tour = f.local();
    f.local_set(tour, z);
    let curx = f.local();
    let cury = f.local();
    let first = f.load_ptr(headc, 0);
    let fx = f.load(first, 0, Width::U64);
    let fy = f.load(first, 8, Width::U64);
    f.local_set(curx, fx);
    f.local_set(cury, fy);
    let one = f.konst(1);
    f.store(one, first, 16, Width::U64);
    for_range(&mut f, 1, n, |f, _step| {
        let bestd = f.local();
        let big = f.konst(1 << 40);
        f.local_set(bestd, big);
        // Rewind the scan cursor and walk all n cells.
        let h = f.load_ptr(headc, 0);
        f.store_ptr(h, scanc, 0);
        for_range(f, 0, n, |f, _idx| {
            let p = f.load_ptr(scanc, 0);
            let visited = f.load(p, 16, Width::U64);
            let un = f.bin_imm(BinOp::Eq, visited, 0);
            if_then(f, un, |f| {
                let px = f.load(p, 0, Width::U64);
                let py = f.load(p, 8, Width::U64);
                let cx = f.local_get(curx);
                let cy = f.local_get(cury);
                let dx = f.bin(BinOp::Sub, px, cx);
                let dy = f.bin(BinOp::Sub, py, cy);
                let dx2 = f.bin(BinOp::Mul, dx, dx);
                let dy2 = f.bin(BinOp::Mul, dy, dy);
                let d = f.bin(BinOp::Add, dx2, dy2);
                let b = f.local_get(bestd);
                let better = f.bin(BinOp::Sltu, d, b);
                if_then(f, better, |f| {
                    f.local_set(bestd, d);
                    let p2 = f.load_ptr(scanc, 0);
                    f.store_ptr(p2, bestc, 0);
                });
            });
            let next = f.load_ptr(p, 24);
            f.store_ptr(next, scanc, 0);
        });
        let d = f.local_get(bestd);
        let found = f.bin_imm(BinOp::Sltu, d, 1 << 40);
        if_then(f, found, |f| {
            let b = f.load_ptr(bestc, 0);
            let one = f.konst(1);
            f.store(one, b, 16, Width::U64);
            let bx = f.load(b, 0, Width::U64);
            let by = f.load(b, 8, Width::U64);
            f.local_set(curx, bx);
            f.local_set(cury, by);
            let d2 = f.local_get(bestd);
            let t = f.local_get(tour);
            let s = f.bin(BinOp::Add, t, d2);
            f.local_set(tour, s);
        });
    });
    let r = f.local_get(tour);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}
