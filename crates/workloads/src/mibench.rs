//! MiBench-like embedded kernels.

use crate::util::*;
use crate::Scale;
use hwst_compiler::ir::{BinOp, Module, Width};
use hwst_compiler::ModuleBuilder;

/// `string`: scan a pseudo-random byte buffer counting matches of a
/// needle byte and comparing two windows, byte-at-a-time (strsearch-ish).
pub(crate) fn string(scale: Scale) -> Module {
    let n = 512 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let buf = f.malloc_bytes(n as u64);
    // Fill with LCG bytes.
    let x = f.local();
    let seed = f.konst(7);
    f.local_set(x, seed);
    for_range(&mut f, 0, n, |f, i| {
        let cur = f.local_get(x);
        let nxt = lcg_next(f, cur);
        f.local_set(x, nxt);
        let b = f.bin_imm(BinOp::And, nxt, 0xff);
        let slot = f.gep(buf, i);
        f.store(b, slot, 0, Width::U8);
    });
    // Count occurrences of byte 0x41 and sum window comparisons.
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, n - 8, |f, i| {
        let slot = f.gep(buf, i);
        let b = f.load(slot, 0, Width::U8);
        let hit = f.bin_imm(BinOp::Eq, b, 0x41);
        if_then(f, hit, |f| {
            let a = f.local_get(acc);
            let s = f.bin_imm(BinOp::Add, a, 1);
            f.local_set(acc, s);
        });
        // Compare with the byte 8 positions ahead (memcmp-like).
        let b2 = f.load(slot, 8, Width::U8);
        let eq = f.bin(BinOp::Eq, b, b2);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Add, a, eq);
        f.local_set(acc, s);
    });
    f.free(buf);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `CRC32`: build the reflected table, then checksum a byte stream.
pub(crate) fn crc32(scale: Scale) -> Module {
    let n = 384 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let table = f.malloc_bytes(256 * 8);
    // Table generation: 256 entries x 8 shift steps.
    for_range(&mut f, 0, 256, |f, i| {
        let c = f.local();
        f.local_set(c, i);
        for_range(f, 0, 8, |f, _j| {
            let cv = f.local_get(c);
            let lsb = f.bin_imm(BinOp::And, cv, 1);
            let shifted = f.bin_imm(BinOp::Srl, cv, 1);
            if_else(
                f,
                lsb,
                |f| {
                    let x = f.konst(0xedb8_8320);
                    let v = f.bin(BinOp::Xor, shifted, x);
                    f.local_set(c, v);
                },
                |f| f.local_set(c, shifted),
            );
        });
        let cv = f.local_get(c);
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(table, off);
        f.store(cv, slot, 0, Width::U64);
    });
    // Stream bytes through the table.
    let data = f.malloc_bytes(n as u64);
    fill_array(&mut f, data, n / 8, 99);
    let crc = f.local();
    let init = f.konst(0xffff_ffff);
    f.local_set(crc, init);
    for_range(&mut f, 0, n, |f, i| {
        let slot = f.gep(data, i);
        let b = f.load(slot, 0, Width::U8);
        let c = f.local_get(crc);
        let idx = f.bin(BinOp::Xor, c, b);
        let idx = f.bin_imm(BinOp::And, idx, 0xff);
        let off = f.bin_imm(BinOp::Sll, idx, 3);
        let tslot = f.gep(table, off);
        let t = f.load(tslot, 0, Width::U64);
        let c8 = f.bin_imm(BinOp::Srl, c, 8);
        let nc = f.bin(BinOp::Xor, c8, t);
        f.local_set(crc, nc);
    });
    f.free(data);
    f.free(table);
    let r = f.local_get(crc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `bitcounts`: population counts over a word array with three different
/// bit-twiddling strategies (ALU-dominated, light memory traffic).
pub(crate) fn bitcounts(scale: Scale) -> Module {
    let n = 96 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let arr = f.malloc_bytes((n * 8) as u64);
    fill_array(&mut f, arr, n, 3);
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, n, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(arr, off);
        let w = f.load(slot, 0, Width::U64);
        // Strategy 1: Kernighan loop.
        let v = f.local();
        f.local_set(v, w);
        while_loop(
            f,
            |f| f.local_get(v),
            |f| {
                let x = f.local_get(v);
                let xm1 = f.bin_imm(BinOp::Sub, x, 1);
                let x2 = f.bin(BinOp::And, x, xm1);
                f.local_set(v, x2);
                let a = f.local_get(acc);
                let s = f.bin_imm(BinOp::Add, a, 1);
                f.local_set(acc, s);
            },
        );
        // Strategy 2: nibble shifts.
        let v2 = f.local();
        f.local_set(v2, w);
        for_range(f, 0, 16, |f, _| {
            let x = f.local_get(v2);
            let nib = f.bin_imm(BinOp::And, x, 0xf);
            let a = f.local_get(acc);
            let s = f.bin(BinOp::Add, a, nib);
            f.local_set(acc, s);
            let x4 = f.bin_imm(BinOp::Srl, x, 4);
            f.local_set(v2, x4);
        });
    });
    f.free(arr);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `dijkstra`: single-source shortest path over an adjacency matrix.
pub(crate) fn dijkstra(scale: Scale) -> Module {
    let n = (10 + 6 * scale.factor()) as i64; // nodes
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let adj = f.malloc_bytes((n * n * 8) as u64);
    fill_array(&mut f, adj, n * n, 11);
    // Clamp weights to 1..=255.
    for_range(&mut f, 0, n * n, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(adj, off);
        let w = f.load(slot, 0, Width::U64);
        let w = f.bin_imm(BinOp::And, w, 0xff);
        let w = f.bin_imm(BinOp::Add, w, 1);
        f.store(w, slot, 0, Width::U64);
    });
    let dist = f.malloc_bytes((n * 8) as u64);
    let visited = f.malloc_bytes((n * 8) as u64);
    let inf = f.konst(1 << 40);
    for_range(&mut f, 0, n, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let ds = f.gep(dist, off);
        f.store(inf, ds, 0, Width::U64);
        let vs = f.gep(visited, off);
        let z = f.konst(0);
        f.store(z, vs, 0, Width::U64);
    });
    let zero = f.konst(0);
    f.store(zero, dist, 0, Width::U64); // dist[0] = 0
                                        // n rounds of select-min + relax.
    for_range(&mut f, 0, n, |f, _round| {
        let best = f.local();
        let best_d = f.local();
        let m1 = f.konst(-1);
        f.local_set(best, m1);
        let inf2 = f.konst(1 << 41);
        f.local_set(best_d, inf2);
        for_range(f, 0, n, |f, j| {
            let off = f.bin_imm(BinOp::Sll, j, 3);
            let vs = f.gep(visited, off);
            let seen = f.load(vs, 0, Width::U64);
            let unseen = f.bin_imm(BinOp::Eq, seen, 0);
            if_then(f, unseen, |f| {
                let ds = f.gep(dist, off);
                let d = f.load(ds, 0, Width::U64);
                let bd = f.local_get(best_d);
                let better = f.bin(BinOp::Sltu, d, bd);
                if_then(f, better, |f| {
                    f.local_set(best_d, d);
                    f.local_set(best, j);
                });
            });
        });
        let b = f.local_get(best);
        let found = f.bin_imm(BinOp::Ne, b, -1);
        if_then(f, found, |f| {
            let b = f.local_get(best);
            let boff = f.bin_imm(BinOp::Sll, b, 3);
            let vs = f.gep(visited, boff);
            let one = f.konst(1);
            f.store(one, vs, 0, Width::U64);
            let bd = f.local_get(best_d);
            // Relax neighbours.
            for_range(f, 0, n, |f, j| {
                let b2 = f.local_get(best);
                let row = f.bin_imm(BinOp::Mul, b2, n);
                let idx = f.bin(BinOp::Add, row, j);
                let aoff = f.bin_imm(BinOp::Sll, idx, 3);
                let aslot = f.gep(adj, aoff);
                let w = f.load(aslot, 0, Width::U64);
                let cand = f.bin(BinOp::Add, bd, w);
                let joff = f.bin_imm(BinOp::Sll, j, 3);
                let ds = f.gep(dist, joff);
                let d = f.load(ds, 0, Width::U64);
                let better = f.bin(BinOp::Sltu, cand, d);
                if_then(f, better, |f| {
                    f.store(cand, ds, 0, Width::U64);
                });
            });
        });
    });
    // Checksum the distances.
    let acc = f.local();
    f.local_set(acc, zero);
    for_range(&mut f, 0, n, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let ds = f.gep(dist, off);
        let d = f.load(ds, 0, Width::U64);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Add, a, d);
        f.local_set(acc, s);
    });
    f.free(adj);
    f.free(dist);
    f.free(visited);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `sha`: block hashing — 16-word blocks mixed into a 5-word state with
/// shifts and xors (SHA-1 style skeleton).
pub(crate) fn sha(scale: Scale) -> Module {
    let blocks = 12 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let data = f.malloc_bytes((blocks * 16 * 8) as u64);
    fill_array(&mut f, data, blocks * 16, 5);
    let state = f.malloc_bytes(5 * 8);
    for_range(&mut f, 0, 5, |f, i| {
        let c = f.bin_imm(BinOp::Mul, i, 0x1234_5678);
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(state, off);
        f.store(c, slot, 0, Width::U64);
    });
    for_range(&mut f, 0, blocks, |f, b| {
        for_range(f, 0, 16, |f, j| {
            let base = f.bin_imm(BinOp::Mul, b, 16 * 8);
            let joff = f.bin_imm(BinOp::Sll, j, 3);
            let off = f.bin(BinOp::Add, base, joff);
            let slot = f.gep(data, off);
            let word = f.load(slot, 0, Width::U64);
            // state[j % 5] = rotl(state[j%5], 5) ^ word + j
            let idx = f.bin_imm(BinOp::Rem, j, 5);
            let soff = f.bin_imm(BinOp::Sll, idx, 3);
            let sslot = f.gep(state, soff);
            let s = f.load(sslot, 0, Width::U64);
            let hi = f.bin_imm(BinOp::Sll, s, 5);
            let lo = f.bin_imm(BinOp::Srl, s, 59);
            let rot = f.bin(BinOp::Or, hi, lo);
            let x = f.bin(BinOp::Xor, rot, word);
            let x = f.bin(BinOp::Add, x, j);
            f.store(x, sslot, 0, Width::U64);
        });
    });
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, 5, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(state, off);
        let s = f.load(slot, 0, Width::U64);
        let a = f.local_get(acc);
        let n = f.bin(BinOp::Xor, a, s);
        f.local_set(acc, n);
    });
    f.free(data);
    f.free(state);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `math`: multiply/divide/remainder chains with almost no memory
/// traffic — the low-overhead end of Fig. 4.
pub(crate) fn math(scale: Scale) -> Module {
    let n = 900 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    // A small result table: one store per iteration is the only pointer
    // traffic, keeping this the low-overhead end of Fig. 4.
    let results = f.malloc_bytes(64 * 8);
    let acc = f.local();
    let one = f.konst(1);
    f.local_set(acc, one);
    for_range(&mut f, 1, n, |f, i| {
        let a = f.local_get(acc);
        let t = f.bin(BinOp::Mul, a, i);
        let t = f.bin_imm(BinOp::Add, t, 17);
        let d = f.bin_imm(BinOp::Add, i, 3);
        let q = f.bin(BinOp::Div, t, d);
        let r = f.bin(BinOp::Rem, t, d);
        let s = f.bin(BinOp::Add, q, r);
        let s = f.bin_imm(BinOp::And, s, 0xffff_ffff);
        f.local_set(acc, s);
        let idx = f.bin_imm(BinOp::And, i, 63);
        let off = f.bin_imm(BinOp::Sll, idx, 3);
        let slot = f.gep(results, off);
        f.store(s, slot, 0, Width::U64);
    });
    // Fold the table back into the checksum.
    for_range(&mut f, 0, 64, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(results, off);
        let v = f.load(slot, 0, Width::U64);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Xor, a, v);
        f.local_set(acc, s);
    });
    f.free(results);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `FFT`: log-n butterfly passes with strided array accesses over
/// real/imaginary twin arrays (fixed-point).
pub(crate) fn fft(scale: Scale) -> Module {
    let log_n = 7 + (scale.factor() as i64 - 1).min(3); // 128..1024 points
    let n = 1i64 << log_n;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let re = f.malloc_bytes((n * 8) as u64);
    let im = f.malloc_bytes((n * 8) as u64);
    fill_array(&mut f, re, n, 21);
    fill_array(&mut f, im, n, 22);
    // Butterfly passes: for span in 1,2,4..n/2, combine pairs.
    let span = f.local();
    let one = f.konst(1);
    f.local_set(span, one);
    while_loop(
        &mut f,
        |f| {
            let s = f.local_get(span);
            f.bin_imm(BinOp::Sltu, s, n)
        },
        |f| {
            let s = f.local_get(span);
            for_range(f, 0, n / 2, |f, k| {
                let s2 = f.local_get(span);
                // i = (k / span) * 2*span + (k % span); j = i + span
                let q = f.bin(BinOp::Div, k, s2);
                let rm = f.bin(BinOp::Rem, k, s2);
                let two_s = f.bin_imm(BinOp::Sll, s2, 1);
                let base = f.bin(BinOp::Mul, q, two_s);
                let i = f.bin(BinOp::Add, base, rm);
                let j = f.bin(BinOp::Add, i, s2);
                let ioff = f.bin_imm(BinOp::Sll, i, 3);
                let joff = f.bin_imm(BinOp::Sll, j, 3);
                let ri = f.gep(re, ioff);
                let rj = f.gep(re, joff);
                let ii = f.gep(im, ioff);
                let ij = f.gep(im, joff);
                let a = f.load(ri, 0, Width::U64);
                let b = f.load(rj, 0, Width::U64);
                let c = f.load(ii, 0, Width::U64);
                let d = f.load(ij, 0, Width::U64);
                // Unit twiddle butterfly (keeps it integer-exact).
                let sum_r = f.bin(BinOp::Add, a, b);
                let dif_r = f.bin(BinOp::Sub, a, b);
                let sum_i = f.bin(BinOp::Add, c, d);
                let dif_i = f.bin(BinOp::Sub, c, d);
                f.store(sum_r, ri, 0, Width::U64);
                f.store(dif_r, rj, 0, Width::U64);
                f.store(sum_i, ii, 0, Width::U64);
                f.store(dif_i, ij, 0, Width::U64);
            });
            let ns = f.bin_imm(BinOp::Sll, s, 1);
            f.local_set(span, ns);
        },
    );
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, n, |f, i| {
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let rs = f.gep(re, off);
        let is = f.gep(im, off);
        let a = f.load(rs, 0, Width::U64);
        let b = f.load(is, 0, Width::U64);
        let x = f.bin(BinOp::Xor, a, b);
        let t = f.local_get(acc);
        let s = f.bin(BinOp::Add, t, x);
        f.local_set(acc, s);
    });
    f.free(re);
    f.free(im);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `adpcm`: sequential byte codec with a scalar predictor state.
pub(crate) fn adpcm(scale: Scale) -> Module {
    let n = 1024 * scale.factor() as i64;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let input = f.malloc_bytes(n as u64);
    let output = f.malloc_bytes(n as u64);
    // Fill input bytes.
    let x = f.local();
    let seed = f.konst(77);
    f.local_set(x, seed);
    for_range(&mut f, 0, n, |f, i| {
        let cur = f.local_get(x);
        let nxt = lcg_next(f, cur);
        f.local_set(x, nxt);
        let b = f.bin_imm(BinOp::And, nxt, 0xff);
        let slot = f.gep(input, i);
        f.store(b, slot, 0, Width::U8);
    });
    // Encode: delta against a predicted value with adaptive step.
    let pred = f.local();
    let step = f.local();
    let z = f.konst(0);
    let one = f.konst(1);
    f.local_set(pred, z);
    f.local_set(step, one);
    for_range(&mut f, 0, n, |f, i| {
        let islot = f.gep(input, i);
        let sample = f.load(islot, 0, Width::U8);
        let p = f.local_get(pred);
        let delta = f.bin(BinOp::Sub, sample, p);
        let st = f.local_get(step);
        let code = f.bin(BinOp::Div, delta, st);
        let code = f.bin_imm(BinOp::And, code, 0xff);
        let oslot = f.gep(output, i);
        f.store(code, oslot, 0, Width::U8);
        // Update predictor and step.
        let back = f.bin(BinOp::Mul, code, st);
        let np = f.bin(BinOp::Add, p, back);
        let np = f.bin_imm(BinOp::And, np, 0xff);
        f.local_set(pred, np);
        let big = f.bin_imm(BinOp::Sltu, code, 4);
        if_else(
            f,
            big,
            |f| {
                let s = f.local_get(step);
                let shrunk = f.bin_imm(BinOp::Srl, s, 1);
                let shrunk = f.bin_imm(BinOp::Or, shrunk, 1);
                f.local_set(step, shrunk);
            },
            |f| {
                let s = f.local_get(step);
                let grown = f.bin_imm(BinOp::Add, s, 2);
                f.local_set(step, grown);
            },
        );
    });
    // Checksum output.
    let acc = f.local();
    f.local_set(acc, z);
    for_range(&mut f, 0, n, |f, i| {
        let oslot = f.gep(output, i);
        let b = f.load(oslot, 0, Width::U8);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Add, a, b);
        f.local_set(acc, s);
    });
    f.free(input);
    f.free(output);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}

/// `susan`: 3x3 neighbourhood smoothing over a 2-D image.
pub(crate) fn susan(scale: Scale) -> Module {
    let w = (24 + 8 * scale.factor()) as i64;
    let h = w;
    let mut mb = ModuleBuilder::new();
    let mut f = mb.func("main");
    let img = f.malloc_bytes((w * h) as u64);
    let out = f.malloc_bytes((w * h) as u64);
    let x = f.local();
    let seed = f.konst(13);
    f.local_set(x, seed);
    for_range(&mut f, 0, w * h, |f, i| {
        let cur = f.local_get(x);
        let nxt = lcg_next(f, cur);
        f.local_set(x, nxt);
        let b = f.bin_imm(BinOp::And, nxt, 0xff);
        let slot = f.gep(img, i);
        f.store(b, slot, 0, Width::U8);
    });
    for_range(&mut f, 1, h - 1, |f, yy| {
        for_range(f, 1, w - 1, |f, xx| {
            let sum = f.local();
            let z = f.konst(0);
            f.local_set(sum, z);
            for_range(f, -1, 2, |f, dy| {
                for_range(f, -1, 2, |f, dx| {
                    let row = f.bin(BinOp::Add, yy, dy);
                    let col = f.bin(BinOp::Add, xx, dx);
                    let roff = f.bin_imm(BinOp::Mul, row, w);
                    let idx = f.bin(BinOp::Add, roff, col);
                    let slot = f.gep(img, idx);
                    let p = f.load(slot, 0, Width::U8);
                    let s = f.local_get(sum);
                    let ns = f.bin(BinOp::Add, s, p);
                    f.local_set(sum, ns);
                });
            });
            let s = f.local_get(sum);
            let avg = f.bin_imm(BinOp::Div, s, 9);
            let roff = f.bin_imm(BinOp::Mul, yy, w);
            let idx = f.bin(BinOp::Add, roff, xx);
            let oslot = f.gep(out, idx);
            f.store(avg, oslot, 0, Width::U8);
        });
    });
    let acc = f.local();
    let z = f.konst(0);
    f.local_set(acc, z);
    for_range(&mut f, 0, w * h, |f, i| {
        let slot = f.gep(out, i);
        let b = f.load(slot, 0, Width::U8);
        let a = f.local_get(acc);
        let s = f.bin(BinOp::Add, a, b);
        f.local_set(acc, s);
    });
    f.free(img);
    f.free(out);
    let r = f.local_get(acc);
    let code = f.bin_imm(BinOp::And, r, 0xff);
    f.ret(Some(code));
    f.finish();
    mb.finish()
}
