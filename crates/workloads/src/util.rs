//! IR-construction helpers shared by the workload kernels.

use hwst_compiler::ir::{BinOp, VarId, Width};
use hwst_compiler::FuncBuilder;

/// Emits `for i in start..end { body(f, i) }` using an uninstrumented
/// local slot for the counter (loop counters are plain C locals, which
/// SoftBoundCETS does not instrument).
pub fn for_range(
    f: &mut FuncBuilder<'_>,
    start: i64,
    end: i64,
    body: impl FnOnce(&mut FuncBuilder<'_>, VarId),
) {
    let i = f.local();
    let s = f.konst(start);
    f.local_set(i, s);
    let head = f.new_block();
    let body_b = f.new_block();
    let done = f.new_block();
    f.jmp(head);

    f.switch_to(head);
    let iv = f.local_get(i);
    let e = f.konst(end);
    let c = f.bin(BinOp::Slt, iv, e);
    f.br(c, body_b, done);

    f.switch_to(body_b);
    let iv2 = f.local_get(i);
    body(f, iv2);
    let iv3 = f.local_get(i);
    let next = f.bin_imm(BinOp::Add, iv3, 1);
    f.local_set(i, next);
    f.jmp(head);

    f.switch_to(done);
}

/// Emits `while cond(f) != 0 { body(f) }`.
pub fn while_loop(
    f: &mut FuncBuilder<'_>,
    cond: impl FnOnce(&mut FuncBuilder<'_>) -> VarId,
    body: impl FnOnce(&mut FuncBuilder<'_>),
) {
    let head = f.new_block();
    let body_b = f.new_block();
    let done = f.new_block();
    f.jmp(head);
    f.switch_to(head);
    let c = cond(f);
    f.br(c, body_b, done);
    f.switch_to(body_b);
    body(f);
    f.jmp(head);
    f.switch_to(done);
}

/// Emits `if cond != 0 { then(f) }`, continuing afterwards.
pub fn if_then(f: &mut FuncBuilder<'_>, cond: VarId, then: impl FnOnce(&mut FuncBuilder<'_>)) {
    let then_b = f.new_block();
    let done = f.new_block();
    f.br(cond, then_b, done);
    f.switch_to(then_b);
    then(f);
    f.jmp(done);
    f.switch_to(done);
}

/// Emits `if cond != 0 { then(f) } else { els(f) }`.
pub fn if_else(
    f: &mut FuncBuilder<'_>,
    cond: VarId,
    then: impl FnOnce(&mut FuncBuilder<'_>),
    els: impl FnOnce(&mut FuncBuilder<'_>),
) {
    let then_b = f.new_block();
    let else_b = f.new_block();
    let done = f.new_block();
    f.br(cond, then_b, else_b);
    f.switch_to(then_b);
    then(f);
    f.jmp(done);
    f.switch_to(else_b);
    els(f);
    f.jmp(done);
    f.switch_to(done);
}

/// Steps a deterministic LCG held in `state`: returns the next
/// pseudo-random value in `[0, 2^31)`.
pub fn lcg_next(f: &mut FuncBuilder<'_>, state: VarId) -> VarId {
    let a = f.konst(1103515245);
    let t = f.bin(BinOp::Mul, state, a);
    let t = f.bin_imm(BinOp::Add, t, 12345);
    f.bin_imm(BinOp::And, t, 0x7fff_ffff)
}

/// Fills `n` 64-bit slots of heap array `arr` with LCG values seeded by
/// `seed`, returning nothing. Dereferences are real pointer stores.
pub fn fill_array(f: &mut FuncBuilder<'_>, arr: VarId, n: i64, seed: i64) {
    let x = f.local();
    let s = f.konst(seed);
    f.local_set(x, s);
    for_range(f, 0, n, |f, i| {
        let cur = f.local_get(x);
        let nxt = lcg_next(f, cur);
        f.local_set(x, nxt);
        let off = f.bin_imm(BinOp::Sll, i, 3);
        let slot = f.gep(arr, off);
        f.store(nxt, slot, 0, Width::U64);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst_compiler::{compile, ModuleBuilder, Scheme};
    use hwst_sim::{Machine, SafetyConfig};

    fn run_main(build: impl FnOnce(&mut FuncBuilder<'_>)) -> u64 {
        let mut mb = ModuleBuilder::new();
        let mut f = mb.func("main");
        build(&mut f);
        f.finish();
        let m = mb.finish();
        let p = compile(&m, Scheme::None).unwrap();
        Machine::new(p, SafetyConfig::baseline())
            .run(10_000_000)
            .unwrap()
            .code
    }

    #[test]
    fn for_range_iterates_exactly() {
        let code = run_main(|f| {
            let acc = f.local();
            let z = f.konst(0);
            f.local_set(acc, z);
            for_range(f, 0, 10, |f, i| {
                let a = f.local_get(acc);
                let s = f.bin(BinOp::Add, a, i);
                f.local_set(acc, s);
            });
            let r = f.local_get(acc);
            f.ret(Some(r));
        });
        assert_eq!(code, 45);
    }

    #[test]
    fn nested_for_ranges() {
        let code = run_main(|f| {
            let acc = f.local();
            let z = f.konst(0);
            f.local_set(acc, z);
            for_range(f, 0, 5, |f, _i| {
                for_range(f, 0, 4, |f, _j| {
                    let a = f.local_get(acc);
                    let s = f.bin_imm(BinOp::Add, a, 1);
                    f.local_set(acc, s);
                });
            });
            let r = f.local_get(acc);
            f.ret(Some(r));
        });
        assert_eq!(code, 20);
    }

    #[test]
    fn if_else_branches() {
        let code = run_main(|f| {
            let acc = f.local();
            let z = f.konst(0);
            f.local_set(acc, z);
            for_range(f, 0, 6, |f, i| {
                let odd = f.bin_imm(BinOp::And, i, 1);
                if_else(
                    f,
                    odd,
                    |f| {
                        let a = f.local_get(acc);
                        let s = f.bin_imm(BinOp::Add, a, 10);
                        f.local_set(acc, s);
                    },
                    |f| {
                        let a = f.local_get(acc);
                        let s = f.bin_imm(BinOp::Add, a, 1);
                        f.local_set(acc, s);
                    },
                );
            });
            let r = f.local_get(acc);
            f.ret(Some(r));
        });
        assert_eq!(code, 33); // 3 odd * 10 + 3 even * 1
    }

    #[test]
    fn while_loop_terminates() {
        let code = run_main(|f| {
            let n = f.local();
            let init = f.konst(100);
            f.local_set(n, init);
            while_loop(
                f,
                |f| {
                    let v = f.local_get(n);
                    f.bin_imm(BinOp::Sltu, v, 200)
                },
                |f| {
                    let v = f.local_get(n);
                    let nv = f.bin_imm(BinOp::Add, v, 7);
                    f.local_set(n, nv);
                },
            );
            let r = f.local_get(n);
            f.ret(Some(r));
        });
        assert!((200..207).contains(&code));
    }

    #[test]
    fn fill_array_is_deterministic_and_checked_safe() {
        // The same fill must run identically under the strictest scheme.
        let mut results = Vec::new();
        for scheme in [Scheme::None, Scheme::Hwst128Tchk] {
            let mut mb = ModuleBuilder::new();
            let mut f = mb.func("main");
            let arr = f.malloc_bytes(32 * 8);
            fill_array(&mut f, arr, 32, 42);
            let v = f.load(arr, 31 * 8, Width::U64);
            f.free(arr);
            f.ret(Some(v));
            f.finish();
            let m = mb.finish();
            let p = compile(&m, scheme).unwrap();
            let cfg = if scheme == Scheme::None {
                SafetyConfig::baseline()
            } else {
                SafetyConfig::default()
            };
            results.push(Machine::new(p, cfg).run(10_000_000).unwrap().code);
        }
        assert_eq!(results[0], results[1]);
        assert_ne!(results[0], 0);
    }
}
