//! Set-associative cache model.

/// Geometry and latency parameters for a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Extra cycles on a miss (fill from the next level).
    pub miss_penalty: u64,
}

impl Default for CacheConfig {
    /// A Rocket-class 16 KiB, 4-way, 64 B-line D-cache with a ~20-cycle
    /// fill from the outer memory system.
    fn default() -> Self {
        CacheConfig {
            sets: 64,
            ways: 4,
            line_bytes: 64,
            miss_penalty: 20,
        }
    }
}

/// A set-associative, LRU, write-allocate cache model. Only hit/miss
/// timing is modelled; data lives in the simulator's memory.
///
/// # Example
///
/// ```
/// use hwst_pipeline::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::default());
/// assert_eq!(c.access(0x1000), 20, "cold miss pays the fill penalty");
/// assert_eq!(c.access(0x1008), 0, "same line now hits");
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `log2(line_bytes)` — the geometry is power-of-two, so the line
    /// number is a shift, not a division.
    line_shift: u32,
    /// `sets - 1`, the set-index mask.
    set_mask: usize,
    /// Flat `sets × ways` tag array in row-major order. Within a row the
    /// front is MRU; empty ways hold [`EMPTY`] (a line number no real
    /// address reaches: it would need a 1-byte line at the very top of
    /// the address space). One row fits in a host cache line for every
    /// realistic associativity, which is what makes the model's
    /// per-access cost a handful of compares.
    tags: Box<[u64]>,
    hits: u64,
    misses: u64,
}

/// Sentinel tag for an empty way.
const EMPTY: u64 = u64::MAX;

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or `ways`
    /// is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "associativity must be nonzero");
        Cache {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg.sets - 1,
            tags: vec![EMPTY; cfg.sets * cfg.ways].into_boxed_slice(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Performs an access; returns the *extra* stall cycles (0 on hit,
    /// `miss_penalty` on miss).
    #[inline]
    pub fn access(&mut self, addr: u64) -> u64 {
        let line = addr >> self.line_shift;
        let set = (line as usize) & self.set_mask;
        let ways = &mut self.tags[set * self.cfg.ways..][..self.cfg.ways];
        // MRU hit: the overwhelmingly common case in looping code, and
        // it needs no reordering at all.
        if ways[0] == line {
            self.hits += 1;
            return 0;
        }
        // A real line never equals the sentinel, so empty ways can't
        // false-hit here.
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Move to MRU: rotating the `[0, pos]` prefix right by one
            // is `remove(pos)` + `insert(0, ..)` without the shifts
            // running over the slice twice.
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            0
        } else {
            // Evict the back — the LRU line, or a sentinel while the
            // set is still filling; both cases are "shift right, write
            // the new MRU at the front".
            ways.rotate_right(1);
            ways[0] = line;
            self.misses += 1;
            self.cfg.miss_penalty
        }
    }

    /// Invalidates every line (e.g. on context switch).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit rate in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_locality_hits() {
        let mut c = Cache::new(CacheConfig::default());
        assert_eq!(c.access(0), 20);
        for a in (8..64).step_by(8) {
            assert_eq!(c.access(a), 0, "address {a} should hit");
        }
        assert_eq!(c.stats(), (7, 1));
    }

    #[test]
    fn conflict_eviction_is_lru() {
        // 1 set, 2 ways: three conflicting lines thrash.
        let cfg = CacheConfig {
            sets: 1,
            ways: 2,
            line_bytes: 64,
            miss_penalty: 10,
        };
        let mut c = Cache::new(cfg);
        assert_eq!(c.access(0), 10); // A miss
        assert_eq!(c.access(64), 10); // B miss
        assert_eq!(c.access(0), 0); // A hit (MRU now A)
        assert_eq!(c.access(128), 10); // C evicts B (LRU)
        assert_eq!(c.access(0), 0); // A still resident
        assert_eq!(c.access(64), 10); // B was evicted
    }

    #[test]
    fn flush_cools_the_cache() {
        let mut c = Cache::new(CacheConfig::default());
        c.access(0);
        assert_eq!(c.access(0), 0);
        c.flush();
        assert_eq!(c.access(0), 20);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = Cache::new(CacheConfig::default());
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_geometry() {
        Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
            miss_penalty: 1,
        });
    }
}
