//! The keybuffer: a TLB-like cache of lock→key mappings.

/// The HWST128 keybuffer (paper §3.5): a small fully-associative LRU
/// buffer that "will keep a record of the most recent key loaded from the
/// lock". When `tchk` executes and the pointer's lock matches a buffered
/// entry, the buffered key is used instead of loading the lock_location
/// from memory — bypassing the D-cache access entirely.
///
/// The buffer is **cleared whenever a pointer is freed** so it always
/// holds current temporal metadata (the paper's coherence rule; a freed
/// lock's key changes, and a stale hit would miss a use-after-free).
///
/// # Example
///
/// ```
/// use hwst_pipeline::KeyBuffer;
///
/// let mut kb = KeyBuffer::new(4);
/// assert_eq!(kb.lookup(0x9000), None);
/// kb.fill(0x9000, 42);
/// assert_eq!(kb.lookup(0x9000), Some(42));
/// kb.clear(); // a pointer was freed somewhere
/// assert_eq!(kb.lookup(0x9000), None);
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuffer {
    /// `(lock, key)` pairs in LRU order (front = MRU). Empty capacity
    /// means the keybuffer is disabled (every lookup misses).
    entries: Vec<(u64, u64)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    clears: u64,
}

impl KeyBuffer {
    /// Creates a keybuffer with the given number of entries. A capacity
    /// of 0 disables it (the A1 ablation's baseline point).
    pub fn new(capacity: usize) -> Self {
        KeyBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
            clears: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the key cached for `lock`, promoting the entry to MRU on
    /// a hit.
    pub fn lookup(&mut self, lock: u64) -> Option<u64> {
        match self.entries.iter().position(|&(l, _)| l == lock) {
            Some(pos) => {
                let e = self.entries.remove(pos);
                self.entries.insert(0, e);
                self.hits += 1;
                Some(e.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the key loaded from memory for `lock` (called after a
    /// `tchk` miss completes its key load).
    pub fn fill(&mut self, lock: u64, key: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&(l, _)| l == lock) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (lock, key));
    }

    /// Clears every entry — invoked whenever any pointer is freed.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clears += 1;
    }

    /// Fault-injection hook: plants a (possibly stale or wrong)
    /// `lock → key` entry as if it had been filled by a past `tchk`.
    /// Subject to the same capacity rules as [`fill`](Self::fill) — a
    /// disabled buffer cannot hold poison. The keybuffer is a *timing*
    /// structure in this model (`tchk` semantics always read the
    /// lock_location from memory), so a poisoned entry can perturb cycle
    /// counts but must never change what `tchk` detects; the resilience
    /// campaigns verify exactly that.
    pub fn poison(&mut self, lock: u64, key: u64) {
        self.fill(lock, key);
    }

    /// `(hits, misses, clears)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.clears)
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction() {
        let mut kb = KeyBuffer::new(2);
        kb.fill(1, 10);
        kb.fill(2, 20);
        assert_eq!(kb.lookup(1), Some(10)); // 1 becomes MRU
        kb.fill(3, 30); // evicts 2
        assert_eq!(kb.lookup(2), None);
        assert_eq!(kb.lookup(1), Some(10));
        assert_eq!(kb.lookup(3), Some(30));
    }

    #[test]
    fn refill_updates_value() {
        let mut kb = KeyBuffer::new(2);
        kb.fill(1, 10);
        kb.fill(1, 11);
        assert_eq!(kb.lookup(1), Some(11));
        // No duplicate entries were created.
        kb.fill(2, 20);
        kb.fill(3, 30);
        assert_eq!(kb.lookup(1), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut kb = KeyBuffer::new(0);
        kb.fill(1, 10);
        assert_eq!(kb.lookup(1), None);
        assert_eq!(kb.stats().1, 1);
    }

    #[test]
    fn poison_plants_and_clear_flushes_it() {
        let mut kb = KeyBuffer::new(4);
        kb.poison(0x9000, 0xdead);
        assert_eq!(kb.lookup(0x9000), Some(0xdead));
        // The coherence rule applies to poison too: any free flushes it.
        kb.clear();
        assert_eq!(kb.lookup(0x9000), None);
        // A disabled buffer cannot hold poison.
        let mut off = KeyBuffer::new(0);
        off.poison(0x9000, 0xdead);
        assert_eq!(off.lookup(0x9000), None);
    }

    #[test]
    fn clear_on_free_is_total() {
        let mut kb = KeyBuffer::new(8);
        for i in 0..8 {
            kb.fill(i, i * 10);
        }
        kb.clear();
        for i in 0..8 {
            assert_eq!(kb.lookup(i), None);
        }
        assert_eq!(kb.stats().2, 1);
    }
}
