//! Cycle accounting breakdown.

use std::fmt;
use std::ops::AddAssign;

/// Per-category cycle and event counters accumulated by the pipeline
/// model. All cycle categories sum to [`total_cycles`](Self::total_cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Instructions retired.
    pub instret: u64,
    /// One base cycle per retired instruction.
    pub base_cycles: u64,
    /// Load-use interlock stalls.
    pub load_use_stalls: u64,
    /// Taken-branch and jump redirect penalties.
    pub control_stalls: u64,
    /// Multi-cycle integer multiply/divide stalls.
    pub muldiv_stalls: u64,
    /// D-cache miss stalls on user-memory accesses.
    pub mem_stalls: u64,
    /// D-cache miss stalls on shadow-memory metadata accesses
    /// (`sbdl`/`sbdu`/`lbd*`/`lbas` family).
    pub shadow_stalls: u64,
    /// Stalls on `tchk` key loads that missed the keybuffer.
    pub tchk_stalls: u64,
    /// Cycles charged for proxy-kernel runtime work (allocator wrappers
    /// serviced by the environment).
    pub runtime_stalls: u64,
    /// `tchk` executions that hit in the keybuffer.
    pub keybuffer_hits: u64,
    /// `tchk` executions that missed the keybuffer.
    pub keybuffer_misses: u64,
    /// HWST128 metadata instructions retired (`bndr*`, `sbd*`, `lbd*`,
    /// `lbas`/`lbnd`/`lkey`/`lloc`, `tchk`, `srfmv`/`srfclr`).
    pub hwst_instrs: u64,
    /// Bounded (hardware-checked) loads/stores retired.
    pub checked_mem: u64,
    /// Shadow-memory metadata accesses retired (`sbd*`/`lbd*`/`lbas`
    /// family) — two per full 128-bit metadata transfer.
    pub meta_mem: u64,
}

impl CycleStats {
    /// Total cycles across every category.
    pub fn total_cycles(&self) -> u64 {
        self.base_cycles
            + self.load_use_stalls
            + self.control_stalls
            + self.muldiv_stalls
            + self.mem_stalls
            + self.shadow_stalls
            + self.tchk_stalls
            + self.runtime_stalls
    }

    /// Cycles per instruction; 0 when nothing retired.
    pub fn cpi(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.instret as f64
        }
    }
}

impl AddAssign for CycleStats {
    fn add_assign(&mut self, o: Self) {
        self.instret += o.instret;
        self.base_cycles += o.base_cycles;
        self.load_use_stalls += o.load_use_stalls;
        self.control_stalls += o.control_stalls;
        self.muldiv_stalls += o.muldiv_stalls;
        self.mem_stalls += o.mem_stalls;
        self.shadow_stalls += o.shadow_stalls;
        self.tchk_stalls += o.tchk_stalls;
        self.runtime_stalls += o.runtime_stalls;
        self.keybuffer_hits += o.keybuffer_hits;
        self.keybuffer_misses += o.keybuffer_misses;
        self.hwst_instrs += o.hwst_instrs;
        self.checked_mem += o.checked_mem;
        self.meta_mem += o.meta_mem;
    }
}

impl fmt::Display for CycleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles        {:>12}", self.total_cycles())?;
        writeln!(f, "instret       {:>12}", self.instret)?;
        writeln!(f, "cpi           {:>12.3}", self.cpi())?;
        writeln!(f, "  base        {:>12}", self.base_cycles)?;
        writeln!(f, "  load-use    {:>12}", self.load_use_stalls)?;
        writeln!(f, "  control     {:>12}", self.control_stalls)?;
        writeln!(f, "  muldiv      {:>12}", self.muldiv_stalls)?;
        writeln!(f, "  mem         {:>12}", self.mem_stalls)?;
        writeln!(f, "  shadow      {:>12}", self.shadow_stalls)?;
        writeln!(f, "  tchk        {:>12}", self.tchk_stalls)?;
        writeln!(f, "  runtime     {:>12}", self.runtime_stalls)?;
        writeln!(f, "hwst instrs   {:>12}", self.hwst_instrs)?;
        write!(
            f,
            "keybuffer     {:>12} hits / {} misses",
            self.keybuffer_hits, self.keybuffer_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_categories() {
        let s = CycleStats {
            instret: 10,
            base_cycles: 10,
            load_use_stalls: 1,
            control_stalls: 2,
            muldiv_stalls: 3,
            mem_stalls: 4,
            shadow_stalls: 5,
            tchk_stalls: 6,
            runtime_stalls: 9,
            ..Default::default()
        };
        assert_eq!(s.total_cycles(), 40);
        assert!((s.cpi() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CycleStats {
            instret: 1,
            base_cycles: 1,
            ..Default::default()
        };
        let b = CycleStats {
            instret: 2,
            base_cycles: 2,
            mem_stalls: 7,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.instret, 3);
        assert_eq!(a.total_cycles(), 10);
    }

    #[test]
    fn empty_stats_display() {
        let s = CycleStats::default();
        assert_eq!(s.cpi(), 0.0);
        assert!(s.to_string().contains("cycles"));
    }
}
