//! # hwst-pipeline
//!
//! A cycle-approximate model of the HWST128 processor: the 5-stage
//! in-order Rocket pipeline inherited from SHORE, plus the HWST128
//! additions (paper Fig. 3):
//!
//! * [`ShadowRegisterFile`] — the 128-bit-per-entry SRF with in-pipeline
//!   metadata propagation,
//! * [`KeyBuffer`] — the TLB-like lock→key cache that lets `tchk` skip
//!   the key load (§3.5),
//! * [`Cache`] — a set-associative D-cache model,
//! * [`Pipeline`] — per-instruction cycle accounting (hazards, branch
//!   penalties, multi-cycle mul/div, memory latency, metadata
//!   operations) and [`CycleStats`] with a per-category breakdown.
//!
//! The absolute cycle numbers are a calibrated model, not RTL; what the
//! reproduction relies on is that the *same* core model executes the
//! baseline, SBCETS-instrumented and HWST128-instrumented programs, so
//! relative overheads (the paper's Figs. 4 and 5) are meaningful.
//!
//! ## Example
//!
//! ```
//! use hwst_pipeline::{Pipeline, PipelineConfig, ExecEvents};
//! use hwst_isa::{Instr, Reg, AluOp};
//!
//! let mut pipe = Pipeline::new(PipelineConfig::default());
//! let add = Instr::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, rs2: Reg::A2 };
//! let cycles = pipe.retire(&add, &ExecEvents::default());
//! assert_eq!(cycles, 1, "an ALU op retires in one cycle");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod keybuffer;
mod pipeline;
mod srf;
mod stats;

pub use cache::{Cache, CacheConfig};
pub use keybuffer::KeyBuffer;
pub use pipeline::{
    ExecEvents, Pipeline, PipelineConfig, RetireClass, RetireInfo, ShadowLayout, StaticCharges,
};
pub use srf::ShadowRegisterFile;
pub use stats::CycleStats;
