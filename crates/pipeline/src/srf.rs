//! The 128-bit shadow register file (SRF).

use hwst_isa::Reg;
use hwst_metadata::Compressed;

/// The shadow register file: one 128-bit compressed-metadata entry per
/// GPR, with a valid bit (paper §3.2: "The SRF has a one-to-one
/// relationship with the GPRF").
///
/// In-pipeline propagation (Fig. 1-b4) is exposed as
/// [`propagate`](Self::propagate): when an ALU result in `rd` derives
/// from a pointer in `rs1` (or `rs2`), the corresponding shadow entry
/// follows it — no extra instruction is needed; the hardware bypass
/// network does it.
///
/// # Example
///
/// ```
/// use hwst_pipeline::ShadowRegisterFile;
/// use hwst_isa::Reg;
/// use hwst_metadata::Compressed;
///
/// let mut srf = ShadowRegisterFile::new();
/// srf.write(Reg::A0, Compressed { lower: 1, upper: 2 });
/// srf.propagate(Reg::A1, Some(Reg::A0), None); // a1 = a0 + 8
/// assert_eq!(srf.read(Reg::A1), Some(Compressed { lower: 1, upper: 2 }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShadowRegisterFile {
    entries: [Option<Compressed>; 32],
}

impl ShadowRegisterFile {
    /// Creates an SRF with every entry invalid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the entry shadowing `reg` (`None` when invalid).
    pub fn read(&self, reg: Reg) -> Option<Compressed> {
        self.entries[reg.index() as usize]
    }

    /// Writes (binds) a compressed metadata entry.
    pub fn write(&mut self, reg: Reg, value: Compressed) {
        if !reg.is_zero() {
            self.entries[reg.index() as usize] = Some(value);
        }
    }

    /// Writes only the lower (spatial) half, preserving the upper half
    /// (the `bndrs` path; an invalid entry becomes valid with upper = 0).
    pub fn write_lower(&mut self, reg: Reg, lower: u64) {
        if reg.is_zero() {
            return;
        }
        let e = self.entries[reg.index() as usize].get_or_insert_default();
        e.lower = lower;
    }

    /// Writes only the upper (temporal) half (the `bndrt` path).
    pub fn write_upper(&mut self, reg: Reg, upper: u64) {
        if reg.is_zero() {
            return;
        }
        let e = self.entries[reg.index() as usize].get_or_insert_default();
        e.upper = upper;
    }

    /// Invalidates the entry shadowing `reg` (the `srfclr` path, also
    /// applied when a non-pointer value is written to the GPR).
    pub fn clear(&mut self, reg: Reg) {
        self.entries[reg.index() as usize] = None;
    }

    /// Invalidates every entry.
    pub fn clear_all(&mut self) {
        self.entries = [None; 32];
    }

    /// Hardware metadata propagation for an ALU result written to `rd`
    /// computed from `rs1`/`rs2`: the metadata of the first *valid*
    /// source follows the result (Hardbound-style pointer-arithmetic
    /// propagation); if neither source carries metadata, `rd` is
    /// invalidated.
    pub fn propagate(&mut self, rd: Reg, rs1: Option<Reg>, rs2: Option<Reg>) {
        if rd.is_zero() {
            return;
        }
        let md = rs1
            .and_then(|r| self.read(r))
            .or_else(|| rs2.and_then(|r| self.read(r)));
        self.entries[rd.index() as usize] = md;
    }

    /// Copies the entry of `rs1` to `rd` (the `srfmv` path).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) {
        if !rd.is_zero() {
            self.entries[rd.index() as usize] = self.read(rs1);
        }
    }

    /// Number of valid entries (occupancy diagnostic).
    pub fn valid_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MD: Compressed = Compressed {
        lower: 0xaaaa,
        upper: 0xbbbb,
    };

    #[test]
    fn zero_register_shadow_is_never_valid() {
        let mut srf = ShadowRegisterFile::new();
        srf.write(Reg::Zero, MD);
        srf.write_lower(Reg::Zero, 1);
        srf.write_upper(Reg::Zero, 1);
        assert_eq!(srf.read(Reg::Zero), None);
    }

    #[test]
    fn halves_bind_independently() {
        let mut srf = ShadowRegisterFile::new();
        srf.write_lower(Reg::A0, 0x1111);
        assert_eq!(
            srf.read(Reg::A0),
            Some(Compressed {
                lower: 0x1111,
                upper: 0
            })
        );
        srf.write_upper(Reg::A0, 0x2222);
        assert_eq!(
            srf.read(Reg::A0),
            Some(Compressed {
                lower: 0x1111,
                upper: 0x2222
            })
        );
    }

    #[test]
    fn propagation_follows_first_valid_source() {
        let mut srf = ShadowRegisterFile::new();
        srf.write(Reg::A0, MD);
        // a1 = a0 + t0 : pointer in rs1.
        srf.propagate(Reg::A1, Some(Reg::A0), Some(Reg::T0));
        assert_eq!(srf.read(Reg::A1), Some(MD));
        // a2 = t0 + a0 : pointer in rs2.
        srf.propagate(Reg::A2, Some(Reg::T0), Some(Reg::A0));
        assert_eq!(srf.read(Reg::A2), Some(MD));
        // t1 = t0 + t2 : no pointer involved invalidates the target.
        srf.write(Reg::T1, MD);
        srf.propagate(Reg::T1, Some(Reg::T0), Some(Reg::T2));
        assert_eq!(srf.read(Reg::T1), None);
    }

    #[test]
    fn mv_and_clear() {
        let mut srf = ShadowRegisterFile::new();
        srf.write(Reg::A0, MD);
        srf.mv(Reg::S1, Reg::A0);
        assert_eq!(srf.read(Reg::S1), Some(MD));
        srf.clear(Reg::A0);
        assert_eq!(srf.read(Reg::A0), None);
        assert_eq!(srf.read(Reg::S1), Some(MD), "clear is per-entry");
        assert_eq!(srf.valid_count(), 1);
        srf.clear_all();
        assert_eq!(srf.valid_count(), 0);
    }
}
