//! Per-instruction cycle accounting for the 5-stage in-order core.

use crate::{Cache, CacheConfig, CycleStats, KeyBuffer};
use hwst_isa::{Instr, Reg};
use hwst_telemetry::{CounterId, Counters};

/// How metadata is located in shadow storage — the §2 trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShadowLayout {
    /// The paper's linear map: the SMAC computes the address in zero
    /// cycles (Eq. 1).
    #[default]
    Linear,
    /// A two-level trie (the SoftBoundCETS layout): every metadata access
    /// first walks the directory — one extra dependent D-cache access.
    Trie,
}

/// Timing parameters of the core model.
///
/// Defaults approximate the Rocket in-order core the paper builds on:
/// single-issue, 1-cycle ALU, 2-cycle redirect on taken control flow,
/// pipelined multiplier, iterative divider, blocking D-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// D-cache geometry/latency.
    pub dcache: CacheConfig,
    /// Extra cycles when a branch is taken or a jump redirects fetch.
    pub control_penalty: u64,
    /// Extra cycles for a multiply.
    pub mul_latency: u64,
    /// Extra cycles for a divide/remainder.
    pub div_latency: u64,
    /// Stall cycles when an instruction consumes the result of the
    /// immediately preceding load.
    pub load_use_stall: u64,
    /// Keybuffer entries (0 disables the keybuffer).
    pub keybuffer_entries: usize,
    /// Shadow-storage layout (linear map vs trie).
    pub shadow_layout: ShadowLayout,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dcache: CacheConfig::default(),
            control_penalty: 2,
            mul_latency: 3,
            div_latency: 16,
            load_use_stall: 1,
            keybuffer_entries: 8,
            shadow_layout: ShadowLayout::Linear,
        }
    }
}

/// Dynamic facts about one executed instruction that the timing model
/// needs but cannot derive from the opcode alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecEvents {
    /// Effective user-memory address of a load/store.
    pub mem_addr: Option<u64>,
    /// Effective shadow-memory address of a metadata access.
    pub shadow_addr: Option<u64>,
    /// A conditional branch resolved taken.
    pub branch_taken: bool,
    /// For `tchk`: the pointer's lock address and the key that lives at
    /// it (for keybuffer fill on miss).
    pub tchk: Option<(u64, u64)>,
}

/// The cycle-accounting engine. Owns the D-cache and keybuffer state and
/// accumulates a [`CycleStats`] breakdown as the simulator retires
/// instructions through it.
///
/// # Example
///
/// ```
/// use hwst_pipeline::{Pipeline, PipelineConfig, ExecEvents};
/// use hwst_isa::{Instr, Reg, LoadWidth};
///
/// let mut p = Pipeline::new(PipelineConfig::default());
/// let ld = Instr::Load { width: LoadWidth::D, rd: Reg::A0, rs1: Reg::Sp, offset: 0, checked: false };
/// let ev = ExecEvents { mem_addr: Some(0x1000), ..Default::default() };
/// let cold = p.retire(&ld, &ev);
/// let warm = p.retire(&ld, &ev);
/// assert!(cold > warm, "second access hits the D-cache");
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
    dcache: Cache,
    keybuffer: KeyBuffer,
    /// Cycle categories only. The event-style counters (keybuffer
    /// hits/misses, `hwst_instrs`, `checked_mem`) live in the telemetry
    /// registry and are merged back in [`Self::stats`], so pipeline
    /// accounting and profile tables share one source of truth.
    stats: CycleStats,
    counters: Counters,
    ids: EventCounterIds,
    /// Destination of the previous instruction if it was a load (for the
    /// load-use interlock).
    prev_load_dest: Option<Reg>,
}

/// Handles of the event counters the retire loop increments.
#[derive(Debug, Clone, Copy)]
struct EventCounterIds {
    keybuffer_hits: CounterId,
    keybuffer_misses: CounterId,
    hwst_instrs: CounterId,
    checked_mem: CounterId,
}

impl Pipeline {
    /// Creates a cold pipeline.
    pub fn new(cfg: PipelineConfig) -> Self {
        let mut counters = Counters::new();
        let ids = EventCounterIds {
            keybuffer_hits: counters.register("keybuffer_hits"),
            keybuffer_misses: counters.register("keybuffer_misses"),
            hwst_instrs: counters.register("hwst_instrs"),
            checked_mem: counters.register("checked_mem"),
        };
        Pipeline {
            cfg,
            dcache: Cache::new(cfg.dcache),
            keybuffer: KeyBuffer::new(cfg.keybuffer_entries),
            stats: CycleStats::default(),
            counters,
            ids,
            prev_load_dest: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.cfg
    }

    /// Accumulated statistics: the cycle categories the retire loop
    /// charges plus the event counters read back from the telemetry
    /// registry.
    pub fn stats(&self) -> CycleStats {
        let mut s = self.stats;
        s.keybuffer_hits = self.counters.get(self.ids.keybuffer_hits);
        s.keybuffer_misses = self.counters.get(self.ids.keybuffer_misses);
        s.hwst_instrs = self.counters.get(self.ids.hwst_instrs);
        s.checked_mem = self.counters.get(self.ids.checked_mem);
        s
    }

    /// The telemetry counter registry backing the event-style counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The keybuffer (for diagnostics).
    pub fn keybuffer(&self) -> &KeyBuffer {
        &self.keybuffer
    }

    /// The D-cache (for diagnostics).
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// Notifies the pipeline that a pointer was freed: the keybuffer is
    /// cleared so it never serves a stale key (paper §3.5).
    pub fn notify_free(&mut self) {
        self.keybuffer.clear();
    }

    /// Fault-injection hook: plants a stale/wrong `lock → key` entry in
    /// the keybuffer (see [`KeyBuffer::poison`]).
    pub fn poison_keybuffer(&mut self, lock: u64, key: u64) {
        self.keybuffer.poison(lock, key);
    }

    /// Charges cycles for environment/runtime work performed on behalf of
    /// the program (the proxy-kernel allocator model).
    pub fn charge_runtime(&mut self, cycles: u64) {
        self.stats.runtime_stalls += cycles;
    }

    /// Trie layout only: the dependent directory access that precedes
    /// every shadow lookup (1 cycle serialization + cache behaviour of
    /// the directory line).
    fn shadow_dir_walk(&mut self, saddr: u64) -> u64 {
        match self.cfg.shadow_layout {
            ShadowLayout::Linear => 0,
            ShadowLayout::Trie => {
                // Directory entries live in their own region; one entry
                // covers a 128 KiB leaf's worth of shadow.
                let dir_addr = 0xD000_0000_0000u64 | ((saddr >> 17) << 3);
                1 + self.dcache.access(dir_addr)
            }
        }
    }

    /// Retires one instruction, charging its cycles; returns the cycles
    /// charged.
    pub fn retire(&mut self, instr: &Instr, ev: &ExecEvents) -> u64 {
        self.stats.instret += 1;
        self.stats.base_cycles += 1;
        let mut cycles = 1;
        if instr.is_hwst() {
            self.counters.incr(self.ids.hwst_instrs);
        }

        // Load-use interlock against the previous instruction.
        if let Some(dest) = self.prev_load_dest.take() {
            if instr.src_gprs().contains(&dest) {
                self.stats.load_use_stalls += self.cfg.load_use_stall;
                cycles += self.cfg.load_use_stall;
            }
        }

        match *instr {
            Instr::Load { rd, checked, .. } => {
                let extra = self.dcache.access(ev.mem_addr.unwrap_or_default());
                self.stats.mem_stalls += extra;
                self.counters.add(self.ids.checked_mem, checked as u64);
                cycles += extra;
                self.prev_load_dest = Some(rd);
            }
            Instr::Store { checked, .. } => {
                let extra = self.dcache.access(ev.mem_addr.unwrap_or_default());
                self.stats.mem_stalls += extra;
                self.counters.add(self.ids.checked_mem, checked as u64);
                cycles += extra;
            }
            Instr::Branch { .. } if ev.branch_taken => {
                self.stats.control_stalls += self.cfg.control_penalty;
                cycles += self.cfg.control_penalty;
            }
            Instr::Jal { .. } | Instr::Jalr { .. } => {
                self.stats.control_stalls += self.cfg.control_penalty;
                cycles += self.cfg.control_penalty;
            }
            Instr::Alu { op, .. } if op.is_muldiv() => {
                let lat = if matches!(
                    op,
                    hwst_isa::AluOp::Mul
                        | hwst_isa::AluOp::Mulh
                        | hwst_isa::AluOp::Mulhsu
                        | hwst_isa::AluOp::Mulhu
                        | hwst_isa::AluOp::Mulw
                ) {
                    self.cfg.mul_latency
                } else {
                    self.cfg.div_latency
                };
                self.stats.muldiv_stalls += lat;
                cycles += lat;
            }
            // Metadata stores/loads go through the D-cache at the shadow
            // address; COMP/DECOMP is folded into the pipe stages
            // (paper: the compression adds critical-path latency, not
            // extra cycles).
            Instr::Sbdl { .. } | Instr::Sbdu { .. } => {
                let saddr = ev.shadow_addr.unwrap_or_default();
                let mut extra = self.shadow_dir_walk(saddr);
                extra += self.dcache.access(saddr);
                self.stats.shadow_stalls += extra;
                self.stats.meta_mem += 1;
                cycles += extra;
            }
            Instr::Lbdls { rd, .. }
            | Instr::Lbdus { rd, .. }
            | Instr::Lbas { rd, .. }
            | Instr::Lbnd { rd, .. }
            | Instr::Lkey { rd, .. }
            | Instr::Lloc { rd, .. } => {
                let saddr = ev.shadow_addr.unwrap_or_default();
                let mut extra = self.shadow_dir_walk(saddr);
                extra += self.dcache.access(saddr);
                self.stats.shadow_stalls += extra;
                self.stats.meta_mem += 1;
                cycles += extra;
                self.prev_load_dest = Some(rd);
            }
            Instr::Tchk { .. } => {
                if let Some((lock, key)) = ev.tchk {
                    match self.keybuffer.lookup(lock) {
                        Some(_) => {
                            // Keybuffer hit: the key load is bypassed by
                            // "modifying the valid signal in the DCache
                            // module" — zero extra cycles.
                            self.counters.incr(self.ids.keybuffer_hits);
                        }
                        None => {
                            self.counters.incr(self.ids.keybuffer_misses);
                            // The key must be fetched from the
                            // lock_location through the D-cache; tchk is
                            // a two-memory-access pattern so it cannot
                            // fuse with the load/store (paper §3.5).
                            let extra = 1 + self.dcache.access(lock);
                            self.stats.tchk_stalls += extra;
                            cycles += extra;
                            self.keybuffer.fill(lock, key);
                        }
                    }
                }
            }
            _ => {}
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst_isa::{AluOp, BranchCond, LoadWidth, StoreWidth};

    fn pipe() -> Pipeline {
        Pipeline::new(PipelineConfig::default())
    }

    fn load(rd: Reg, rs1: Reg) -> Instr {
        Instr::Load {
            width: LoadWidth::D,
            rd,
            rs1,
            offset: 0,
            checked: false,
        }
    }

    #[test]
    fn alu_is_single_cycle() {
        let mut p = pipe();
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(p.retire(&i, &ExecEvents::default()), 1);
        assert_eq!(p.stats().total_cycles(), 1);
    }

    #[test]
    fn load_use_interlock_fires_only_on_dependence() {
        let mut p = pipe();
        let ev = ExecEvents {
            mem_addr: Some(0x100),
            ..Default::default()
        };
        p.retire(&load(Reg::A0, Reg::Sp), &ev);
        // Dependent consumer stalls one cycle.
        let dep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A0,
            rs2: Reg::Zero,
        };
        assert_eq!(p.retire(&dep, &ExecEvents::default()), 2);
        // Independent consumer does not.
        p.retire(&load(Reg::A2, Reg::Sp), &ev);
        let indep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A3,
            rs1: Reg::A4,
            rs2: Reg::Zero,
        };
        assert_eq!(p.retire(&indep, &ExecEvents::default()), 1);
        assert_eq!(p.stats().load_use_stalls, 1);
    }

    #[test]
    fn taken_branch_pays_redirect() {
        let mut p = pipe();
        let br = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 8,
        };
        let not_taken = p.retire(&br, &ExecEvents::default());
        let taken = p.retire(
            &br,
            &ExecEvents {
                branch_taken: true,
                ..Default::default()
            },
        );
        assert_eq!(not_taken, 1);
        assert_eq!(taken, 1 + p.config().control_penalty);
    }

    #[test]
    fn divide_is_slow() {
        let mut p = pipe();
        let div = Instr::Alu {
            op: AluOp::Div,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        let mul = Instr::Alu {
            op: AluOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(p.retire(&div, &ExecEvents::default()), 17);
        assert_eq!(p.retire(&mul, &ExecEvents::default()), 4);
    }

    #[test]
    fn tchk_keybuffer_hit_is_free() {
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        let miss = p.retire(&tchk, &ev);
        let hit = p.retire(&tchk, &ev);
        assert!(
            miss > hit,
            "first tchk loads the key, second hits the buffer"
        );
        assert_eq!(hit, 1);
        assert_eq!(p.stats().keybuffer_hits, 1);
        assert_eq!(p.stats().keybuffer_misses, 1);
    }

    #[test]
    fn poisoned_entry_only_bypasses_timing_and_dies_on_free() {
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        // A poisoned (stale) entry makes the next tchk a keybuffer hit —
        // it changes cycles, never the (lock, key) the simulator checks.
        p.poison_keybuffer(0x9000, 0xdead);
        assert_eq!(p.retire(&tchk, &ev), 1);
        assert_eq!(p.stats().keybuffer_hits, 1);
        // The free-coherence rule flushes poison like any entry.
        p.notify_free();
        p.retire(&tchk, &ev);
        assert_eq!(p.stats().keybuffer_misses, 1);
    }

    #[test]
    fn free_clears_keybuffer() {
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        p.retire(&tchk, &ev);
        p.notify_free();
        p.retire(&tchk, &ev);
        assert_eq!(p.stats().keybuffer_misses, 2);
    }

    #[test]
    fn checked_and_unchecked_memops_cost_the_same() {
        // The SCU runs in EX in parallel with address generation: a
        // bounded load costs the same cycles as a plain load.
        let mut a = pipe();
        let mut b = pipe();
        let ev = ExecEvents {
            mem_addr: Some(0x40),
            ..Default::default()
        };
        let plain = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: false,
        };
        let checked = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: true,
        };
        assert_eq!(a.retire(&plain, &ev), b.retire(&checked, &ev));
        let evs = ExecEvents {
            mem_addr: Some(0x80),
            ..Default::default()
        };
        let ps = Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::A1,
            rs2: Reg::A0,
            offset: 0,
            checked: false,
        };
        let cs = Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::A1,
            rs2: Reg::A0,
            offset: 0,
            checked: true,
        };
        assert_eq!(a.retire(&ps, &evs), b.retire(&cs, &evs));
    }

    #[test]
    fn event_counters_come_from_the_telemetry_registry() {
        // The stats() snapshot and the registry must agree — they are
        // the same storage, read two ways.
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        p.retire(&tchk, &ev); // miss
        p.retire(&tchk, &ev); // hit
        let checked = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: true,
        };
        p.retire(
            &checked,
            &ExecEvents {
                mem_addr: Some(0x40),
                ..Default::default()
            },
        );
        let s = p.stats();
        let c = p.counters();
        assert_eq!(c.get_named("keybuffer_hits"), Some(s.keybuffer_hits));
        assert_eq!(c.get_named("keybuffer_misses"), Some(s.keybuffer_misses));
        assert_eq!(c.get_named("hwst_instrs"), Some(s.hwst_instrs));
        assert_eq!(c.get_named("checked_mem"), Some(s.checked_mem));
        assert_eq!(s.keybuffer_hits, 1);
        assert_eq!(s.keybuffer_misses, 1);
        // Two tchk retires plus the checked load (checked memops are
        // HWST instructions too).
        assert_eq!(s.hwst_instrs, 3);
        assert_eq!(s.checked_mem, 1);
    }

    #[test]
    fn stats_balance() {
        let mut p = pipe();
        let ev = ExecEvents {
            mem_addr: Some(0),
            ..Default::default()
        };
        let mut sum = 0;
        sum += p.retire(&load(Reg::A0, Reg::Sp), &ev);
        let dep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A0,
            rs2: Reg::Zero,
        };
        sum += p.retire(&dep, &ExecEvents::default());
        sum += p.retire(
            &Instr::Jal {
                rd: Reg::Ra,
                offset: 16,
            },
            &ExecEvents::default(),
        );
        assert_eq!(p.stats().total_cycles(), sum);
        assert_eq!(p.stats().instret, 3);
    }
}
