//! Per-instruction cycle accounting for the 5-stage in-order core.

use crate::{Cache, CacheConfig, CycleStats, KeyBuffer};
use hwst_isa::{Instr, Reg};
use hwst_telemetry::{CounterId, Counters};

/// How metadata is located in shadow storage — the §2 trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShadowLayout {
    /// The paper's linear map: the SMAC computes the address in zero
    /// cycles (Eq. 1).
    #[default]
    Linear,
    /// A two-level trie (the SoftBoundCETS layout): every metadata access
    /// first walks the directory — one extra dependent D-cache access.
    Trie,
}

/// Timing parameters of the core model.
///
/// Defaults approximate the Rocket in-order core the paper builds on:
/// single-issue, 1-cycle ALU, 2-cycle redirect on taken control flow,
/// pipelined multiplier, iterative divider, blocking D-cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// D-cache geometry/latency.
    pub dcache: CacheConfig,
    /// Extra cycles when a branch is taken or a jump redirects fetch.
    pub control_penalty: u64,
    /// Extra cycles for a multiply.
    pub mul_latency: u64,
    /// Extra cycles for a divide/remainder.
    pub div_latency: u64,
    /// Stall cycles when an instruction consumes the result of the
    /// immediately preceding load.
    pub load_use_stall: u64,
    /// Keybuffer entries (0 disables the keybuffer).
    pub keybuffer_entries: usize,
    /// Shadow-storage layout (linear map vs trie).
    pub shadow_layout: ShadowLayout,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dcache: CacheConfig::default(),
            control_penalty: 2,
            mul_latency: 3,
            div_latency: 16,
            load_use_stall: 1,
            keybuffer_entries: 8,
            shadow_layout: ShadowLayout::Linear,
        }
    }
}

/// Dynamic facts about one executed instruction that the timing model
/// needs but cannot derive from the opcode alone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecEvents {
    /// Effective user-memory address of a load/store.
    pub mem_addr: Option<u64>,
    /// Effective shadow-memory address of a metadata access.
    pub shadow_addr: Option<u64>,
    /// A conditional branch resolved taken.
    pub branch_taken: bool,
    /// For `tchk`: the pointer's lock address and the key that lives at
    /// it (for keybuffer fill on miss).
    pub tchk: Option<(u64, u64)>,
}

/// The timing-relevant shape of an instruction, pre-resolved once at
/// decode time so the fast execution tier can retire without
/// re-matching the full [`Instr`] (and without the per-retire source
/// register `Vec` that [`Instr::src_gprs`] allocates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireClass {
    /// A load (plain or checked) writing `rd`.
    Load {
        /// Destination register (arms the load-use interlock).
        rd: Reg,
        /// Whether the SCU checks the access.
        checked: bool,
    },
    /// A store (plain or checked).
    Store {
        /// Whether the SCU checks the access.
        checked: bool,
    },
    /// A conditional branch (pays the redirect only when taken).
    Branch,
    /// An unconditional jump (`jal`/`jalr`).
    Jump,
    /// A multiply-class ALU op.
    Mul,
    /// A divide/remainder-class ALU op.
    Div,
    /// A metadata store (`sbdl`/`sbdu`).
    ShadowStore,
    /// A metadata load (`lbdls`/`lbdus`/`lbas`/`lbnd`/`lkey`/`lloc`)
    /// writing `rd`.
    ShadowLoad {
        /// Destination register (arms the load-use interlock).
        rd: Reg,
    },
    /// A temporal check.
    Tchk,
    /// Everything else: single-cycle, no side effects on timing state.
    Other,
}

/// Pre-resolved retire facts for one instruction: source registers
/// (for the load-use interlock), HWST membership and timing class.
///
/// [`Pipeline::retire_decoded`] consumes this and charges exactly the
/// cycles [`Pipeline::retire`] would charge for the instruction it was
/// built from — the equivalence the decoded-block engine's bit-identity
/// guarantee rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireInfo {
    srcs: [Reg; 2],
    nsrcs: u8,
    is_hwst: bool,
    class: RetireClass,
}

impl RetireInfo {
    /// Pre-resolves `instr` (mirrors [`Instr::src_gprs`],
    /// [`Instr::is_hwst`] and the [`Pipeline::retire`] match arms).
    pub fn of(instr: &Instr) -> Self {
        let mut srcs = [Reg::Zero; 2];
        let mut nsrcs = 0u8;
        let mut push = |r: Reg| {
            // src_gprs() drops x0: it always reads zero, so it can
            // never carry a load-use dependence.
            if !r.is_zero() {
                srcs[nsrcs as usize] = r;
                nsrcs += 1;
            }
        };
        match *instr {
            Instr::Jalr { rs1, .. }
            | Instr::Load { rs1, .. }
            | Instr::AluImm { rs1, .. }
            | Instr::Csr { rs1, .. }
            | Instr::Lbdls { rs1, .. }
            | Instr::Lbdus { rs1, .. }
            | Instr::Lbas { rs1, .. }
            | Instr::Lbnd { rs1, .. }
            | Instr::Lkey { rs1, .. }
            | Instr::Lloc { rs1, .. }
            | Instr::Tchk { rs1 } => push(rs1),
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Alu { rs1, rs2, .. }
            | Instr::Bndrs { rs1, rs2, .. }
            | Instr::Bndrt { rs1, rs2, .. } => {
                push(rs1);
                push(rs2);
            }
            // The metadata stores read only the container pointer: the
            // SRF entry travels the metadata path, not the GPR path.
            Instr::Sbdl { rs1, .. } | Instr::Sbdu { rs1, .. } => push(rs1),
            _ => {}
        }
        let class = match *instr {
            Instr::Load { rd, checked, .. } => RetireClass::Load { rd, checked },
            Instr::Store { checked, .. } => RetireClass::Store { checked },
            Instr::Branch { .. } => RetireClass::Branch,
            Instr::Jal { .. } | Instr::Jalr { .. } => RetireClass::Jump,
            Instr::Alu { op, .. } if op.is_muldiv() => {
                if matches!(
                    op,
                    hwst_isa::AluOp::Mul
                        | hwst_isa::AluOp::Mulh
                        | hwst_isa::AluOp::Mulhsu
                        | hwst_isa::AluOp::Mulhu
                        | hwst_isa::AluOp::Mulw
                ) {
                    RetireClass::Mul
                } else {
                    RetireClass::Div
                }
            }
            Instr::Sbdl { .. } | Instr::Sbdu { .. } => RetireClass::ShadowStore,
            Instr::Lbdls { rd, .. }
            | Instr::Lbdus { rd, .. }
            | Instr::Lbas { rd, .. }
            | Instr::Lbnd { rd, .. }
            | Instr::Lkey { rd, .. }
            | Instr::Lloc { rd, .. } => RetireClass::ShadowLoad { rd },
            Instr::Tchk { .. } => RetireClass::Tchk,
            _ => RetireClass::Other,
        };
        RetireInfo {
            srcs,
            nsrcs,
            is_hwst: instr.is_hwst(),
            class,
        }
    }

    /// The timing class this instruction resolved to.
    pub fn class(&self) -> RetireClass {
        self.class
    }

    /// Whether the instruction is an HWST extension instruction.
    pub fn is_hwst(&self) -> bool {
        self.is_hwst
    }

    /// Whether the instruction reads GPR `r` (x0 never reads as a
    /// dependence, mirroring `src_gprs`).
    #[inline]
    pub fn reads(&self, r: Reg) -> bool {
        self.srcs[..self.nsrcs as usize].contains(&r)
    }

    /// The destination this instruction arms the load-use interlock
    /// with, if any — i.e. the value [`Pipeline::retire`] leaves in
    /// `prev_load_dest` after retiring it.
    #[inline]
    pub fn load_dest(&self) -> Option<Reg> {
        match self.class {
            RetireClass::Load { rd, .. } | RetireClass::ShadowLoad { rd } => Some(rd),
            _ => None,
        }
    }
}

/// The statically-determined portion of a run of retires: everything
/// [`Pipeline::retire`] charges that depends only on the instructions
/// themselves, not on addresses or cache state. A decoded block
/// precomputes prefix sums of these, so the plain (non-profiled) fast
/// engine applies one `charge_static` per block instead of the
/// arithmetic part of one `retire` per instruction.
///
/// Fields are counts (latency multipliers are applied by
/// [`Pipeline::charge_static`] against the live config), sized `u16`:
/// a block holds at most 128 components, so no count can overflow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaticCharges {
    /// Retired components: `instret` and `base_cycles` each advance by
    /// this much.
    pub comps: u16,
    /// HWST instructions (the `hwst_instrs` counter).
    pub hwst: u16,
    /// Checked loads/stores (the `checked_mem` counter).
    pub checked_mem: u16,
    /// Multiplies (charged `mul_latency` each).
    pub muls: u16,
    /// Divides (charged `div_latency` each).
    pub divs: u16,
    /// Unconditional jumps (charged `control_penalty` each; taken
    /// branches are dynamic).
    pub jumps: u16,
    /// Load-use interlock hits between adjacent components of the same
    /// block (charged `load_use_stall` each). Pairs straddling a block
    /// entry or an environment instruction are dynamic.
    pub load_use: u16,
    /// Shadow-memory operations (the `meta_mem` count).
    pub meta_mem: u16,
}

impl StaticCharges {
    /// Accumulates one component's static facts (the load-use pair
    /// count is the caller's job: it needs the *previous* component).
    pub fn add_component(&mut self, info: &RetireInfo) {
        self.comps += 1;
        self.hwst += info.is_hwst as u16;
        match info.class {
            RetireClass::Load { checked, .. } | RetireClass::Store { checked } => {
                self.checked_mem += checked as u16;
            }
            RetireClass::Mul => self.muls += 1,
            RetireClass::Div => self.divs += 1,
            RetireClass::Jump => self.jumps += 1,
            RetireClass::ShadowStore | RetireClass::ShadowLoad { .. } => self.meta_mem += 1,
            _ => {}
        }
    }
}

impl std::ops::Sub for StaticCharges {
    type Output = StaticCharges;

    /// Prefix-sum difference: the charges of components `[rhs, self)`.
    fn sub(self, rhs: StaticCharges) -> StaticCharges {
        StaticCharges {
            comps: self.comps - rhs.comps,
            hwst: self.hwst - rhs.hwst,
            checked_mem: self.checked_mem - rhs.checked_mem,
            muls: self.muls - rhs.muls,
            divs: self.divs - rhs.divs,
            jumps: self.jumps - rhs.jumps,
            load_use: self.load_use - rhs.load_use,
            meta_mem: self.meta_mem - rhs.meta_mem,
        }
    }
}

/// The cycle-accounting engine. Owns the D-cache and keybuffer state and
/// accumulates a [`CycleStats`] breakdown as the simulator retires
/// instructions through it.
///
/// # Example
///
/// ```
/// use hwst_pipeline::{Pipeline, PipelineConfig, ExecEvents};
/// use hwst_isa::{Instr, Reg, LoadWidth};
///
/// let mut p = Pipeline::new(PipelineConfig::default());
/// let ld = Instr::Load { width: LoadWidth::D, rd: Reg::A0, rs1: Reg::Sp, offset: 0, checked: false };
/// let ev = ExecEvents { mem_addr: Some(0x1000), ..Default::default() };
/// let cold = p.retire(&ld, &ev);
/// let warm = p.retire(&ld, &ev);
/// assert!(cold > warm, "second access hits the D-cache");
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
    dcache: Cache,
    keybuffer: KeyBuffer,
    /// Cycle categories only. The event-style counters (keybuffer
    /// hits/misses, `hwst_instrs`, `checked_mem`) live in the telemetry
    /// registry and are merged back in [`Self::stats`], so pipeline
    /// accounting and profile tables share one source of truth.
    stats: CycleStats,
    counters: Counters,
    ids: EventCounterIds,
    /// Destination of the previous instruction if it was a load (for the
    /// load-use interlock).
    prev_load_dest: Option<Reg>,
}

/// Handles of the event counters the retire loop increments.
#[derive(Debug, Clone, Copy)]
struct EventCounterIds {
    keybuffer_hits: CounterId,
    keybuffer_misses: CounterId,
    hwst_instrs: CounterId,
    checked_mem: CounterId,
}

impl Pipeline {
    /// Creates a cold pipeline.
    pub fn new(cfg: PipelineConfig) -> Self {
        let mut counters = Counters::new();
        let ids = EventCounterIds {
            keybuffer_hits: counters.register("keybuffer_hits"),
            keybuffer_misses: counters.register("keybuffer_misses"),
            hwst_instrs: counters.register("hwst_instrs"),
            checked_mem: counters.register("checked_mem"),
        };
        Pipeline {
            cfg,
            dcache: Cache::new(cfg.dcache),
            keybuffer: KeyBuffer::new(cfg.keybuffer_entries),
            stats: CycleStats::default(),
            counters,
            ids,
            prev_load_dest: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> PipelineConfig {
        self.cfg
    }

    /// Accumulated statistics: the cycle categories the retire loop
    /// charges plus the event counters read back from the telemetry
    /// registry.
    pub fn stats(&self) -> CycleStats {
        let mut s = self.stats;
        s.keybuffer_hits = self.counters.get(self.ids.keybuffer_hits);
        s.keybuffer_misses = self.counters.get(self.ids.keybuffer_misses);
        s.hwst_instrs = self.counters.get(self.ids.hwst_instrs);
        s.checked_mem = self.counters.get(self.ids.checked_mem);
        s
    }

    /// The telemetry counter registry backing the event-style counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The keybuffer (for diagnostics).
    pub fn keybuffer(&self) -> &KeyBuffer {
        &self.keybuffer
    }

    /// The D-cache (for diagnostics).
    pub fn dcache(&self) -> &Cache {
        &self.dcache
    }

    /// Notifies the pipeline that a pointer was freed: the keybuffer is
    /// cleared so it never serves a stale key (paper §3.5).
    pub fn notify_free(&mut self) {
        self.keybuffer.clear();
    }

    /// Fault-injection hook: plants a stale/wrong `lock → key` entry in
    /// the keybuffer (see [`KeyBuffer::poison`]).
    pub fn poison_keybuffer(&mut self, lock: u64, key: u64) {
        self.keybuffer.poison(lock, key);
    }

    /// Charges cycles for environment/runtime work performed on behalf of
    /// the program (the proxy-kernel allocator model).
    pub fn charge_runtime(&mut self, cycles: u64) {
        self.stats.runtime_stalls += cycles;
    }

    /// Trie layout only: the dependent directory access that precedes
    /// every shadow lookup (1 cycle serialization + cache behaviour of
    /// the directory line).
    fn shadow_dir_walk(&mut self, saddr: u64) -> u64 {
        match self.cfg.shadow_layout {
            ShadowLayout::Linear => 0,
            ShadowLayout::Trie => {
                // Directory entries live in their own region; one entry
                // covers a 128 KiB leaf's worth of shadow.
                let dir_addr = 0xD000_0000_0000u64 | ((saddr >> 17) << 3);
                1 + self.dcache.access(dir_addr)
            }
        }
    }

    /// Retires one instruction, charging its cycles; returns the cycles
    /// charged.
    pub fn retire(&mut self, instr: &Instr, ev: &ExecEvents) -> u64 {
        self.stats.instret += 1;
        self.stats.base_cycles += 1;
        let mut cycles = 1;
        if instr.is_hwst() {
            self.counters.incr(self.ids.hwst_instrs);
        }

        // Load-use interlock against the previous instruction.
        if let Some(dest) = self.prev_load_dest.take() {
            if instr.src_gprs().contains(&dest) {
                self.stats.load_use_stalls += self.cfg.load_use_stall;
                cycles += self.cfg.load_use_stall;
            }
        }

        match *instr {
            Instr::Load { rd, checked, .. } => {
                let extra = self.dcache.access(ev.mem_addr.unwrap_or_default());
                self.stats.mem_stalls += extra;
                self.counters.add(self.ids.checked_mem, checked as u64);
                cycles += extra;
                self.prev_load_dest = Some(rd);
            }
            Instr::Store { checked, .. } => {
                let extra = self.dcache.access(ev.mem_addr.unwrap_or_default());
                self.stats.mem_stalls += extra;
                self.counters.add(self.ids.checked_mem, checked as u64);
                cycles += extra;
            }
            Instr::Branch { .. } if ev.branch_taken => {
                self.stats.control_stalls += self.cfg.control_penalty;
                cycles += self.cfg.control_penalty;
            }
            Instr::Jal { .. } | Instr::Jalr { .. } => {
                self.stats.control_stalls += self.cfg.control_penalty;
                cycles += self.cfg.control_penalty;
            }
            Instr::Alu { op, .. } if op.is_muldiv() => {
                let lat = if matches!(
                    op,
                    hwst_isa::AluOp::Mul
                        | hwst_isa::AluOp::Mulh
                        | hwst_isa::AluOp::Mulhsu
                        | hwst_isa::AluOp::Mulhu
                        | hwst_isa::AluOp::Mulw
                ) {
                    self.cfg.mul_latency
                } else {
                    self.cfg.div_latency
                };
                self.stats.muldiv_stalls += lat;
                cycles += lat;
            }
            // Metadata stores/loads go through the D-cache at the shadow
            // address; COMP/DECOMP is folded into the pipe stages
            // (paper: the compression adds critical-path latency, not
            // extra cycles).
            Instr::Sbdl { .. } | Instr::Sbdu { .. } => {
                let saddr = ev.shadow_addr.unwrap_or_default();
                let mut extra = self.shadow_dir_walk(saddr);
                extra += self.dcache.access(saddr);
                self.stats.shadow_stalls += extra;
                self.stats.meta_mem += 1;
                cycles += extra;
            }
            Instr::Lbdls { rd, .. }
            | Instr::Lbdus { rd, .. }
            | Instr::Lbas { rd, .. }
            | Instr::Lbnd { rd, .. }
            | Instr::Lkey { rd, .. }
            | Instr::Lloc { rd, .. } => {
                let saddr = ev.shadow_addr.unwrap_or_default();
                let mut extra = self.shadow_dir_walk(saddr);
                extra += self.dcache.access(saddr);
                self.stats.shadow_stalls += extra;
                self.stats.meta_mem += 1;
                cycles += extra;
                self.prev_load_dest = Some(rd);
            }
            Instr::Tchk { .. } => {
                if let Some((lock, key)) = ev.tchk {
                    match self.keybuffer.lookup(lock) {
                        Some(_) => {
                            // Keybuffer hit: the key load is bypassed by
                            // "modifying the valid signal in the DCache
                            // module" — zero extra cycles.
                            self.counters.incr(self.ids.keybuffer_hits);
                        }
                        None => {
                            self.counters.incr(self.ids.keybuffer_misses);
                            // The key must be fetched from the
                            // lock_location through the D-cache; tchk is
                            // a two-memory-access pattern so it cannot
                            // fuse with the load/store (paper §3.5).
                            let extra = 1 + self.dcache.access(lock);
                            self.stats.tchk_stalls += extra;
                            cycles += extra;
                            self.keybuffer.fill(lock, key);
                        }
                    }
                }
            }
            _ => {}
        }
        cycles
    }

    /// [`Self::retire`] over a pre-resolved [`RetireInfo`]: charges
    /// exactly the cycles `retire` would charge for the instruction the
    /// info was built from, updating the same state in the same order.
    ///
    /// Any divergence between the two is a bug; the equivalence tests
    /// below and the differential engine gate both pin it.
    #[inline]
    pub fn retire_decoded(&mut self, info: &RetireInfo, ev: &ExecEvents) -> u64 {
        self.stats.instret += 1;
        self.stats.base_cycles += 1;
        let mut cycles = 1;
        if info.is_hwst {
            self.counters.incr(self.ids.hwst_instrs);
        }

        // Load-use interlock against the previous instruction.
        if let Some(dest) = self.prev_load_dest.take() {
            if info.srcs[..info.nsrcs as usize].contains(&dest) {
                self.stats.load_use_stalls += self.cfg.load_use_stall;
                cycles += self.cfg.load_use_stall;
            }
        }

        match info.class {
            RetireClass::Load { rd, checked } => {
                let extra = self.dcache.access(ev.mem_addr.unwrap_or_default());
                self.stats.mem_stalls += extra;
                self.counters.add(self.ids.checked_mem, checked as u64);
                cycles += extra;
                self.prev_load_dest = Some(rd);
            }
            RetireClass::Store { checked } => {
                let extra = self.dcache.access(ev.mem_addr.unwrap_or_default());
                self.stats.mem_stalls += extra;
                self.counters.add(self.ids.checked_mem, checked as u64);
                cycles += extra;
            }
            RetireClass::Branch => {
                if ev.branch_taken {
                    self.stats.control_stalls += self.cfg.control_penalty;
                    cycles += self.cfg.control_penalty;
                }
            }
            RetireClass::Jump => {
                self.stats.control_stalls += self.cfg.control_penalty;
                cycles += self.cfg.control_penalty;
            }
            RetireClass::Mul => {
                self.stats.muldiv_stalls += self.cfg.mul_latency;
                cycles += self.cfg.mul_latency;
            }
            RetireClass::Div => {
                self.stats.muldiv_stalls += self.cfg.div_latency;
                cycles += self.cfg.div_latency;
            }
            RetireClass::ShadowStore => {
                let saddr = ev.shadow_addr.unwrap_or_default();
                let mut extra = self.shadow_dir_walk(saddr);
                extra += self.dcache.access(saddr);
                self.stats.shadow_stalls += extra;
                self.stats.meta_mem += 1;
                cycles += extra;
            }
            RetireClass::ShadowLoad { rd } => {
                let saddr = ev.shadow_addr.unwrap_or_default();
                let mut extra = self.shadow_dir_walk(saddr);
                extra += self.dcache.access(saddr);
                self.stats.shadow_stalls += extra;
                self.stats.meta_mem += 1;
                cycles += extra;
                self.prev_load_dest = Some(rd);
            }
            RetireClass::Tchk => {
                if let Some((lock, key)) = ev.tchk {
                    match self.keybuffer.lookup(lock) {
                        Some(_) => {
                            self.counters.incr(self.ids.keybuffer_hits);
                        }
                        None => {
                            self.counters.incr(self.ids.keybuffer_misses);
                            let extra = 1 + self.dcache.access(lock);
                            self.stats.tchk_stalls += extra;
                            cycles += extra;
                            self.keybuffer.fill(lock, key);
                        }
                    }
                }
            }
            RetireClass::Other => {}
        }
        cycles
    }

    // ------------------------------------------------------------------
    // Batched retirement: the plain fast engine splits `retire_decoded`
    // into a per-block `charge_static` (the arithmetic above, summed at
    // decode time) and the per-op `charge_*_dyn` calls below (the parts
    // that touch the D-cache/keybuffer, whose access *order* must match
    // the cycle engine exactly for LRU state to stay bit-identical).
    // ------------------------------------------------------------------

    /// Applies a block's (or block prefix's) statically-summed charges.
    /// Together with the dynamic charges issued per op, the result is
    /// bit-identical to having called [`Self::retire_decoded`] per op.
    #[inline]
    pub fn charge_static(&mut self, c: StaticCharges) {
        self.stats.instret += c.comps as u64;
        self.stats.base_cycles += c.comps as u64;
        self.counters.add(self.ids.hwst_instrs, c.hwst as u64);
        self.counters
            .add(self.ids.checked_mem, c.checked_mem as u64);
        self.stats.muldiv_stalls +=
            c.muls as u64 * self.cfg.mul_latency + c.divs as u64 * self.cfg.div_latency;
        self.stats.control_stalls += c.jumps as u64 * self.cfg.control_penalty;
        self.stats.load_use_stalls += c.load_use as u64 * self.cfg.load_use_stall;
        self.stats.meta_mem += c.meta_mem as u64;
    }

    /// Dynamic half of a [`RetireClass::Load`]/[`RetireClass::Store`]
    /// retire: the D-cache access (the `checked_mem` bump and interlock
    /// arming are static).
    #[inline]
    pub fn charge_mem_dyn(&mut self, addr: u64) {
        self.stats.mem_stalls += self.dcache.access(addr);
    }

    /// Dynamic half of a shadow-memory retire: directory walk plus the
    /// D-cache access at the shadow address (`meta_mem` is static).
    #[inline]
    pub fn charge_shadow_dyn(&mut self, saddr: u64) {
        let mut extra = self.shadow_dir_walk(saddr);
        extra += self.dcache.access(saddr);
        self.stats.shadow_stalls += extra;
    }

    /// Dynamic half of a [`RetireClass::Tchk`] retire: keybuffer lookup,
    /// and on a miss the key fetch through the D-cache plus the fill.
    #[inline]
    pub fn charge_tchk_dyn(&mut self, lock: u64, key: u64) {
        match self.keybuffer.lookup(lock) {
            Some(_) => {
                self.counters.incr(self.ids.keybuffer_hits);
            }
            None => {
                self.counters.incr(self.ids.keybuffer_misses);
                let extra = 1 + self.dcache.access(lock);
                self.stats.tchk_stalls += extra;
                self.keybuffer.fill(lock, key);
            }
        }
    }

    /// Dynamic half of a taken [`RetireClass::Branch`] retire.
    #[inline]
    pub fn charge_taken_branch(&mut self) {
        self.stats.control_stalls += self.cfg.control_penalty;
    }

    /// Load-use interlock check at a batching seam (block entry or the
    /// component after an environment instruction), where the previous
    /// component's identity is not known statically. Consumes
    /// `prev_load_dest` exactly as [`Self::retire_decoded`] does.
    #[inline]
    pub fn interlock_seam(&mut self, info: &RetireInfo) {
        if let Some(dest) = self.prev_load_dest.take() {
            if info.reads(dest) {
                self.stats.load_use_stalls += self.cfg.load_use_stall;
            }
        }
    }

    /// Restores the interlock state at a batching seam: called when the
    /// plain fast engine leaves a run of statically-accounted components,
    /// with the `load_dest` of the last component executed (the value
    /// per-op retirement would have left behind).
    #[inline]
    pub fn set_prev_load_dest(&mut self, dest: Option<Reg>) {
        self.prev_load_dest = dest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwst_isa::{AluOp, BranchCond, LoadWidth, StoreWidth};

    fn pipe() -> Pipeline {
        Pipeline::new(PipelineConfig::default())
    }

    fn load(rd: Reg, rs1: Reg) -> Instr {
        Instr::Load {
            width: LoadWidth::D,
            rd,
            rs1,
            offset: 0,
            checked: false,
        }
    }

    #[test]
    fn alu_is_single_cycle() {
        let mut p = pipe();
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(p.retire(&i, &ExecEvents::default()), 1);
        assert_eq!(p.stats().total_cycles(), 1);
    }

    #[test]
    fn load_use_interlock_fires_only_on_dependence() {
        let mut p = pipe();
        let ev = ExecEvents {
            mem_addr: Some(0x100),
            ..Default::default()
        };
        p.retire(&load(Reg::A0, Reg::Sp), &ev);
        // Dependent consumer stalls one cycle.
        let dep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A0,
            rs2: Reg::Zero,
        };
        assert_eq!(p.retire(&dep, &ExecEvents::default()), 2);
        // Independent consumer does not.
        p.retire(&load(Reg::A2, Reg::Sp), &ev);
        let indep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A3,
            rs1: Reg::A4,
            rs2: Reg::Zero,
        };
        assert_eq!(p.retire(&indep, &ExecEvents::default()), 1);
        assert_eq!(p.stats().load_use_stalls, 1);
    }

    #[test]
    fn taken_branch_pays_redirect() {
        let mut p = pipe();
        let br = Instr::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 8,
        };
        let not_taken = p.retire(&br, &ExecEvents::default());
        let taken = p.retire(
            &br,
            &ExecEvents {
                branch_taken: true,
                ..Default::default()
            },
        );
        assert_eq!(not_taken, 1);
        assert_eq!(taken, 1 + p.config().control_penalty);
    }

    #[test]
    fn divide_is_slow() {
        let mut p = pipe();
        let div = Instr::Alu {
            op: AluOp::Div,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        let mul = Instr::Alu {
            op: AluOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(p.retire(&div, &ExecEvents::default()), 17);
        assert_eq!(p.retire(&mul, &ExecEvents::default()), 4);
    }

    #[test]
    fn tchk_keybuffer_hit_is_free() {
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        let miss = p.retire(&tchk, &ev);
        let hit = p.retire(&tchk, &ev);
        assert!(
            miss > hit,
            "first tchk loads the key, second hits the buffer"
        );
        assert_eq!(hit, 1);
        assert_eq!(p.stats().keybuffer_hits, 1);
        assert_eq!(p.stats().keybuffer_misses, 1);
    }

    #[test]
    fn poisoned_entry_only_bypasses_timing_and_dies_on_free() {
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        // A poisoned (stale) entry makes the next tchk a keybuffer hit —
        // it changes cycles, never the (lock, key) the simulator checks.
        p.poison_keybuffer(0x9000, 0xdead);
        assert_eq!(p.retire(&tchk, &ev), 1);
        assert_eq!(p.stats().keybuffer_hits, 1);
        // The free-coherence rule flushes poison like any entry.
        p.notify_free();
        p.retire(&tchk, &ev);
        assert_eq!(p.stats().keybuffer_misses, 1);
    }

    #[test]
    fn free_clears_keybuffer() {
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        p.retire(&tchk, &ev);
        p.notify_free();
        p.retire(&tchk, &ev);
        assert_eq!(p.stats().keybuffer_misses, 2);
    }

    #[test]
    fn checked_and_unchecked_memops_cost_the_same() {
        // The SCU runs in EX in parallel with address generation: a
        // bounded load costs the same cycles as a plain load.
        let mut a = pipe();
        let mut b = pipe();
        let ev = ExecEvents {
            mem_addr: Some(0x40),
            ..Default::default()
        };
        let plain = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: false,
        };
        let checked = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: true,
        };
        assert_eq!(a.retire(&plain, &ev), b.retire(&checked, &ev));
        let evs = ExecEvents {
            mem_addr: Some(0x80),
            ..Default::default()
        };
        let ps = Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::A1,
            rs2: Reg::A0,
            offset: 0,
            checked: false,
        };
        let cs = Instr::Store {
            width: StoreWidth::D,
            rs1: Reg::A1,
            rs2: Reg::A0,
            offset: 0,
            checked: true,
        };
        assert_eq!(a.retire(&ps, &evs), b.retire(&cs, &evs));
    }

    #[test]
    fn event_counters_come_from_the_telemetry_registry() {
        // The stats() snapshot and the registry must agree — they are
        // the same storage, read two ways.
        let mut p = pipe();
        let tchk = Instr::Tchk { rs1: Reg::A0 };
        let ev = ExecEvents {
            tchk: Some((0x9000, 42)),
            ..Default::default()
        };
        p.retire(&tchk, &ev); // miss
        p.retire(&tchk, &ev); // hit
        let checked = Instr::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::A1,
            offset: 0,
            checked: true,
        };
        p.retire(
            &checked,
            &ExecEvents {
                mem_addr: Some(0x40),
                ..Default::default()
            },
        );
        let s = p.stats();
        let c = p.counters();
        assert_eq!(c.get_named("keybuffer_hits"), Some(s.keybuffer_hits));
        assert_eq!(c.get_named("keybuffer_misses"), Some(s.keybuffer_misses));
        assert_eq!(c.get_named("hwst_instrs"), Some(s.hwst_instrs));
        assert_eq!(c.get_named("checked_mem"), Some(s.checked_mem));
        assert_eq!(s.keybuffer_hits, 1);
        assert_eq!(s.keybuffer_misses, 1);
        // Two tchk retires plus the checked load (checked memops are
        // HWST instructions too).
        assert_eq!(s.hwst_instrs, 3);
        assert_eq!(s.checked_mem, 1);
    }

    /// Every instruction form × representative events: `retire_decoded`
    /// over `RetireInfo::of(i)` charges the exact cycles `retire(i)`
    /// does and leaves identical stats, D-cache and keybuffer state.
    #[test]
    fn retire_decoded_is_equivalent_to_retire() {
        let mem = |a| ExecEvents {
            mem_addr: Some(a),
            ..Default::default()
        };
        let shadow = |a| ExecEvents {
            shadow_addr: Some(a),
            ..Default::default()
        };
        let tchk_ev = |lock, key| ExecEvents {
            tchk: Some((lock, key)),
            ..Default::default()
        };
        let taken = ExecEvents {
            branch_taken: true,
            ..Default::default()
        };
        let none = ExecEvents::default();
        let alu = |op, rd, rs1, rs2| Instr::Alu { op, rd, rs1, rs2 };
        let seq: Vec<(Instr, ExecEvents)> = vec![
            (
                Instr::Lui {
                    rd: Reg::A0,
                    imm: 4096,
                },
                none,
            ),
            (
                Instr::Auipc {
                    rd: Reg::A1,
                    imm: 0,
                },
                none,
            ),
            (load(Reg::A0, Reg::Sp), mem(0x40)),
            // Dependent consumer: interlock must fire identically.
            (alu(AluOp::Add, Reg::A1, Reg::A0, Reg::Zero), none),
            (load(Reg::A2, Reg::Sp), mem(0x80)),
            // Independent consumer: no interlock.
            (alu(AluOp::Add, Reg::A3, Reg::A4, Reg::A5), none),
            // x0 sources never carry a dependence.
            (load(Reg::A6, Reg::Sp), mem(0xc0)),
            (alu(AluOp::Add, Reg::A7, Reg::Zero, Reg::Zero), none),
            (
                Instr::Load {
                    width: LoadWidth::W,
                    rd: Reg::S0,
                    rs1: Reg::A0,
                    offset: 8,
                    checked: true,
                },
                mem(0x40),
            ),
            (
                Instr::Store {
                    width: StoreWidth::D,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                    offset: 0,
                    checked: true,
                },
                mem(0x48),
            ),
            (
                Instr::Branch {
                    cond: BranchCond::Eq,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                    offset: 8,
                },
                none,
            ),
            (
                Instr::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                    offset: -8,
                },
                taken,
            ),
            (
                Instr::Jal {
                    rd: Reg::Ra,
                    offset: 16,
                },
                none,
            ),
            (
                Instr::Jalr {
                    rd: Reg::Zero,
                    rs1: Reg::Ra,
                    offset: 0,
                },
                none,
            ),
            (alu(AluOp::Mul, Reg::A0, Reg::A1, Reg::A2), none),
            (alu(AluOp::Div, Reg::A0, Reg::A1, Reg::A2), none),
            (alu(AluOp::Remu, Reg::A0, Reg::A1, Reg::A2), none),
            (
                Instr::Csr {
                    op: hwst_isa::CsrOp::Rw,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    csr: 0x8c0,
                },
                none,
            ),
            (Instr::Fence, none),
            (
                Instr::Bndrs {
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                },
                none,
            ),
            (
                Instr::Bndrt {
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                none,
            ),
            (
                Instr::Sbdl {
                    rs1: Reg::A0,
                    rs2: Reg::A0,
                    offset: 0,
                },
                shadow(0x4000_0000),
            ),
            (
                Instr::Sbdu {
                    rs1: Reg::A0,
                    rs2: Reg::A0,
                    offset: 0,
                },
                shadow(0x4000_0008),
            ),
            (
                Instr::Lbdls {
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    offset: 0,
                },
                shadow(0x4000_0000),
            ),
            // Shadow loads arm the interlock too.
            (alu(AluOp::Add, Reg::A2, Reg::A0, Reg::Zero), none),
            (
                Instr::Lbas {
                    rd: Reg::A3,
                    rs1: Reg::A1,
                    offset: 0,
                },
                shadow(0x4000_0000),
            ),
            (Instr::Tchk { rs1: Reg::A0 }, tchk_ev(0x9000, 42)),
            (Instr::Tchk { rs1: Reg::A0 }, tchk_ev(0x9000, 42)),
            (Instr::Tchk { rs1: Reg::A0 }, none),
            (
                Instr::SrfMv {
                    rd: Reg::A0,
                    rs1: Reg::A1,
                },
                none,
            ),
            (Instr::SrfClr { rd: Reg::A0 }, none),
            (Instr::Ecall, none),
            (Instr::Ebreak, none),
        ];
        let mut by_instr = pipe();
        let mut by_info = pipe();
        for (i, ev) in &seq {
            let a = by_instr.retire(i, ev);
            let b = by_info.retire_decoded(&RetireInfo::of(i), ev);
            assert_eq!(a, b, "cycle charge diverged at {i:?}");
            assert_eq!(
                by_instr.stats(),
                by_info.stats(),
                "stats diverged after {i:?}"
            );
        }
        assert!(by_instr.stats().load_use_stalls > 0, "interlock exercised");
        assert_eq!(by_instr.stats().keybuffer_hits, 1);
        assert_eq!(by_instr.stats().keybuffer_misses, 1);
    }

    /// The trie layout's directory walk goes through the same path in
    /// both retire flavours.
    #[test]
    fn retire_decoded_matches_under_trie_layout() {
        let cfg = PipelineConfig {
            shadow_layout: ShadowLayout::Trie,
            ..PipelineConfig::default()
        };
        let mut by_instr = Pipeline::new(cfg);
        let mut by_info = Pipeline::new(cfg);
        let sbdl = Instr::Sbdl {
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset: 0,
        };
        for a in [0x4000_0000u64, 0x4000_0008, 0x4800_0000] {
            let ev = ExecEvents {
                shadow_addr: Some(a),
                ..Default::default()
            };
            assert_eq!(
                by_instr.retire(&sbdl, &ev),
                by_info.retire_decoded(&RetireInfo::of(&sbdl), &ev)
            );
        }
        assert_eq!(by_instr.stats(), by_info.stats());
        assert!(by_instr.stats().shadow_stalls > 0);
    }

    #[test]
    fn stats_balance() {
        let mut p = pipe();
        let ev = ExecEvents {
            mem_addr: Some(0),
            ..Default::default()
        };
        let mut sum = 0;
        sum += p.retire(&load(Reg::A0, Reg::Sp), &ev);
        let dep = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::A1,
            rs1: Reg::A0,
            rs2: Reg::Zero,
        };
        sum += p.retire(&dep, &ExecEvents::default());
        sum += p.retire(
            &Instr::Jal {
                rd: Reg::Ra,
                offset: 16,
            },
            &ExecEvents::default(),
        );
        assert_eq!(p.stats().total_cycles(), sum);
        assert_eq!(p.stats().instret, 3);
    }
}
