//! Pipeline-model properties: the cycle ledger must balance for any
//! instruction stream, and the structural units must behave like the
//! hardware they model.

use hwst_isa::{AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, StoreWidth};
use hwst_pipeline::{Cache, CacheConfig, ExecEvents, KeyBuffer, Pipeline, PipelineConfig};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::from_index(i).unwrap())
}

/// A random instruction plus matching events.
fn any_retirement() -> impl Strategy<Value = (Instr, ExecEvents)> {
    prop_oneof![
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| (
            Instr::Alu {
                op: AluOp::Add,
                rd,
                rs1,
                rs2
            },
            ExecEvents::default()
        )),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| (
            Instr::Alu {
                op: AluOp::Div,
                rd,
                rs1,
                rs2
            },
            ExecEvents::default()
        )),
        (any_reg(), any_reg(), any::<u32>(), any::<bool>()).prop_map(|(rd, rs1, addr, checked)| (
            Instr::Load {
                width: LoadWidth::D,
                rd,
                rs1,
                offset: 0,
                checked
            },
            ExecEvents {
                mem_addr: Some(addr as u64),
                ..Default::default()
            }
        )),
        (any_reg(), any_reg(), any::<u32>()).prop_map(|(rs1, rs2, addr)| (
            Instr::Store {
                width: StoreWidth::D,
                rs1,
                rs2,
                offset: 0,
                checked: false
            },
            ExecEvents {
                mem_addr: Some(addr as u64),
                ..Default::default()
            }
        )),
        (any_reg(), any_reg(), any::<bool>()).prop_map(|(rs1, rs2, taken)| (
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1,
                rs2,
                offset: 8
            },
            ExecEvents {
                branch_taken: taken,
                ..Default::default()
            }
        )),
        (any_reg(), any::<u16>(), any::<u32>()).prop_map(|(rs1, lock, key)| (
            Instr::Tchk { rs1 },
            ExecEvents {
                tchk: Some((0x9000 + (lock as u64) * 8, key as u64)),
                ..Default::default()
            }
        )),
        (any_reg(), any_reg(), any::<u32>()).prop_map(|(rd, rs1, addr)| (
            Instr::Lbdls { rd, rs1, offset: 0 },
            ExecEvents {
                shadow_addr: Some(addr as u64),
                ..Default::default()
            }
        )),
        (any_reg(), any_reg()).prop_map(|(rd, rs1)| (
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd,
                rs1,
                imm: 1
            },
            ExecEvents::default()
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The ledger balances: the sum of per-retire cycles equals the
    /// stats total, instret equals the stream length, and every cycle
    /// sits in exactly one category.
    #[test]
    fn cycle_ledger_balances(stream in prop::collection::vec(any_retirement(), 1..200)) {
        let mut p = Pipeline::new(PipelineConfig::default());
        let mut total = 0u64;
        for (i, ev) in &stream {
            total += p.retire(i, ev);
        }
        let s = p.stats();
        prop_assert_eq!(s.total_cycles(), total);
        prop_assert_eq!(s.instret, stream.len() as u64);
        prop_assert_eq!(s.base_cycles, stream.len() as u64);
        prop_assert_eq!(
            s.keybuffer_hits + s.keybuffer_misses,
            stream.iter().filter(|(i, _)| matches!(i, Instr::Tchk { .. })).count() as u64
        );
    }

    /// Caches never return more than the miss penalty, and a repeated
    /// access is always a hit.
    #[test]
    fn cache_access_bounds(addrs in prop::collection::vec(any::<u32>(), 1..100)) {
        let cfg = CacheConfig::default();
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            let cost = c.access(a as u64);
            prop_assert!(cost == 0 || cost == cfg.miss_penalty);
            prop_assert_eq!(c.access(a as u64), 0, "immediate re-access must hit");
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, addrs.len() as u64 * 2);
    }

    /// Keybuffer: a fill is immediately visible, capacity is respected,
    /// and clear wipes everything.
    #[test]
    fn keybuffer_invariants(
        ops in prop::collection::vec((any::<u16>(), any::<u32>(), any::<bool>()), 1..100),
        cap in 1usize..16,
    ) {
        let mut kb = KeyBuffer::new(cap);
        let mut live = std::collections::HashMap::new();
        for &(lock, key, clear) in &ops {
            let lock = lock as u64;
            if clear {
                kb.clear();
                live.clear();
            } else {
                kb.fill(lock, key as u64);
                live.insert(lock, key as u64);
                prop_assert_eq!(kb.lookup(lock), Some(key as u64));
                // A hit must return the *latest* fill value.
                if let Some(&k) = live.get(&lock) {
                    prop_assert_eq!(k, key as u64);
                }
            }
        }
    }

    /// Disabling the keybuffer makes every tchk pay; enabling it never
    /// makes a stream slower.
    #[test]
    fn keybuffer_never_hurts(locks in prop::collection::vec(0u8..8, 1..100)) {
        let run = |entries: usize| {
            let mut p = Pipeline::new(PipelineConfig {
                keybuffer_entries: entries,
                ..Default::default()
            });
            let mut total = 0;
            for &l in &locks {
                total += p.retire(
                    &Instr::Tchk { rs1: Reg::A0 },
                    &ExecEvents {
                        tchk: Some((0x9000 + l as u64 * 8, 7)),
                        ..Default::default()
                    },
                );
            }
            total
        };
        let with = run(8);
        let without = run(0);
        prop_assert!(with <= without);
    }
}
